//! The Motor cluster harness: one VM instance per MPI rank.
//!
//! The paper's deployment model is N operating-system processes, each
//! hosting a Motor virtual machine whose runtime embeds the Message
//! Passing Core. Here each rank is an OS *thread* owning a private
//! [`Vm`] (its own heap, collector, safepoints, type registry) wired to
//! its peers through the universe's links — the same isolation the paper
//! gets from process boundaries, minus the address-space separation.

use std::sync::Arc;

use motor_mpc::universe::{Proc, Universe, UniverseConfig};
use motor_mpc::Comm;
use motor_runtime::{MotorThread, TypeRegistry, Vm, VmConfig};

use crate::bufpool::BufPool;
use crate::error::CoreResult;
use crate::mp::Mp;
use crate::oomp::Oomp;
use crate::pinning::PinPolicy;

/// Configuration of a Motor cluster.
#[derive(Clone, Default)]
pub struct ClusterConfig {
    /// Per-rank VM configuration.
    pub vm: VmConfig,
    /// Universe (transport/device) configuration.
    pub universe: UniverseConfig,
    /// Pinning policy applied by the `System.MP` bindings.
    pub policy: PinPolicy,
}

/// One rank's Motor environment, handed to the rank body.
pub struct MotorProc {
    vm: Arc<Vm>,
    thread: MotorThread,
    comm: Comm,
    pool: Arc<BufPool>,
    policy: PinPolicy,
    proc_: Proc,
}

impl MotorProc {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The rank's VM.
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    /// The rank's attached mutator thread.
    pub fn thread(&self) -> &MotorThread {
        &self.thread
    }

    /// The world communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The regular MPI bindings (`System.MP`).
    pub fn mp(&self) -> Mp<'_> {
        Mp::with_policy(&self.thread, self.comm.clone(), self.policy)
    }

    /// The extended object-oriented operations.
    pub fn oomp(&self) -> Oomp<'_> {
        Oomp::new(&self.thread, self.comm.clone(), Arc::clone(&self.pool))
    }

    /// The OO buffer pool (diagnostics).
    pub fn pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// The underlying universe process (dynamic spawning etc.).
    pub fn proc_(&self) -> &Proc {
        &self.proc_
    }
}

/// Run an `n`-rank Motor program. `define_types` is applied to every
/// rank's fresh type registry before the body starts (all ranks must know
/// the application classes, as all SPMD programs do); `body` is the rank
/// program.
pub fn run_cluster<D, B>(
    n: usize,
    config: ClusterConfig,
    define_types: D,
    body: B,
) -> CoreResult<()>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    let vm_config = config.vm.clone();
    let policy = config.policy;
    Universe::run_with(n, config.universe.clone(), move |proc| {
        let vm = Vm::new(vm_config.clone());
        {
            let mut reg = vm.registry_mut();
            define_types(&mut reg);
        }
        let thread = MotorThread::attach(Arc::clone(&vm));
        let comm = proc.world().clone();
        let mp = MotorProc {
            vm,
            thread,
            comm,
            pool: Arc::new(BufPool::new()),
            policy,
            proc_: proc,
        };
        body(&mp);
    })?;
    Ok(())
}

/// [`run_cluster`] with default configuration.
pub fn run_cluster_default<D, B>(n: usize, define_types: D, body: B) -> CoreResult<()>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    run_cluster(n, ClusterConfig::default(), define_types, body)
}

/// MPI-2 dynamic process management at the Motor level (paper §7: "we
/// have implemented selected MPI-2 functionality such as dynamic process
/// management and dynamic intercommunication routines").
///
/// Collective over `proc`'s world communicator: spawns `count` new Motor
/// processes, each with its own fresh VM (types defined by
/// `define_types`), running `entry`. Every parent receives the
/// parent↔children [`InterComm`]; each child's [`MotorProc::parent_comm`]
/// is the children↔parents intercommunicator.
pub fn spawn_motor_children<D, B>(
    proc: &MotorProc,
    count: usize,
    config: ClusterConfig,
    define_types: D,
    entry: B,
) -> CoreResult<motor_mpc::universe::InterComm>
where
    D: Fn(&mut TypeRegistry) + Send + Sync + 'static,
    B: Fn(&MotorProc) + Send + Sync + 'static,
{
    let vm_config = config.vm.clone();
    let policy = config.policy;
    let inter = proc.proc_.universe().spawn_children(
        proc.comm(),
        count,
        move |child: Proc| {
            let vm = Vm::new(vm_config.clone());
            {
                let mut reg = vm.registry_mut();
                define_types(&mut reg);
            }
            let thread = MotorThread::attach(Arc::clone(&vm));
            let comm = child.world().clone();
            let mp = MotorProc {
                vm,
                thread,
                comm,
                pool: Arc::new(BufPool::new()),
                policy,
                proc_: child,
            };
            entry(&mp);
        },
    )?;
    Ok(inter)
}

impl MotorProc {
    /// The parent intercommunicator, if this Motor process was spawned
    /// dynamically (the `MPI_Comm_get_parent` analog).
    pub fn parent_comm(&self) -> Option<&motor_mpc::universe::InterComm> {
        self.proc_.parent()
    }

    /// Object transport to a remote-group rank of an intercommunicator:
    /// serialize with the Motor mechanism, ship size then data.
    pub fn osend_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        obj: motor_runtime::Handle,
        remote_rank: usize,
        tag: i32,
    ) -> CoreResult<()> {
        let ser = crate::serial::Serializer::new(&self.thread);
        let (bytes, _) = ser.serialize(obj)?;
        let size = (bytes.len() as u64).to_le_bytes();
        inter.send_bytes(&size, remote_rank, tag)?;
        inter.send_bytes(&bytes, remote_rank, tag)?;
        Ok(())
    }

    /// Receive an object tree from a remote-group rank of an
    /// intercommunicator (`remote_rank` may be [`crate::ANY_SOURCE`]).
    pub fn orecv_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        remote_rank: i32,
        tag: i32,
    ) -> CoreResult<(motor_runtime::Handle, usize)> {
        let mut size = [0u8; 8];
        let st = inter.recv_bytes(&mut size, remote_rank, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut data = vec![0u8; len];
        inter.recv_bytes(&mut data, st.source as i32, st.tag)?;
        let ser = crate::serial::Serializer::new(&self.thread);
        let root = ser.deserialize(&data)?;
        Ok((root, st.source as usize))
    }
}
