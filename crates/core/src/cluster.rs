//! The Motor cluster harness: one VM instance per MPI rank.
//!
//! The paper's deployment model is N operating-system processes, each
//! hosting a Motor virtual machine whose runtime embeds the Message
//! Passing Core. Here each rank is an OS *thread* owning a private
//! [`Vm`] (its own heap, collector, safepoints, type registry) wired to
//! its peers through the universe's links — the same isolation the paper
//! gets from process boundaries, minus the address-space separation.

use std::sync::Arc;

use motor_mpc::universe::{ChannelKind, Proc, Universe, UniverseConfig};
use motor_mpc::{Comm, Source};
use motor_obs::{Metric, MetricsSnapshot};
use motor_runtime::{MotorThread, TypeRegistry, Vm, VmConfig};
use parking_lot::Mutex;

use crate::bufpool::BufPool;
use crate::error::CoreResult;
use crate::mp::Mp;
use crate::oomp::Oomp;
use crate::pinning::PinPolicy;

/// Configuration of a Motor cluster. Build one with
/// [`ClusterConfig::builder`] or fill the fields directly.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of ranks (VM instances) to run.
    pub ranks: usize,
    /// Per-rank VM configuration.
    pub vm: VmConfig,
    /// Universe (transport/device) configuration.
    pub universe: UniverseConfig,
    /// Pinning policy applied by the `System.MP` bindings.
    pub policy: PinPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            ranks: 1,
            vm: VmConfig::default(),
            universe: UniverseConfig::default(),
            policy: PinPolicy::default(),
        }
    }
}

impl ClusterConfig {
    /// Start building a cluster configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }
}

/// Fluent builder for [`ClusterConfig`].
#[derive(Clone, Default)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of ranks to run.
    pub fn ranks(mut self, n: usize) -> Self {
        self.config.ranks = n;
        self
    }

    /// Transport between ranks (shared-memory rings or loopback TCP).
    pub fn transport(mut self, kind: ChannelKind) -> Self {
        self.config.universe.channel = kind;
        self
    }

    /// Pinning policy for the `System.MP` bindings.
    pub fn policy(mut self, policy: PinPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Per-rank VM configuration.
    pub fn vm(mut self, vm: VmConfig) -> Self {
        self.config.vm = vm;
        self
    }

    /// Full universe configuration (overrides [`Self::transport`] and
    /// [`Self::eager_threshold`] if set afterwards).
    pub fn universe(mut self, universe: UniverseConfig) -> Self {
        self.config.universe = universe;
        self
    }

    /// Eager/rendezvous protocol switch-over size, in bytes.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.config.universe.device.eager_threshold = bytes;
        self
    }

    /// Finish building.
    pub fn build(self) -> ClusterConfig {
        self.config
    }
}

/// Per-rank metrics snapshots collected when a cluster run exits.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// One merged (transport + runtime + GC-bridge) snapshot per rank, in
    /// rank order.
    pub per_rank: Vec<MetricsSnapshot>,
}

impl ClusterMetrics {
    /// Merge every rank's snapshot into one cluster-wide view (counters
    /// add; queue peaks take the max across ranks).
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::empty();
        for s in &self.per_rank {
            out.merge(s);
        }
        out
    }
}

/// One rank's Motor environment, handed to the rank body.
pub struct MotorProc {
    vm: Arc<Vm>,
    thread: MotorThread,
    comm: Comm,
    pool: Arc<BufPool>,
    policy: PinPolicy,
    proc_: Proc,
}

impl MotorProc {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The rank's VM.
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    /// The rank's attached mutator thread.
    pub fn thread(&self) -> &MotorThread {
        &self.thread
    }

    /// The world communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The regular MPI bindings (`System.MP`).
    pub fn mp(&self) -> Mp<'_> {
        Mp::with_policy(&self.thread, self.comm.clone(), self.policy)
    }

    /// The extended object-oriented operations.
    pub fn oomp(&self) -> Oomp<'_> {
        Oomp::new(&self.thread, self.comm.clone(), Arc::clone(&self.pool))
    }

    /// The OO buffer pool (diagnostics).
    pub fn pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// The underlying universe process (dynamic spawning etc.).
    pub fn native(&self) -> &Proc {
        &self.proc_
    }

    /// Merged metrics for this rank: the transport-side registry (channel,
    /// device, collectives), the runtime-side registry (safepoints,
    /// serializer, buffer pool) and the GC counters bridged in.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.comm.device().metrics().snapshot();
        snap.merge(&self.vm.metrics().snapshot());
        let gc = self.vm.stats_snapshot();
        snap.set_gc_bridge(&[
            (Metric::GcMinorCollections, gc.minor_collections),
            (Metric::GcFullCollections, gc.full_collections),
            (Metric::GcObjectsPromoted, gc.objects_promoted),
            (Metric::GcBytesPromoted, gc.bytes_promoted),
            (Metric::GcPinnedBlockPromotions, gc.pinned_block_promotions),
            (Metric::GcPins, gc.pins),
            (Metric::GcUnpins, gc.unpins),
            (Metric::GcCondPinsRegistered, gc.conditional_pins_registered),
            (Metric::GcCondPinsHeld, gc.conditional_pins_held),
            (Metric::GcCondPinsReleased, gc.conditional_pins_released),
            (Metric::GcPinsAvoidedElder, gc.pins_avoided_elder),
            (
                Metric::GcPinsAvoidedFastBlocking,
                gc.pins_avoided_fast_blocking,
            ),
            (Metric::GcObjectsSwept, gc.objects_swept),
            (Metric::GcBytesSwept, gc.bytes_swept),
        ]);
        snap
    }
}

/// Run a Motor program on `config.ranks` ranks. `define_types` is applied
/// to every rank's fresh type registry before the body starts (all ranks
/// must know the application classes, as all SPMD programs do); `body` is
/// the rank program. On exit, every rank's metrics snapshot is collected
/// and returned in rank order.
pub fn run_cluster<D, B>(
    config: ClusterConfig,
    define_types: D,
    body: B,
) -> CoreResult<ClusterMetrics>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    let n = config.ranks;
    let vm_config = config.vm.clone();
    let policy = config.policy;
    let snaps: Mutex<Vec<(usize, MetricsSnapshot)>> = Mutex::new(Vec::with_capacity(n));
    Universe::run_with(n, config.universe.clone(), |proc| {
        let vm = Vm::new(vm_config.clone());
        {
            let mut reg = vm.registry_mut();
            define_types(&mut reg);
        }
        let thread = MotorThread::attach(Arc::clone(&vm));
        let comm = proc.world().clone();
        let pool = Arc::new(BufPool::new());
        pool.attach_metrics(Arc::clone(vm.metrics()));
        let mp = MotorProc {
            vm,
            thread,
            comm,
            pool,
            policy,
            proc_: proc,
        };
        body(&mp);
        snaps.lock().push((mp.rank(), mp.metrics()));
    })?;
    let mut per_rank = snaps.into_inner();
    per_rank.sort_by_key(|&(r, _)| r);
    Ok(ClusterMetrics {
        per_rank: per_rank.into_iter().map(|(_, s)| s).collect(),
    })
}

/// [`run_cluster`] on `n` ranks with otherwise default configuration.
pub fn run_cluster_default<D, B>(n: usize, define_types: D, body: B) -> CoreResult<ClusterMetrics>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    run_cluster(
        ClusterConfig::builder().ranks(n).build(),
        define_types,
        body,
    )
}

/// MPI-2 dynamic process management at the Motor level (paper §7: "we
/// have implemented selected MPI-2 functionality such as dynamic process
/// management and dynamic intercommunication routines").
///
/// Collective over `proc`'s world communicator: spawns `count` new Motor
/// processes, each with its own fresh VM (types defined by
/// `define_types`), running `entry`. Every parent receives the
/// parent↔children [`InterComm`]; each child's [`MotorProc::parent_comm`]
/// is the children↔parents intercommunicator.
pub fn spawn_motor_children<D, B>(
    proc: &MotorProc,
    count: usize,
    config: ClusterConfig,
    define_types: D,
    entry: B,
) -> CoreResult<motor_mpc::universe::InterComm>
where
    D: Fn(&mut TypeRegistry) + Send + Sync + 'static,
    B: Fn(&MotorProc) + Send + Sync + 'static,
{
    let vm_config = config.vm.clone();
    let policy = config.policy;
    let inter = proc
        .proc_
        .universe()
        .spawn_children(proc.comm(), count, move |child: Proc| {
            let vm = Vm::new(vm_config.clone());
            {
                let mut reg = vm.registry_mut();
                define_types(&mut reg);
            }
            let thread = MotorThread::attach(Arc::clone(&vm));
            let comm = child.world().clone();
            let pool = Arc::new(BufPool::new());
            pool.attach_metrics(Arc::clone(vm.metrics()));
            let mp = MotorProc {
                vm,
                thread,
                comm,
                pool,
                policy,
                proc_: child,
            };
            entry(&mp);
        })?;
    Ok(inter)
}

impl MotorProc {
    /// The parent intercommunicator, if this Motor process was spawned
    /// dynamically (the `MPI_Comm_get_parent` analog).
    pub fn parent_comm(&self) -> Option<&motor_mpc::universe::InterComm> {
        self.proc_.parent()
    }

    /// Object transport to a remote-group rank of an intercommunicator:
    /// serialize with the Motor mechanism, ship size then data.
    pub fn osend_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        obj: motor_runtime::Handle,
        remote_rank: usize,
        tag: i32,
    ) -> CoreResult<()> {
        let ser = crate::serial::Serializer::new(&self.thread);
        let (bytes, _) = ser.serialize(obj)?;
        let size = (bytes.len() as u64).to_le_bytes();
        inter.send_bytes(&size, remote_rank, tag)?;
        inter.send_bytes(&bytes, remote_rank, tag)?;
        Ok(())
    }

    /// Receive an object tree from a remote-group rank of an
    /// intercommunicator (`remote_rank` may be [`Source::Any`]).
    pub fn orecv_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        remote_rank: impl Into<Source>,
        tag: i32,
    ) -> CoreResult<(motor_runtime::Handle, usize)> {
        let mut size = [0u8; 8];
        let st = inter.recv_bytes(&mut size, remote_rank, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut data = vec![0u8; len];
        inter.recv_bytes(&mut data, st.source as usize, st.tag)?;
        let ser = crate::serial::Serializer::new(&self.thread);
        let root = ser.deserialize(&data)?;
        Ok((root, st.source as usize))
    }
}
