//! Reusable transport buffers for the object-oriented operations.
//!
//! Paper §7.5: "Motor provides buffers for object oriented message passing
//! operations, which are allocated from static runtime memory. They are
//! created on demand and stored in a stack for later use. At garbage
//! collection the stack is checked for buffers which are unused since the
//! last garbage collection and these are unallocated."
//!
//! The buffers live outside the managed heap ("static runtime memory"), so
//! the OO operations never need to pin (§7.4: "The Motor extended object
//! oriented operations do not need to pin memory because the Motor custom
//! serialization mechanism provides a static memory buffer").

use std::sync::{Arc, OnceLock};

use motor_obs::{Metric, MetricsRegistry};
use parking_lot::Mutex;

/// A pooled buffer; return it with [`BufPool::put`].
pub struct PoolBuf {
    buf: Vec<u8>,
}

impl PoolBuf {
    /// The buffer contents (mutably).
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// The buffer contents (read side).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

struct Entry {
    buf: Vec<u8>,
    /// GC epoch at which this buffer was last used.
    last_used_epoch: u64,
}

/// The buffer stack.
#[derive(Default)]
pub struct BufPool {
    stack: Mutex<Vec<Entry>>,
    /// Hit-rate accounting sink; unattached pools go unmetered.
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl BufPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report pool traffic into `registry` from now on (first attach wins).
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(registry);
    }

    #[inline]
    fn meter(&self, m: Metric) {
        if let Some(r) = self.metrics.get() {
            r.bump(m);
        }
    }

    /// Acquire a buffer of at least `capacity` bytes, reusing the most
    /// recently returned buffer that fits (stack discipline, as in the
    /// paper). `epoch` is the VM's current collection epoch.
    pub fn get(&self, capacity: usize, epoch: u64) -> PoolBuf {
        self.meter(Metric::PoolGets);
        let mut stack = self.stack.lock();
        // Prefer the top of the stack (hot buffer).
        if let Some(pos) = stack.iter().rposition(|e| e.buf.capacity() >= capacity) {
            let mut e = stack.remove(pos);
            e.buf.clear();
            let _ = epoch;
            drop(stack);
            self.meter(Metric::PoolHits);
            return PoolBuf { buf: e.buf };
        }
        // Take any buffer and let it grow, or make a new one.
        if let Some(mut e) = stack.pop() {
            e.buf.clear();
            e.buf.reserve(capacity);
            drop(stack);
            self.meter(Metric::PoolPartialHits);
            return PoolBuf { buf: e.buf };
        }
        drop(stack);
        self.meter(Metric::PoolMisses);
        PoolBuf {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Return a buffer to the stack, stamping the epoch of its last use.
    pub fn put(&self, buf: PoolBuf, epoch: u64) {
        self.meter(Metric::PoolPuts);
        self.stack.lock().push(Entry {
            buf: buf.buf,
            last_used_epoch: epoch,
        });
    }

    /// Adopt an externally produced buffer into the pool (e.g. a
    /// serializer output vector) so its storage is reused.
    pub fn adopt(&self, buf: Vec<u8>, epoch: u64) {
        self.meter(Metric::PoolPuts);
        self.stack.lock().push(Entry {
            buf,
            last_used_epoch: epoch,
        });
    }

    /// The GC hook: unallocate buffers unused since the previous
    /// collection. Call with the *new* epoch after a collection completes;
    /// buffers whose last use predates the previous epoch are dropped.
    pub fn trim_at_gc(&self, current_epoch: u64) {
        let mut stack = self.stack.lock();
        let before = stack.len();
        stack.retain(|e| e.last_used_epoch + 1 >= current_epoch);
        let dropped = (before - stack.len()) as u64;
        drop(stack);
        if dropped > 0 {
            if let Some(r) = self.metrics.get() {
                r.add(Metric::PoolTrimmed, dropped);
            }
        }
    }

    /// Buffers currently pooled.
    pub fn len(&self) -> usize {
        self.stack.lock().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_lifo() {
        let pool = BufPool::new();
        let mut a = pool.get(100, 0);
        a.buf_mut().extend_from_slice(&[1, 2, 3]);
        let cap = a.buf_mut().capacity();
        pool.put(a, 0);
        assert_eq!(pool.len(), 1);
        let b = pool.get(50, 0);
        assert_eq!(b.as_mut_capacity(), cap);
        assert!(b.as_slice().is_empty(), "reused buffers are cleared");
    }

    impl PoolBuf {
        fn as_mut_capacity(&self) -> usize {
            self.buf.capacity()
        }
    }

    #[test]
    fn small_buffers_grow_rather_than_allocate_new() {
        let pool = BufPool::new();
        let a = pool.get(16, 0);
        pool.put(a, 0);
        let b = pool.get(1 << 20, 0);
        assert!(b.as_mut_capacity() >= 1 << 20);
        assert_eq!(pool.len(), 0, "the small buffer was consumed and grown");
    }

    #[test]
    fn trim_drops_stale_buffers_only() {
        let pool = BufPool::new();
        // Hold both simultaneously so they are distinct buffers.
        let a = pool.get(10, 0);
        let b = pool.get(10, 0);
        pool.put(a, 0); // last used at epoch 0
        pool.put(b, 5); // last used at epoch 5
        assert_eq!(pool.len(), 2);
        // A collection at epoch 6: buffers unused since epoch 5 survive,
        // the epoch-0 buffer is unallocated.
        pool.trim_at_gc(6);
        assert_eq!(pool.len(), 1);
        // Another collection much later drops the rest.
        pool.trim_at_gc(100);
        assert!(pool.is_empty());
    }
}
