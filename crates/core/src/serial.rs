//! The Motor custom serialization mechanism (paper §7.5).
//!
//! Produces "a flat object-tree representation with two parts: a type
//! table, which details class information; and object data, which consists
//! of the objects laid out side-by-side, prefixed with an internal type
//! reference. Object references are exchanged for their local internal
//! equivalent. References to objects not included in the serialization are
//! swapped to null."
//!
//! Traversal follows the opt-in `[Transportable]` attribute: class fields
//! are propagated only when their `FieldDesc` carries the Transportable
//! bit; object-array elements are always propagated; unmarked references
//! are nulled (paper §4.2.2).
//!
//! Two details the paper calls out are reproduced faithfully:
//!
//! * **The visited-object structure is linear** by default — "at the time
//!   of writing we employ a linear structure to record objects visited
//!   during serialization. This causes excessive search times with large
//!   numbers of objects" — which is exactly what produces Motor's fall-off
//!   beyond ~2048 objects in Figure 10. The promised fix (a hashed
//!   structure) is implemented as [`VisitedStrategy::Hashed`] and compared
//!   in the `ablation_visited` benchmark.
//! * **The Transportable query** uses the fast FieldDesc bit by default;
//!   the slow metadata/reflection path ([`AttrLookup::Reflection`]) is kept
//!   for the ablation the paper implies ("introspecting type fields ...
//!   using the reflection library ... is a relatively slow operation").
//!
//! The **split representation** required by scatter/gather is provided by
//! [`Serializer::serialize_array_range`]: each part is a complete,
//! independently deserializable representation (own type table) whose root
//! is the sub-array — "a single split representation is constructed of
//! many regular representations ... each individually deserialisable at
//! the receiving end."
//!
//! ## Wire format
//!
//! ```text
//! [u32 type_count] type entries...
//!   class:      [0][name][u16 nfields] per field: [0,prim_tag]|[1,transportable] [name]
//!   prim array: [1][elem_tag]
//!   obj array:  [2][u32 elem_type_index]
//!   md array:   [3][elem_tag][rank]
//! [u32 object_count] object records...
//!   each: [u32 type_index] + payload
//!   class payload:       field values in declaration order
//!                        (prims raw LE; refs as u32 object index / NULL)
//!   prim array payload:  [u32 len][data]
//!   obj array payload:   [u32 len][u32 index/NULL ...]
//!   md array payload:    [u8 rank][u32 dims...][data]
//! Root object = record 0.
//! ```

use std::collections::HashMap;

use motor_obs::{alloc_span_id, EventKind, Metric};
use motor_runtime::object::ObjectRef;
use motor_runtime::{ClassId, ElemKind, FieldType, Handle, MotorThread, TypeKind};

use crate::error::{CoreError, CoreResult};

/// How visited objects are recorded during the graph walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VisitedStrategy {
    /// Linear list with O(n) lookup — the paper's implementation.
    #[default]
    Linear,
    /// Hash table — the paper's announced future improvement.
    Hashed,
}

/// How the Transportable attribute is queried per field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttrLookup {
    /// The Transportable bit on the FieldDesc (Motor's fast path, §7.5).
    #[default]
    FieldDescBit,
    /// Name-keyed metadata lookup (the slow reflection path).
    Reflection,
}

/// Serialization statistics (tests and ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerializeStats {
    /// Objects in the representation.
    pub objects: usize,
    /// Total visited-structure probe comparisons performed.
    pub visited_probes: u64,
    /// Bytes produced.
    pub bytes: usize,
}

/// Null reference marker in the object data.
const NULL_REF: u32 = u32::MAX;

const TT_CLASS: u8 = 0;
const TT_PRIM_ARRAY: u8 = 1;
const TT_OBJ_ARRAY: u8 = 2;
const TT_MD_ARRAY: u8 = 3;

/// The Motor serializer bound to a managed thread.
pub struct Serializer<'t> {
    thread: &'t MotorThread,
    strategy: VisitedStrategy,
    attrs: AttrLookup,
}

/// Visited-object record: address → object index. The linear variant is a
/// plain address array whose position *is* the object index (discovery
/// order), scanned per lookup — the paper's "linear structure to record
/// objects visited during serialization".
enum Visited {
    Linear(Vec<usize>),
    Hashed(HashMap<usize, u32>),
}

impl Visited {
    fn new(strategy: VisitedStrategy) -> Visited {
        match strategy {
            VisitedStrategy::Linear => Visited::Linear(Vec::new()),
            VisitedStrategy::Hashed => Visited::Hashed(HashMap::new()),
        }
    }

    fn get(&self, addr: usize, probes: &mut u64) -> Option<u32> {
        match self {
            Visited::Linear(v) => {
                if let Some(i) = v.iter().position(|&a| a == addr) {
                    *probes += i as u64 + 1;
                    return Some(i as u32);
                }
                *probes += v.len() as u64;
                None
            }
            Visited::Hashed(m) => {
                *probes += 1;
                m.get(&addr).copied()
            }
        }
    }

    fn insert(&mut self, addr: usize, idx: u32) {
        match self {
            Visited::Linear(v) => {
                debug_assert_eq!(idx as usize, v.len(), "discovery order is the index");
                v.push(addr);
            }
            Visited::Hashed(m) => {
                m.insert(addr, idx);
            }
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Sequential reader over a serialized buffer.
struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Reader<'a> {
        Reader { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(CoreError::Serialization(format!(
                "truncated representation at byte {} (+{n})",
                self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> CoreResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> CoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn str(&mut self) -> CoreResult<String> {
        let n = self.u16()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| CoreError::Serialization("non-UTF8 type name".into()))
    }
}

/// Serialization working state.
struct SerState<'r> {
    reg: &'r motor_runtime::TypeRegistry,
    visited: Visited,
    probes: u64,
    /// Discovery-ordered object addresses.
    objects: Vec<usize>,
    /// Sender ClassId → type-table index.
    type_index: HashMap<u32, u32>,
    type_entries: Vec<Vec<u8>>,
}

impl SerState<'_> {
    /// Register a type (recursively interning object-array element types),
    /// returning its table index.
    fn intern_type(&mut self, mt_id: u32) -> u32 {
        if let Some(&i) = self.type_index.get(&mt_id) {
            return i;
        }
        // Reserve the slot first so recursion on self-referential shapes
        // terminates.
        let idx = self.type_entries.len() as u32;
        self.type_index.insert(mt_id, idx);
        self.type_entries.push(Vec::new());

        let (kind, name, fields) = {
            let mt = self.reg.table(ClassId(mt_id));
            (mt.kind.clone(), mt.name.clone(), mt.fields.clone())
        };
        let mut e = Vec::new();
        match kind {
            TypeKind::Class => {
                e.push(TT_CLASS);
                put_str(&mut e, &name);
                put_u16(&mut e, fields.len() as u16);
                for f in &fields {
                    match f.ty {
                        FieldType::Prim(k) => {
                            e.push(0);
                            e.push(k.tag());
                        }
                        FieldType::Ref(_) => {
                            e.push(1);
                            e.push(if f.is_transportable() { 1 } else { 0 });
                        }
                    }
                    put_str(&mut e, &f.name);
                }
            }
            TypeKind::PrimArray(k) => {
                e.push(TT_PRIM_ARRAY);
                e.push(k.tag());
            }
            TypeKind::ObjArray(elem) => {
                let elem_idx = self.intern_type(elem.0);
                e.push(TT_OBJ_ARRAY);
                put_u32(&mut e, elem_idx);
            }
            TypeKind::MdArray { elem, rank } => {
                e.push(TT_MD_ARRAY);
                e.push(elem.tag());
                e.push(rank);
            }
        }
        self.type_entries[idx as usize] = e;
        idx
    }

    /// Assign an object index, discovering the object if new.
    fn discover(&mut self, addr: usize) -> u32 {
        if let Some(idx) = self.visited.get(addr, &mut self.probes) {
            return idx;
        }
        let idx = self.objects.len() as u32;
        self.visited.insert(addr, idx);
        self.objects.push(addr);
        idx
    }
}

impl<'t> Serializer<'t> {
    /// Create a serializer with Motor's defaults (linear visited list,
    /// FieldDesc-bit attribute lookup).
    pub fn new(thread: &'t MotorThread) -> Serializer<'t> {
        Serializer {
            thread,
            strategy: VisitedStrategy::Linear,
            attrs: AttrLookup::FieldDescBit,
        }
    }

    /// Override the visited-structure strategy.
    pub fn with_strategy(mut self, strategy: VisitedStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the attribute-lookup path.
    pub fn with_attr_lookup(mut self, attrs: AttrLookup) -> Self {
        self.attrs = attrs;
        self
    }

    fn is_transportable(&self, mt: &motor_runtime::MethodTable, field_idx: usize) -> bool {
        match self.attrs {
            AttrLookup::FieldDescBit => mt.fields[field_idx].is_transportable(),
            AttrLookup::Reflection => {
                // The metadata path: find the field by name (string-compare
                // scan, as reflection over type metadata would).
                let name = mt.fields[field_idx].name.clone();
                mt.field_by_name(&name)
                    .map(|(_, f)| f.is_transportable())
                    .unwrap_or(false)
            }
        }
    }

    /// Serialize the object graph rooted at `root`.
    pub fn serialize(&self, root: Handle) -> CoreResult<(Vec<u8>, SerializeStats)> {
        if self.thread.is_null(root) {
            return Err(CoreError::NullBuffer);
        }
        let addr = self.thread.vm().handle_addr(root);
        self.serialize_addrs(&[addr], None)
    }

    /// Serialize a sub-range of an array as an independently
    /// deserializable representation — one part of the split
    /// representation used by the scatter/gather operations (§7.5).
    pub fn serialize_array_range(
        &self,
        arr: Handle,
        offset: usize,
        count: usize,
    ) -> CoreResult<(Vec<u8>, SerializeStats)> {
        if self.thread.is_null(arr) {
            return Err(CoreError::NullBuffer);
        }
        let len = self.thread.array_len(arr);
        if offset + count > len {
            return Err(CoreError::RangeOutOfBounds { offset, count, len });
        }
        let vm = self.thread.vm();
        let addr = vm.handle_addr(arr);
        let obj = ObjectRef(addr);
        // SAFETY: cooperative, non-polling FCall context: stable address.
        let mt_id = unsafe { obj.header().mt };
        let reg = vm.registry();
        match reg.table(ClassId(mt_id)).kind.clone() {
            TypeKind::ObjArray(elem) => {
                // Synthetic object-array root over the range elements.
                let mut elems = Vec::with_capacity(count);
                for i in offset..offset + count {
                    // SAFETY: bounds checked above.
                    elems.push(unsafe { *obj.obj_array_slot(i) });
                }
                drop(reg);
                self.serialize_addrs(
                    &[],
                    Some(RangeRoot::Objects {
                        elem: elem.0,
                        elems,
                    }),
                )
            }
            TypeKind::PrimArray(k) => {
                let mut data = vec![0u8; count * k.size()];
                // SAFETY: bounds checked; cooperative context.
                unsafe {
                    let (p, _) = obj.prim_array_data(k.size());
                    std::ptr::copy_nonoverlapping(
                        p.add(offset * k.size()),
                        data.as_mut_ptr(),
                        data.len(),
                    );
                }
                drop(reg);
                self.serialize_addrs(&[], Some(RangeRoot::Prims { kind: k, data }))
            }
            _ => Err(CoreError::Serialization(
                "range serialization requires an array".into(),
            )),
        }
    }

    /// Core serialization over explicit roots. `range_root`, if present,
    /// becomes record 0 (the synthetic split-representation root).
    fn serialize_addrs(
        &self,
        roots: &[usize],
        range_root: Option<RangeRoot>,
    ) -> CoreResult<(Vec<u8>, SerializeStats)> {
        let vm = self.thread.vm();
        // Trace the whole pass: `a` is a process-unique pass id the trace
        // merger pairs begin/end on; the end event carries the output size.
        let pass = alloc_span_id();
        vm.metrics().event3(EventKind::SerBegin, pass, 0, 0);
        let reg = vm.registry();
        let mut st = SerState {
            reg: &reg,
            visited: Visited::new(self.strategy),
            probes: 0,
            objects: Vec::new(),
            type_index: HashMap::new(),
            type_entries: Vec::new(),
        };
        let mut obj_data: Vec<u8> = Vec::new();
        let mut record_count = 0usize;

        // Synthetic root first, if any.
        if let Some(rr) = &range_root {
            match rr {
                RangeRoot::Objects { elem, elems } => {
                    // An object-array type entry over the element class.
                    let elem_idx_entry = st.intern_type(*elem);
                    let tidx = st.type_entries.len() as u32;
                    let mut e = Vec::new();
                    e.push(TT_OBJ_ARRAY);
                    put_u32(&mut e, elem_idx_entry);
                    st.type_entries.push(e);
                    put_u32(&mut obj_data, tidx);
                    put_u32(&mut obj_data, elems.len() as u32);
                    for &a in elems {
                        if a == 0 {
                            put_u32(&mut obj_data, NULL_REF);
                        } else {
                            // Offset element indices by one: the synthetic
                            // root is record 0 and discovered objects start
                            // at record 1.
                            put_u32(&mut obj_data, st.discover(a) + 1);
                        }
                    }
                }
                RangeRoot::Prims { kind, data } => {
                    let tidx = st.type_entries.len() as u32;
                    st.type_entries.push(vec![TT_PRIM_ARRAY, kind.tag()]);
                    put_u32(&mut obj_data, tidx);
                    put_u32(&mut obj_data, (data.len() / kind.size()) as u32);
                    obj_data.extend_from_slice(data);
                }
            }
            record_count += 1;
        }
        let index_offset: u32 = if range_root.is_some() { 1 } else { 0 };
        for &r in roots {
            st.discover(r);
        }

        // Emit in discovery order; the list grows as references intern.
        let mut emit = 0usize;
        while emit < st.objects.len() {
            let addr = st.objects[emit];
            emit += 1;
            record_count += 1;
            let obj = ObjectRef(addr);
            // SAFETY: cooperative, non-polling FCall context.
            let (mt_id, extra) = unsafe {
                let h = obj.header();
                (h.mt, h.extra as usize)
            };
            let tidx = st.intern_type(mt_id);
            put_u32(&mut obj_data, tidx);
            // `st.reg` is a plain `&'r` copy, so `mt` borrows the registry
            // directly and `st` stays mutably usable below.
            let mt: &motor_runtime::MethodTable = st.reg.table(ClassId(mt_id));
            match &mt.kind {
                TypeKind::Class => {
                    for (fi, f) in mt.fields.iter().enumerate() {
                        match f.ty {
                            FieldType::Prim(k) => {
                                // SAFETY: method-table offsets.
                                unsafe {
                                    let p = obj.payload_ptr().add(f.offset as usize);
                                    obj_data
                                        .extend_from_slice(std::slice::from_raw_parts(p, k.size()));
                                }
                            }
                            FieldType::Ref(_) => {
                                // SAFETY: as above.
                                let v = unsafe { obj.read_ref_at(f.offset as usize) };
                                if v.is_null() || !self.is_transportable(mt, fi) {
                                    // "References are replaced with null"
                                    // unless marked Transportable (§4.2.2).
                                    put_u32(&mut obj_data, NULL_REF);
                                } else {
                                    put_u32(&mut obj_data, st.discover(v.0) + index_offset);
                                }
                            }
                        }
                    }
                }
                TypeKind::PrimArray(k) => {
                    put_u32(&mut obj_data, extra as u32);
                    // SAFETY: array data window.
                    unsafe {
                        let (p, bytes) = obj.prim_array_data(k.size());
                        obj_data.extend_from_slice(std::slice::from_raw_parts(p, bytes));
                    }
                }
                TypeKind::ObjArray(_) => {
                    put_u32(&mut obj_data, extra as u32);
                    for i in 0..extra {
                        // SAFETY: i < length.
                        let elem = unsafe { *obj.obj_array_slot(i) };
                        if elem == 0 {
                            put_u32(&mut obj_data, NULL_REF);
                        } else {
                            put_u32(&mut obj_data, st.discover(elem) + index_offset);
                        }
                    }
                }
                TypeKind::MdArray { elem, rank } => {
                    let (elem, rank) = (*elem, *rank);
                    // SAFETY: md accessors.
                    unsafe {
                        let dims = obj.md_dims(rank);
                        obj_data.push(rank);
                        for d in &dims {
                            put_u32(&mut obj_data, *d);
                        }
                        let (p, bytes) = obj.md_data(rank, elem.size());
                        obj_data.extend_from_slice(std::slice::from_raw_parts(p, bytes));
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(obj_data.len() + 64);
        put_u32(&mut out, st.type_entries.len() as u32);
        for e in &st.type_entries {
            out.extend_from_slice(e);
        }
        put_u32(&mut out, record_count as u32);
        out.extend_from_slice(&obj_data);
        let stats = SerializeStats {
            objects: record_count,
            visited_probes: st.probes,
            bytes: out.len(),
        };
        let reg = self.thread.vm().metrics();
        reg.bump(Metric::SerOps);
        reg.add(Metric::SerObjects, stats.objects as u64);
        reg.add(Metric::SerBytes, stats.bytes as u64);
        reg.add(Metric::SerVisitedProbes, stats.visited_probes);
        reg.event3(
            EventKind::SerEnd,
            pass,
            stats.bytes as u64,
            stats.objects as u64,
        );
        Ok((out, stats))
    }

    /// Reconstruct the object graph; returns a handle to the root object
    /// (record 0). Every intermediate handle is released.
    pub fn deserialize(&self, data: &[u8]) -> CoreResult<Handle> {
        let reg = self.thread.vm().metrics();
        reg.bump(Metric::DeserOps);
        reg.add(Metric::DeserBytes, data.len() as u64);
        let pass = alloc_span_id();
        reg.event3(EventKind::DeserBegin, pass, data.len() as u64, 0);
        let mut r = Reader::new(data);
        let type_count = r.u32()? as usize;
        let vm = self.thread.vm();

        // ---- Type table → local types ----
        let mut types: Vec<LocalType> = Vec::with_capacity(type_count);
        for _ in 0..type_count {
            match r.u8()? {
                TT_CLASS => {
                    let name = r.str()?;
                    let nf = r.u16()? as usize;
                    let mut wire_fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        let ftag = r.u8()?;
                        let prim = if ftag == 0 {
                            Some(ElemKind::from_tag(r.u8()?).ok_or_else(|| {
                                CoreError::Serialization("bad element tag".into())
                            })?)
                        } else {
                            let _transportable = r.u8()?;
                            None
                        };
                        let fname = r.str()?;
                        wire_fields.push((fname, prim));
                    }
                    let class = vm
                        .registry()
                        .by_name(&name)
                        .ok_or_else(|| CoreError::UnknownType(name.clone()))?;
                    // Layout verification against the local class.
                    {
                        let reg = vm.registry();
                        let mt = reg.table(class);
                        if mt.fields.len() != nf {
                            return Err(CoreError::Serialization(format!(
                                "type `{name}`: sender has {nf} fields, receiver {}",
                                mt.fields.len()
                            )));
                        }
                        for (lf, (wname, wprim)) in mt.fields.iter().zip(&wire_fields) {
                            let ok = match (lf.ty, wprim) {
                                (FieldType::Prim(a), Some(b)) => a == *b,
                                (FieldType::Ref(_), None) => true,
                                _ => false,
                            };
                            if lf.name != *wname || !ok {
                                return Err(CoreError::Serialization(format!(
                                    "type `{name}`: field `{wname}` mismatch"
                                )));
                            }
                        }
                    }
                    let fields = wire_fields.into_iter().map(|(_, prim)| prim).collect();
                    types.push(LocalType::Class { class, fields });
                }
                TT_PRIM_ARRAY => {
                    let k = ElemKind::from_tag(r.u8()?)
                        .ok_or_else(|| CoreError::Serialization("bad element tag".into()))?;
                    types.push(LocalType::PrimArray(k));
                }
                TT_OBJ_ARRAY => {
                    let elem_idx = r.u32()? as usize;
                    types.push(LocalType::ObjArray {
                        elem_type: elem_idx,
                    });
                }
                TT_MD_ARRAY => {
                    let k = ElemKind::from_tag(r.u8()?)
                        .ok_or_else(|| CoreError::Serialization("bad element tag".into()))?;
                    let rank = r.u8()?;
                    types.push(LocalType::MdArray { elem: k, rank });
                }
                other => return Err(CoreError::Serialization(format!("bad type kind {other}"))),
            }
        }
        // Resolve object-array element classes (may reference later
        // entries, hence the second pass).
        let elem_class_of = |types: &[LocalType], idx: usize| -> CoreResult<ClassId> {
            match types.get(idx) {
                Some(LocalType::Class { class, .. }) => Ok(*class),
                Some(LocalType::PrimArray(k)) => Ok(self.thread.array_class(*k)),
                Some(LocalType::ObjArray { .. }) | Some(LocalType::MdArray { .. }) => {
                    Err(CoreError::Serialization(
                        "nested array element classes are resolved lazily; \
                         unsupported element type"
                            .into(),
                    ))
                }
                None => Err(CoreError::Serialization(format!(
                    "bad elem type index {idx}"
                ))),
            }
        };

        // ---- Phase A: parse all records ----
        let object_count = r.u32()? as usize;
        if object_count == 0 {
            return Err(CoreError::Serialization("empty representation".into()));
        }
        enum Parsed<'a> {
            Class {
                t: usize,
                prims: Vec<(usize, &'a [u8])>,
                refs: Vec<(usize, u32)>,
            },
            PrimArray {
                t: usize,
                data: &'a [u8],
            },
            ObjArray {
                t: usize,
                elems: Vec<u32>,
            },
            MdArray {
                t: usize,
                dims: Vec<u32>,
                data: &'a [u8],
            },
        }
        let mut parsed: Vec<Parsed> = Vec::with_capacity(object_count);
        for _ in 0..object_count {
            let t = r.u32()? as usize;
            match types.get(t) {
                Some(LocalType::Class { fields, .. }) => {
                    let mut prims = Vec::new();
                    let mut refs = Vec::new();
                    for (fi, f) in fields.iter().enumerate() {
                        match f {
                            Some(k) => prims.push((fi, r.take(k.size())?)),
                            None => {
                                let idx = r.u32()?;
                                if idx != NULL_REF {
                                    refs.push((fi, idx));
                                }
                            }
                        }
                    }
                    parsed.push(Parsed::Class { t, prims, refs });
                }
                Some(LocalType::PrimArray(k)) => {
                    let len = r.u32()? as usize;
                    parsed.push(Parsed::PrimArray {
                        t,
                        data: r.take(len * k.size())?,
                    });
                }
                Some(LocalType::ObjArray { .. }) => {
                    let len = r.u32()? as usize;
                    let mut elems = Vec::with_capacity(len);
                    for _ in 0..len {
                        elems.push(r.u32()?);
                    }
                    parsed.push(Parsed::ObjArray { t, elems });
                }
                Some(LocalType::MdArray { elem, rank }) => {
                    let wire_rank = r.u8()?;
                    if wire_rank != *rank {
                        return Err(CoreError::Serialization("md rank mismatch".into()));
                    }
                    let mut dims = Vec::with_capacity(*rank as usize);
                    for _ in 0..*rank {
                        dims.push(r.u32()?);
                    }
                    let count: usize = dims.iter().map(|&d| d as usize).product();
                    parsed.push(Parsed::MdArray {
                        t,
                        dims,
                        data: r.take(count * elem.size())?,
                    });
                }
                None => return Err(CoreError::Serialization(format!("bad type index {t}"))),
            }
        }

        // ---- Phase B: allocate and fill primitive content ----
        let mut handles: Vec<Handle> = Vec::with_capacity(object_count);
        for p in &parsed {
            let h = match p {
                Parsed::Class { t, prims, .. } => {
                    let (class, fields) = match &types[*t] {
                        LocalType::Class { class, fields } => (*class, fields),
                        _ => unreachable!(),
                    };
                    let h = self.thread.alloc_instance(class);
                    for &(fi, raw) in prims {
                        let k = fields[fi].expect("prim field");
                        write_prim_field(self.thread, h, fi, k, raw);
                    }
                    h
                }
                Parsed::PrimArray { t, data } => {
                    let k = match &types[*t] {
                        LocalType::PrimArray(k) => *k,
                        _ => unreachable!(),
                    };
                    let h = self.thread.alloc_prim_array(k, data.len() / k.size());
                    write_array_bytes(self.thread, h, data);
                    h
                }
                Parsed::ObjArray { t, elems } => {
                    let elem_type = match &types[*t] {
                        LocalType::ObjArray { elem_type } => *elem_type,
                        _ => unreachable!(),
                    };
                    let elem_class = elem_class_of(&types, elem_type)?;
                    self.thread.alloc_obj_array(elem_class, elems.len())
                }
                Parsed::MdArray { t, dims, data } => {
                    let elem = match &types[*t] {
                        LocalType::MdArray { elem, .. } => *elem,
                        _ => unreachable!(),
                    };
                    let h = self.thread.alloc_md_array(elem, dims);
                    write_array_bytes(self.thread, h, data);
                    h
                }
            };
            handles.push(h);
        }

        // ---- Phase C: patch references ----
        let get_target = |handles: &[Handle], idx: u32| -> CoreResult<Handle> {
            handles
                .get(idx as usize)
                .copied()
                .ok_or_else(|| CoreError::Serialization(format!("bad object index {idx}")))
        };
        for (oi, p) in parsed.iter().enumerate() {
            match p {
                Parsed::Class { refs, .. } => {
                    for &(fi, idx) in refs {
                        let target = get_target(&handles, idx)?;
                        self.thread.set_ref(handles[oi], fi, target);
                    }
                }
                Parsed::ObjArray { elems, .. } => {
                    for (ei, &idx) in elems.iter().enumerate() {
                        if idx != NULL_REF {
                            let target = get_target(&handles, idx)?;
                            self.thread.obj_array_set(handles[oi], ei, target);
                        }
                    }
                }
                _ => {}
            }
        }

        // Keep the root; release the rest.
        let root = handles[0];
        for h in handles.into_iter().skip(1) {
            self.thread.release(h);
        }
        self.thread.vm().metrics().event3(
            EventKind::DeserEnd,
            pass,
            data.len() as u64,
            object_count as u64,
        );
        Ok(root)
    }
}

enum LocalType {
    Class {
        class: ClassId,
        fields: Vec<Option<ElemKind>>,
    },
    PrimArray(ElemKind),
    ObjArray {
        elem_type: usize,
    },
    MdArray {
        elem: ElemKind,
        rank: u8,
    },
}

enum RangeRoot {
    Objects { elem: u32, elems: Vec<usize> },
    Prims { kind: ElemKind, data: Vec<u8> },
}

fn write_prim_field(t: &MotorThread, h: Handle, fi: usize, k: ElemKind, raw: &[u8]) {
    macro_rules! w {
        ($ty:ty) => {{
            let v = <$ty>::from_le_bytes(raw.try_into().unwrap());
            t.set_prim::<$ty>(h, fi, v);
        }};
    }
    match k {
        ElemKind::Bool | ElemKind::U8 => w!(u8),
        ElemKind::I8 => w!(i8),
        ElemKind::I16 => w!(i16),
        ElemKind::U16 | ElemKind::Char => w!(u16),
        ElemKind::I32 => w!(i32),
        ElemKind::U32 => w!(u32),
        ElemKind::I64 => w!(i64),
        ElemKind::U64 => w!(u64),
        ElemKind::F32 => w!(f32),
        ElemKind::F64 => w!(f64),
    }
}

/// Bulk-fill a freshly allocated primitive/md array from raw bytes.
fn write_array_bytes(t: &MotorThread, h: Handle, raw: &[u8]) {
    let (p, len) = t.raw_data_window(h);
    assert_eq!(len, raw.len(), "array byte-length mismatch");
    // SAFETY: freshly allocated array; cooperative non-polling context
    // (no safepoint between the window resolution and this write).
    unsafe {
        std::ptr::copy_nonoverlapping(raw.as_ptr(), p, raw.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    struct Fixture {
        vm: Arc<Vm>,
        node: ClassId,
        arr_i32: ClassId,
    }

    /// The paper's `LinkedArray` shape (Figure 5): a transportable i32
    /// array, a transportable `next`, and a *non*-transportable `next2`.
    fn fixture() -> Fixture {
        let vm = Vm::new(VmConfig::default());
        let (node, arr_i32) = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            // Self-reference: register a placeholder first is unnecessary —
            // the builder accepts any ClassId, and `LinkedArray`'s id is
            // deterministic (next id in sequence).
            let next_id = ClassId(reg.len() as u32);
            let node = reg
                .define_class("LinkedArray")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .reference("next2", next_id)
                .build();
            assert_eq!(node, next_id, "self-referential id prediction");
            (node, arr)
        };
        Fixture { vm, node, arr_i32 }
    }

    fn build_list(t: &MotorThread, f: &Fixture, n: usize, payload_per_node: usize) -> Handle {
        let (ftag, farr, fnext) = (
            t.field_index(f.node, "tag"),
            t.field_index(f.node, "array"),
            t.field_index(f.node, "next"),
        );
        let mut head = t.null_handle();
        for i in (0..n).rev() {
            let node = t.alloc_instance(f.node);
            t.set_prim::<i32>(node, ftag, i as i32);
            let arr = t.alloc_prim_array(ElemKind::I32, payload_per_node);
            let data: Vec<i32> = (0..payload_per_node)
                .map(|j| (i * 1000 + j) as i32)
                .collect();
            t.prim_write(arr, 0, &data);
            t.set_ref(node, farr, arr);
            t.set_ref(node, fnext, head);
            t.release(arr);
            t.release(head);
            head = node;
        }
        head
    }

    fn check_list(t: &MotorThread, f: &Fixture, head: Handle, n: usize, payload: usize) {
        let (ftag, farr, fnext) = (
            t.field_index(f.node, "tag"),
            t.field_index(f.node, "array"),
            t.field_index(f.node, "next"),
        );
        let mut cur = t.clone_handle(head);
        for i in 0..n {
            assert!(!t.is_null(cur), "list too short at {i}");
            assert_eq!(t.get_prim::<i32>(cur, ftag), i as i32);
            let arr = t.get_ref(cur, farr);
            let mut buf = vec![0i32; payload];
            t.prim_read(arr, 0, &mut buf);
            for (j, &v) in buf.iter().enumerate() {
                assert_eq!(v, (i * 1000 + j) as i32);
            }
            t.release(arr);
            let next = t.get_ref(cur, fnext);
            t.release(cur);
            cur = next;
        }
        assert!(t.is_null(cur), "list too long");
        t.release(cur);
    }

    #[test]
    fn linked_list_roundtrip() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let head = build_list(&t, &f, 10, 8);
        let ser = Serializer::new(&t);
        let (buf, stats) = ser.serialize(head).unwrap();
        // 10 nodes + 10 arrays.
        assert_eq!(stats.objects, 20);
        let copy = ser.deserialize(&buf).unwrap();
        check_list(&t, &f, copy, 10, 8);
    }

    #[test]
    fn non_transportable_refs_become_null() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let (fnext2, ftag) = (t.field_index(f.node, "next2"), t.field_index(f.node, "tag"));
        let a = t.alloc_instance(f.node);
        let b = t.alloc_instance(f.node);
        t.set_prim::<i32>(a, ftag, 1);
        t.set_ref(a, fnext2, b); // NOT transportable
        let ser = Serializer::new(&t);
        let (buf, stats) = ser.serialize(a).unwrap();
        assert_eq!(stats.objects, 1, "next2 must not be propagated");
        let copy = ser.deserialize(&buf).unwrap();
        let n2 = t.get_ref(copy, fnext2);
        assert!(t.is_null(n2), "non-transportable reference arrives as null");
    }

    #[test]
    fn shared_references_are_preserved() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let (farr, fnext) = (
            t.field_index(f.node, "array"),
            t.field_index(f.node, "next"),
        );
        // Two nodes sharing one array.
        let shared = t.alloc_prim_array(ElemKind::I32, 4);
        t.prim_write(shared, 0, &[9i32, 8, 7, 6]);
        let a = t.alloc_instance(f.node);
        let b = t.alloc_instance(f.node);
        t.set_ref(a, farr, shared);
        t.set_ref(b, farr, shared);
        t.set_ref(a, fnext, b);
        let ser = Serializer::new(&t);
        let (buf, stats) = ser.serialize(a).unwrap();
        assert_eq!(stats.objects, 3, "shared array serialized once");
        let copy = ser.deserialize(&buf).unwrap();
        let ca = t.get_ref(copy, farr);
        let cb_node = t.get_ref(copy, fnext);
        let cb = t.get_ref(cb_node, farr);
        assert!(t.same_object(ca, cb), "sharing preserved on the receiver");
    }

    #[test]
    fn cycles_terminate_and_roundtrip() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let fnext = t.field_index(f.node, "next");
        let a = t.alloc_instance(f.node);
        let b = t.alloc_instance(f.node);
        t.set_ref(a, fnext, b);
        t.set_ref(b, fnext, a); // cycle
        let ser = Serializer::new(&t);
        let (buf, stats) = ser.serialize(a).unwrap();
        assert_eq!(stats.objects, 2);
        let copy = ser.deserialize(&buf).unwrap();
        let cb = t.get_ref(copy, fnext);
        let back = t.get_ref(cb, fnext);
        assert!(t.same_object(copy, back), "cycle reconstructed");
    }

    #[test]
    fn object_array_roundtrip_with_null_slots() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let ftag = t.field_index(f.node, "tag");
        let arr = t.alloc_obj_array(f.node, 4);
        for i in [0usize, 2] {
            let n = t.alloc_instance(f.node);
            t.set_prim::<i32>(n, ftag, i as i32 * 11);
            t.obj_array_set(arr, i, n);
            t.release(n);
        }
        let ser = Serializer::new(&t);
        let (buf, _) = ser.serialize(arr).unwrap();
        let copy = ser.deserialize(&buf).unwrap();
        assert_eq!(t.array_len(copy), 4);
        for i in 0..4usize {
            let e = t.obj_array_get(copy, i);
            if i % 2 == 0 {
                assert_eq!(t.get_prim::<i32>(e, ftag), i as i32 * 11);
            } else {
                assert!(t.is_null(e));
            }
            t.release(e);
        }
    }

    #[test]
    fn md_array_roundtrip() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let md = t.alloc_md_array(ElemKind::F64, &[3, 4]);
        t.md_set::<f64>(md, &[2, 1], 6.5);
        t.md_set::<f64>(md, &[0, 3], -1.25);
        let ser = Serializer::new(&t);
        let (buf, _) = ser.serialize(md).unwrap();
        let copy = ser.deserialize(&buf).unwrap();
        assert_eq!(t.md_dims(copy), vec![3, 4]);
        assert_eq!(t.md_get::<f64>(copy, &[2, 1]), 6.5);
        assert_eq!(t.md_get::<f64>(copy, &[0, 3]), -1.25);
        assert_eq!(t.md_get::<f64>(copy, &[1, 1]), 0.0);
    }

    #[test]
    fn split_representation_scatters_object_arrays() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let ftag = t.field_index(f.node, "tag");
        let arr = t.alloc_obj_array(f.node, 6);
        for i in 0..6usize {
            let n = t.alloc_instance(f.node);
            t.set_prim::<i32>(n, ftag, i as i32);
            t.obj_array_set(arr, i, n);
            t.release(n);
        }
        let ser = Serializer::new(&t);
        // Split into 3 independently deserializable parts of 2.
        for part in 0..3usize {
            let (buf, stats) = ser.serialize_array_range(arr, part * 2, 2).unwrap();
            assert_eq!(stats.objects, 3, "synthetic root + 2 elements");
            let sub = ser.deserialize(&buf).unwrap();
            assert_eq!(t.array_len(sub), 2);
            for j in 0..2usize {
                let e = t.obj_array_get(sub, j);
                assert_eq!(t.get_prim::<i32>(e, ftag), (part * 2 + j) as i32);
                t.release(e);
            }
            t.release(sub);
        }
    }

    #[test]
    fn split_representation_on_prim_arrays() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let arr = t.alloc_prim_array(ElemKind::I32, 10);
        let data: Vec<i32> = (0..10).collect();
        t.prim_write(arr, 0, &data);
        let ser = Serializer::new(&t);
        let (buf, _) = ser.serialize_array_range(arr, 4, 3).unwrap();
        let sub = ser.deserialize(&buf).unwrap();
        assert_eq!(t.array_len(sub), 3);
        let mut got = vec![0i32; 3];
        t.prim_read(sub, 0, &mut got);
        assert_eq!(got, vec![4, 5, 6]);
    }

    #[test]
    fn linear_visited_probes_quadratically_vs_hashed() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let head = build_list(&t, &f, 200, 2);
        let lin = Serializer::new(&t).with_strategy(VisitedStrategy::Linear);
        let hash = Serializer::new(&t).with_strategy(VisitedStrategy::Hashed);
        let (_, s_lin) = lin.serialize(head).unwrap();
        let (_, s_hash) = hash.serialize(head).unwrap();
        assert_eq!(s_lin.objects, s_hash.objects);
        assert!(
            s_lin.visited_probes > 20 * s_hash.visited_probes,
            "linear {} vs hashed {}",
            s_lin.visited_probes,
            s_hash.visited_probes
        );
    }

    #[test]
    fn reflection_attr_lookup_is_equivalent_but_slow_path() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let head = build_list(&t, &f, 10, 4);
        let fast = Serializer::new(&t);
        let slow = Serializer::new(&t).with_attr_lookup(AttrLookup::Reflection);
        let (a, _) = fast.serialize(head).unwrap();
        let (b, _) = slow.serialize(head).unwrap();
        assert_eq!(a, b, "both lookup paths produce identical bytes");
    }

    #[test]
    fn unknown_type_is_reported() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let head = build_list(&t, &f, 1, 1);
        let (buf, _) = Serializer::new(&t).serialize(head).unwrap();
        // A VM that never registered LinkedArray cannot deserialize.
        let other = Vm::new(VmConfig::default());
        let t2 = MotorThread::attach(other);
        let ser2 = Serializer::new(&t2);
        assert!(
            matches!(ser2.deserialize(&buf), Err(CoreError::UnknownType(n)) if n == "LinkedArray")
        );
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let head = build_list(&t, &f, 3, 4);
        let (buf, _) = Serializer::new(&t).serialize(head).unwrap();
        let ser = Serializer::new(&t);
        for cut in [1usize, buf.len() / 2, buf.len() - 1] {
            assert!(
                ser.deserialize(&buf[..cut]).is_err(),
                "cut at {cut} must not deserialize"
            );
        }
    }

    #[test]
    fn deserialization_survives_gc_pressure() {
        // Small young generation so deserialization itself triggers GC.
        let vm = Vm::new(VmConfig {
            heap: motor_runtime::heap::HeapConfig {
                young_bytes: 4096,
                ..Default::default()
            },
            ..Default::default()
        });
        let (node, _arr) = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            let next_id = ClassId(reg.len() as u32);
            let node = reg
                .define_class("LinkedArray")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .reference("next2", next_id)
                .build();
            (node, arr)
        };
        let f = Fixture {
            vm: Arc::clone(&vm),
            node,
            arr_i32: ClassId(0),
        };
        let t = MotorThread::attach(Arc::clone(&vm));
        let head = build_list(&t, &f, 100, 16);
        let ser = Serializer::new(&t);
        let (buf, _) = ser.serialize(head).unwrap();
        let before = vm.stats_snapshot().minor_collections;
        let copy = ser.deserialize(&buf).unwrap();
        let after = vm.stats_snapshot().minor_collections;
        assert!(after > before, "GC ran during deserialization");
        check_list(&t, &f, copy, 100, 16);
        let _ = f.arr_i32;
    }
}
