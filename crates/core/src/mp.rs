//! `System.MP` — Motor's regular MPI bindings over managed objects.
//!
//! These are the operations of paper §4.2.1, "based on the official C++
//! MPI bindings ... simplified to protect the integrity of the underlying
//! object model":
//!
//! * The buffer is a single managed object (ref-free class instance,
//!   primitive array, or true multidimensional array). The `count`
//!   parameter is gone — the object *is* the message.
//! * The `MPI_Datatype` parameter is gone — the runtime knows the type.
//! * Objects containing references are refused (use the extended
//!   object-oriented operations of [`crate::oomp`]).
//! * Sub-ranges are supported **for arrays only**, via overloads carrying
//!   an element offset and count ("transporting portions of an array is
//!   supported").
//!
//! Every operation is an FCall: it polls the collector on entry and exit,
//! transfers zero-copy out of / into the object's instance data, and
//! applies the Motor pinning policy of [`crate::pinning`].

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

use motor_mpc::{Comm, DType, ReduceOp, Request, Source, Tag};
use motor_obs::{span_arg_peer_tag, MetricsRegistry, SpanKind, TimeBucket, INFLIGHT_NONE};
use motor_runtime::{ElemKind, Handle, MotorThread};

use crate::error::{CoreError, CoreResult};
use crate::fcall::Fcall;
use crate::pinning::{self, PinPolicy};

/// Re-export of the wildcard tag.
pub const ANY_TAG: i32 = motor_mpc::ANY_TAG;

/// Resolve a `RangeBounds` over an array of `len` elements into an
/// `(offset, count)` pair, rejecting inverted or overflowing bounds
/// (out-of-bounds against the actual array length is still checked by
/// the window resolution).
pub(crate) fn resolve_bounds(
    range: impl RangeBounds<usize>,
    len: usize,
) -> CoreResult<(usize, usize)> {
    let start = match range.start_bound() {
        Bound::Included(&s) => s,
        Bound::Excluded(&s) => s.checked_add(1).ok_or(CoreError::RangeOutOfBounds {
            offset: s,
            count: 0,
            len,
        })?,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&e) => e.checked_add(1).ok_or(CoreError::RangeOutOfBounds {
            offset: start,
            count: e,
            len,
        })?,
        Bound::Excluded(&e) => e,
        Bound::Unbounded => len,
    };
    if start > end || end > len {
        return Err(CoreError::RangeOutOfBounds {
            offset: start,
            count: end.saturating_sub(start),
            len,
        });
    }
    Ok((start, end - start))
}

/// Peer value recorded in trace span args: the rank, or `u32::MAX` for
/// a wildcard ([`Source::Any`]) receive.
fn source_peer(src: Source) -> usize {
    match src {
        Source::Rank(r) => r,
        Source::Any => u32::MAX as usize,
    }
}

/// Completion status of a Motor receive (the `MPI::Status` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MpStatus {
    /// Communicator rank of the sender.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Bytes received.
    pub bytes: usize,
}

impl From<motor_mpc::Status> for MpStatus {
    fn from(s: motor_mpc::Status) -> Self {
        MpStatus {
            source: s.source as usize,
            tag: s.tag,
            bytes: s.count,
        }
    }
}

/// A Motor non-blocking request (the `MPI::Request` analog). Holds the
/// buffer handle alive for the duration; under the wrapper (`Always`)
/// policy it also carries the hard pin to release at completion.
///
/// An outstanding request also stays registered in the VM registry's
/// live in-flight table (as `mp_isend`/`mp_irecv`) until it completes or
/// is dropped, so the `motor-doctor` watchdog can see non-blocking
/// operations that were initiated but never waited on.
pub struct MpRequest {
    inner: Request,
    buf: Handle,
    hard_pin: Option<motor_runtime::PinToken>,
    registry: Arc<MetricsRegistry>,
    inflight: usize,
    /// Whether this request still holds an open interval in the
    /// profiler's in-flight overlap clock (`async_op_begin` was called
    /// and the matching `async_op_end` has not run yet). Tracked
    /// separately from `inflight` because the doctor's in-flight table
    /// can be full (`INFLIGHT_NONE`) while overlap accounting still
    /// wants to see the operation.
    async_live: bool,
}

impl MpRequest {
    /// Whether the operation has completed.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// The buffer object this request transports.
    pub fn buffer(&self) -> Handle {
        self.buf
    }

    /// The underlying transport request (tests / pin conditions).
    pub fn inner(&self) -> &Request {
        &self.inner
    }

    /// Deregister from the in-flight table (idempotent; the slot must not
    /// be released twice or a later op's registration could be clobbered).
    fn finish_inflight(&mut self) {
        self.registry
            .op_end(std::mem::replace(&mut self.inflight, INFLIGHT_NONE));
        if std::mem::take(&mut self.async_live) {
            self.registry.async_op_end();
        }
    }
}

impl Drop for MpRequest {
    fn drop(&mut self) {
        self.finish_inflight();
    }
}

/// The `System.MP` interface bound to one rank: a managed thread plus a
/// communicator into the runtime-internal Message Passing Core.
pub struct Mp<'t> {
    thread: &'t MotorThread,
    comm: Comm,
    policy: PinPolicy,
}

impl Mp<'_> {
    /// Enter a profiling time bucket on this rank's VM-side registry —
    /// the registry whose phase machine `run_cluster` arms. Layers that
    /// talk to the transport directly (the typed `motor-api` front-end)
    /// use this to classify their blocking communication time; without
    /// it the device-side spans they trigger cannot reach the rank's
    /// wall-clock partition.
    #[inline]
    pub fn phase_scope(&self, bucket: TimeBucket) -> motor_obs::PhaseScope<'_> {
        self.thread.vm().metrics().phase_scope(bucket)
    }
}

/// Map a managed element kind to a wire datatype.
pub fn dtype_of(kind: ElemKind) -> DType {
    match kind {
        ElemKind::Bool | ElemKind::U8 => DType::U8,
        ElemKind::I8 => DType::I8,
        ElemKind::I16 => DType::I16,
        ElemKind::U16 | ElemKind::Char => DType::U16,
        ElemKind::I32 => DType::I32,
        ElemKind::U32 => DType::U32,
        ElemKind::I64 => DType::I64,
        ElemKind::U64 => DType::U64,
        ElemKind::F32 => DType::F32,
        ElemKind::F64 => DType::F64,
    }
}

impl<'t> Mp<'t> {
    /// Bind the interface to a thread and communicator with the default
    /// (Motor) pinning policy.
    pub fn new(thread: &'t MotorThread, comm: Comm) -> Mp<'t> {
        Self::with_policy(thread, comm, PinPolicy::Motor)
    }

    /// Bind with an explicit pinning policy (ablations and baselines).
    pub fn with_policy(thread: &'t MotorThread, comm: Comm, policy: PinPolicy) -> Mp<'t> {
        Mp {
            thread,
            comm,
            policy,
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The bound communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The bound thread.
    pub fn thread(&self) -> &'t MotorThread {
        self.thread
    }

    /// The active pinning policy.
    pub fn policy(&self) -> PinPolicy {
        self.policy
    }

    // ------------------------------------------------------------------
    // Window resolution
    // ------------------------------------------------------------------

    /// Validate and resolve the whole-object window.
    fn window(&self, fc: &Fcall<'_>, obj: Handle) -> CoreResult<(*mut u8, usize)> {
        fc.check_transportable_raw(obj)?;
        Ok(fc.data_window(obj))
    }

    /// Window resolution for a *statically proven* buffer: the
    /// `motor-analyze` transport pass already established that every value
    /// reaching this site has a reference-free, transportable class, so
    /// the per-send registry walk is elided. Nullness stays a runtime
    /// property and is still checked.
    fn resolve_window(
        &self,
        fc: &Fcall<'_>,
        obj: Handle,
        trusted: bool,
    ) -> CoreResult<(*mut u8, usize)> {
        if trusted {
            fc.check_not_null(obj)?;
            Ok(fc.data_window(obj))
        } else {
            self.window(fc, obj)
        }
    }

    /// Validate and resolve an array sub-range window (element offset and
    /// count), per the array overloads of §4.2.1.
    fn range_window(
        &self,
        fc: &Fcall<'_>,
        obj: Handle,
        offset: usize,
        count: usize,
    ) -> CoreResult<(*mut u8, usize)> {
        fc.check_transportable_raw(obj)?;
        let kind = fc
            .elem_kind(obj)
            .ok_or_else(|| CoreError::Serialization("range transport requires an array".into()))?;
        let len = self.thread.array_len(obj);
        if offset + count > len {
            return Err(CoreError::RangeOutOfBounds { offset, count, len });
        }
        let (ptr, _) = fc.data_window(obj);
        let es = kind.size();
        // SAFETY: offset bounds-checked against the array length.
        Ok((unsafe { ptr.add(offset * es) }, count * es))
    }

    // ------------------------------------------------------------------
    // Blocking point-to-point
    // ------------------------------------------------------------------

    /// Complete a started blocking operation with the paper's deferred
    /// pinning: fast-path test first; pin only if we must enter the
    /// polling wait.
    fn finish_blocking(&self, buf: Handle, req: Request) -> CoreResult<MpStatus> {
        if let Some(st) = self.comm.test(&req)? {
            pinning::note_fast_blocking_completion(self.thread, self.policy, buf);
            return Ok(st.into());
        }
        let pin = pinning::pin_for_polling_wait(self.thread, self.policy, buf);
        let st = self.comm.wait_with(&req, || self.thread.poll());
        pinning::release(self.thread, pin);
        Ok(st?.into())
    }

    /// Blocking standard-mode send of a whole object.
    pub fn send(&self, obj: Handle, dest: usize, tag: impl Into<Tag>) -> CoreResult<()> {
        self.send_impl(obj, dest, tag.into(), false)
    }

    /// `send` with the transportability check elided (statically proven
    /// buffer; used by [`crate::fcall::MpIntrinsics`]).
    pub(crate) fn send_trusted(
        &self,
        obj: Handle,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<()> {
        self.send_impl(obj, dest, tag.into(), true)
    }

    fn send_impl(&self, obj: Handle, dest: usize, tag: Tag, trusted: bool) -> CoreResult<()> {
        let _span = self
            .thread
            .vm()
            .metrics()
            .span(SpanKind::MpSend, span_arg_peer_tag(dest, tag.to_device()));
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.resolve_window(&fc, obj, trusted)?;
        // SAFETY: window stability is maintained by the pinning policy
        // inside `finish_blocking` (no poll happens before the pin).
        let req = unsafe { self.comm.isend_ptr(ptr, len, dest, tag)? };
        self.finish_blocking(obj, req)?;
        Ok(())
    }

    /// Blocking send of an array sub-range given as a Rust range, e.g.
    /// `mp.send_sub(buf, 128..384, dest, tag)`.
    pub fn send_sub(
        &self,
        obj: Handle,
        range: impl RangeBounds<usize>,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<()> {
        let (offset, count) = resolve_bounds(range, self.thread.array_len(obj))?;
        self.send_range_impl(obj, offset, count, dest, tag.into())
    }

    /// Blocking send of an array sub-range (element offset and count).
    #[deprecated(since = "0.6.0", note = "use `send_sub` with a Rust range instead")]
    pub fn send_range(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<()> {
        self.send_range_impl(obj, offset, count, dest, tag.into())
    }

    fn send_range_impl(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        dest: usize,
        tag: Tag,
    ) -> CoreResult<()> {
        let _span = self
            .thread
            .vm()
            .metrics()
            .span(SpanKind::MpSend, span_arg_peer_tag(dest, tag.to_device()));
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.range_window(&fc, obj, offset, count)?;
        // SAFETY: as in `send`.
        let req = unsafe { self.comm.isend_ptr(ptr, len, dest, tag)? };
        self.finish_blocking(obj, req)?;
        Ok(())
    }

    /// Blocking synchronous-mode send (completes only when matched).
    pub fn ssend(&self, obj: Handle, dest: usize, tag: impl Into<Tag>) -> CoreResult<()> {
        let tag = tag.into();
        let _span = self
            .thread
            .vm()
            .metrics()
            .span(SpanKind::MpSsend, span_arg_peer_tag(dest, tag.to_device()));
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.window(&fc, obj)?;
        // SAFETY: as in `send`.
        let req = unsafe { self.comm.issend_ptr(ptr, len, dest, tag)? };
        self.finish_blocking(obj, req)?;
        Ok(())
    }

    /// Blocking receive into a whole object. `src` may be
    /// [`Source::Any`].
    pub fn recv(
        &self,
        obj: Handle,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpStatus> {
        self.recv_impl(obj, src.into(), tag.into(), false)
    }

    /// `recv` with the transportability check elided (statically proven
    /// buffer).
    pub(crate) fn recv_trusted(
        &self,
        obj: Handle,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpStatus> {
        self.recv_impl(obj, src.into(), tag.into(), true)
    }

    fn recv_impl(&self, obj: Handle, src: Source, tag: Tag, trusted: bool) -> CoreResult<MpStatus> {
        let _span = self.thread.vm().metrics().span(
            SpanKind::MpRecv,
            span_arg_peer_tag(source_peer(src), tag.to_device()),
        );
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.resolve_window(&fc, obj, trusted)?;
        // SAFETY: as in `send`.
        let req = unsafe { self.comm.irecv_ptr(ptr, len, src, tag)? };
        self.finish_blocking(obj, req)
    }

    /// Blocking receive into an array sub-range given as a Rust range,
    /// e.g. `mp.recv_sub(buf, ..256, src, tag)`.
    pub fn recv_sub(
        &self,
        obj: Handle,
        range: impl RangeBounds<usize>,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpStatus> {
        let (offset, count) = resolve_bounds(range, self.thread.array_len(obj))?;
        self.recv_range_impl(obj, offset, count, src.into(), tag.into())
    }

    /// Blocking receive into an array sub-range (element offset and count).
    #[deprecated(since = "0.6.0", note = "use `recv_sub` with a Rust range instead")]
    pub fn recv_range(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpStatus> {
        self.recv_range_impl(obj, offset, count, src.into(), tag.into())
    }

    fn recv_range_impl(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        src: Source,
        tag: Tag,
    ) -> CoreResult<MpStatus> {
        let _span = self.thread.vm().metrics().span(
            SpanKind::MpRecv,
            span_arg_peer_tag(source_peer(src), tag.to_device()),
        );
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.range_window(&fc, obj, offset, count)?;
        // SAFETY: as in `send`.
        let req = unsafe { self.comm.irecv_ptr(ptr, len, src, tag)? };
        self.finish_blocking(obj, req)
    }

    // ------------------------------------------------------------------
    // Non-blocking (immediate) point-to-point
    // ------------------------------------------------------------------

    /// Immediate send. The buffer is protected by a conditional pin that
    /// the collector releases once the transport finishes (paper §4.3).
    pub fn isend(&self, obj: Handle, dest: usize, tag: impl Into<Tag>) -> CoreResult<MpRequest> {
        self.isend_impl(obj, dest, tag.into(), false)
    }

    /// `isend` with the transportability check elided (statically proven
    /// buffer).
    pub(crate) fn isend_trusted(
        &self,
        obj: Handle,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpRequest> {
        self.isend_impl(obj, dest, tag.into(), true)
    }

    fn isend_impl(
        &self,
        obj: Handle,
        dest: usize,
        tag: Tag,
        trusted: bool,
    ) -> CoreResult<MpRequest> {
        let _span = self
            .thread
            .vm()
            .metrics()
            .span(SpanKind::MpIsend, span_arg_peer_tag(dest, tag.to_device()));
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.resolve_window(&fc, obj, trusted)?;
        // SAFETY: the conditional pin registered below keeps the window
        // stable for the transport's lifetime; no poll intervenes.
        let req = unsafe { self.comm.isend_ptr(ptr, len, dest, tag)? };
        let hard_pin = pinning::pin_for_nonblocking(self.thread, self.policy, obj, &req);
        let registry = Arc::clone(self.thread.vm().metrics());
        let inflight =
            registry.op_begin(SpanKind::MpIsend, span_arg_peer_tag(dest, tag.to_device()));
        registry.async_op_begin();
        Ok(MpRequest {
            inner: req,
            buf: obj,
            hard_pin,
            registry,
            inflight,
            async_live: true,
        })
    }

    /// Immediate receive.
    pub fn irecv(
        &self,
        obj: Handle,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpRequest> {
        self.irecv_impl(obj, src.into(), tag.into(), false)
    }

    /// `irecv` with the transportability check elided (statically proven
    /// buffer).
    pub(crate) fn irecv_trusted(
        &self,
        obj: Handle,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<MpRequest> {
        self.irecv_impl(obj, src.into(), tag.into(), true)
    }

    fn irecv_impl(
        &self,
        obj: Handle,
        src: Source,
        tag: Tag,
        trusted: bool,
    ) -> CoreResult<MpRequest> {
        let _span = self.thread.vm().metrics().span(
            SpanKind::MpIrecv,
            span_arg_peer_tag(source_peer(src), tag.to_device()),
        );
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.resolve_window(&fc, obj, trusted)?;
        // SAFETY: as in `isend`.
        let req = unsafe { self.comm.irecv_ptr(ptr, len, src, tag)? };
        let hard_pin = pinning::pin_for_nonblocking(self.thread, self.policy, obj, &req);
        let registry = Arc::clone(self.thread.vm().metrics());
        let inflight = registry.op_begin(
            SpanKind::MpIrecv,
            span_arg_peer_tag(source_peer(src), tag.to_device()),
        );
        registry.async_op_begin();
        Ok(MpRequest {
            inner: req,
            buf: obj,
            hard_pin,
            registry,
            inflight,
            async_live: true,
        })
    }

    /// Wait for an immediate operation, polling the collector while
    /// waiting (the `MPI_Wait` analog).
    pub fn wait(&self, req: &mut MpRequest) -> CoreResult<MpStatus> {
        let _span = self
            .thread
            .vm()
            .metrics()
            .span(SpanKind::MpWait, req.inner.id());
        let _fc = Fcall::enter(self.thread);
        let st = self.comm.wait_with(&req.inner, || self.thread.poll())?;
        req.finish_inflight();
        if let Some(tok) = req.hard_pin.take() {
            self.thread.unpin(tok);
        }
        Ok(st.into())
    }

    /// Test an immediate operation (the `MPI_Test` analog).
    pub fn test(&self, req: &mut MpRequest) -> CoreResult<Option<MpStatus>> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::Progress);
        let _fc = Fcall::enter(self.thread);
        match self.comm.test(&req.inner)? {
            Some(st) => {
                req.finish_inflight();
                if let Some(tok) = req.hard_pin.take() {
                    self.thread.unpin(tok);
                }
                Ok(Some(st.into()))
            }
            None => Ok(None),
        }
    }

    /// Blocking probe.
    pub fn probe(&self, src: impl Into<Source>, tag: impl Into<Tag>) -> CoreResult<MpStatus> {
        let fc = Fcall::enter(self.thread);
        let src = src.into();
        let tag = tag.into();
        let _span = self.thread.vm().metrics().span(
            SpanKind::MpProbe,
            span_arg_peer_tag(source_peer(src), tag.to_device()),
        );
        loop {
            fc.poll();
            if let Some(s) = self.comm.iprobe(src, tag)? {
                return Ok(s.into());
            }
        }
    }

    /// Non-blocking probe.
    pub fn iprobe(
        &self,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<Option<MpStatus>> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::Progress);
        let _fc = Fcall::enter(self.thread);
        Ok(self.comm.iprobe(src, tag)?.map(Into::into))
    }

    // ------------------------------------------------------------------
    // Collectives on managed objects
    // ------------------------------------------------------------------

    /// Pin a buffer for the duration of a collective if the policy says so
    /// (collectives always "wait", so the deferred fast path does not
    /// apply).
    fn pin_for_collective(&self, obj: Handle) -> crate::pinning::HeldPin {
        pinning::pin_for_polling_wait(self.thread, self.policy, obj)
    }

    /// Barrier across the communicator.
    pub fn barrier(&self) -> CoreResult<()> {
        // Collective spans are recorded on the device-side registry, so
        // the VM-side time-bucket clock needs an explicit scope here
        // (same for the other collectives below).
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::CommWait);
        let _fc = Fcall::enter(self.thread);
        self.comm.barrier()?;
        Ok(())
    }

    /// Broadcast a whole object from `root`.
    pub fn bcast(&self, obj: Handle, root: usize) -> CoreResult<()> {
        self.bcast_impl(obj, root, false)
    }

    /// `bcast` with the transportability check elided (statically proven
    /// buffer).
    pub(crate) fn bcast_trusted(&self, obj: Handle, root: usize) -> CoreResult<()> {
        self.bcast_impl(obj, root, true)
    }

    fn bcast_impl(&self, obj: Handle, root: usize, trusted: bool) -> CoreResult<()> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::CommWait);
        let fc = Fcall::enter(self.thread);
        let (ptr, len) = self.resolve_window(&fc, obj, trusted)?;
        let pin = self.pin_for_collective(obj);
        // SAFETY: window pinned (or elder/stable) for the duration.
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        let r = self.comm.bcast_bytes(buf, root);
        pinning::release(self.thread, pin);
        r?;
        Ok(())
    }

    /// Scatter equal chunks of root's array into every rank's array.
    /// `send` is significant at root only; `recv.len * size == send.len`.
    pub fn scatter(&self, send: Option<Handle>, recv: Handle, root: usize) -> CoreResult<()> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::CommWait);
        let fc = Fcall::enter(self.thread);
        let (rptr, rlen) = self.window(&fc, recv)?;
        let rpin = self.pin_for_collective(recv);
        let spin_and_window = match (self.comm.rank() == root, send) {
            (true, Some(s)) => {
                let w = self.window(&fc, s)?;
                Some((self.pin_for_collective(s), w))
            }
            (true, None) => return Err(CoreError::NullBuffer),
            (false, _) => None,
        };
        // SAFETY: windows pinned/stable for the duration.
        let rbuf = unsafe { std::slice::from_raw_parts_mut(rptr, rlen) };
        let r = match &spin_and_window {
            Some((_, (sptr, slen))) => {
                let sbuf = unsafe { std::slice::from_raw_parts(*sptr, *slen) };
                self.comm.scatter_bytes(Some(sbuf), rbuf, root)
            }
            None => self.comm.scatter_bytes(None, rbuf, root),
        };
        if let Some((pin, _)) = spin_and_window {
            pinning::release(self.thread, pin);
        }
        pinning::release(self.thread, rpin);
        r?;
        Ok(())
    }

    /// Gather every rank's array into root's array (rank-ordered chunks).
    pub fn gather(&self, send: Handle, recv: Option<Handle>, root: usize) -> CoreResult<()> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::CommWait);
        let fc = Fcall::enter(self.thread);
        let (sptr, slen) = self.window(&fc, send)?;
        let spin = self.pin_for_collective(send);
        let rpin_and_window = match (self.comm.rank() == root, recv) {
            (true, Some(r)) => {
                let w = self.window(&fc, r)?;
                Some((self.pin_for_collective(r), w))
            }
            (true, None) => return Err(CoreError::NullBuffer),
            (false, _) => None,
        };
        // SAFETY: windows pinned/stable for the duration.
        let sbuf = unsafe { std::slice::from_raw_parts(sptr, slen) };
        let r = match &rpin_and_window {
            Some((_, (rptr, rlen))) => {
                let rbuf = unsafe { std::slice::from_raw_parts_mut(*rptr, *rlen) };
                self.comm.gather_bytes(sbuf, Some(rbuf), root)
            }
            None => self.comm.gather_bytes(sbuf, None, root),
        };
        if let Some((pin, _)) = rpin_and_window {
            pinning::release(self.thread, pin);
        }
        pinning::release(self.thread, spin);
        r?;
        Ok(())
    }

    /// Elementwise allreduce over primitive arrays (datatype inferred from
    /// the managed element kind — no `MPI_Datatype` parameter, §4.2.1).
    pub fn allreduce(&self, send: Handle, recv: Handle, op: ReduceOp) -> CoreResult<()> {
        let _phase = self.thread.vm().metrics().phase_scope(TimeBucket::CommWait);
        let fc = Fcall::enter(self.thread);
        let kind = fc
            .elem_kind(send)
            .ok_or_else(|| CoreError::Serialization("allreduce requires arrays".into()))?;
        let (sptr, slen) = self.window(&fc, send)?;
        let (rptr, rlen) = self.window(&fc, recv)?;
        if slen != rlen {
            return Err(CoreError::Serialization(
                "allreduce buffer length mismatch".into(),
            ));
        }
        let spin = self.pin_for_collective(send);
        let rpin = self.pin_for_collective(recv);
        // SAFETY: windows pinned/stable for the duration.
        let sbuf = unsafe { std::slice::from_raw_parts(sptr, slen) };
        let rbuf = unsafe { std::slice::from_raw_parts_mut(rptr, rlen) };
        let r = self.comm.allreduce_bytes(sbuf, rbuf, dtype_of(kind), op);
        pinning::release(self.thread, spin);
        pinning::release(self.thread, rpin);
        r?;
        Ok(())
    }
}
