//! The live telemetry plane: shared collection, the frame ring, and the
//! in-process HTTP scrape endpoint.
//!
//! Everything the stack already measures — per-rank metrics registries,
//! time-bucket accounting, in-flight op tables, heap occupancy — was
//! post-mortem: collected when `run_cluster` returns. This module makes
//! it watchable *while the workload runs*:
//!
//! * [`Collector`] owns the per-rank hooks (previously private to the
//!   doctor) and, once per tick, takes every rank's merged snapshot,
//!   diffs it against the previous tick, and pushes one
//!   [`TelemetryFrame`] of windowed deltas into a bounded
//!   [`FrameRing`]. The [`DoctorServer`](crate::doctor::DoctorServer)
//!   consumes the same observations instead of taking its own — one
//!   scan, two consumers.
//! * [`start_monitor`] runs the single collection loop; it ticks at the
//!   shortest enabled interval and hands each tick's observations to the
//!   doctor for classification.
//! * [`TelemetryServer`] is a minimal hand-rolled HTTP/1.1 listener (no
//!   new dependencies, the same stance as the no-`syn` derive macro)
//!   serving `GET /metrics` (Prometheus text, per-rank labels, plus
//!   rate/window gauges from the newest frame), `/healthz` (doctor
//!   classification as status code + JSON), `/flight` (an on-demand
//!   flight record without aborting anything), and `/frames` (the delta
//!   ring as a JSON time series).
//!
//! Enable it per run with
//! [`ClusterConfigBuilder::telemetry`](crate::cluster::ClusterConfigBuilder::telemetry)
//! or the `MOTOR_TELEMETRY` environment variable; when neither is set
//! (and no doctor is enabled) none of this exists — no collector, no
//! thread, no socket — preserving the zero-cost-when-off contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use motor_mpc::Device;
use motor_obs::telemetry::{
    frame_prometheus, frames_to_json, FrameRing, RankDelta, TelemetryFrame, DEFAULT_FRAME_CAPACITY,
};
use motor_obs::{
    classify, to_prometheus_multi, Anomaly, DoctorConfig, FlightRecord, Hist, Metric,
    MetricsSnapshot, RankFlight, RankHealth,
};
use motor_runtime::Vm;
use parking_lot::{Condvar, Mutex};

use crate::doctor::{merged_metrics, DoctorServer};

/// Configuration of the telemetry endpoint. Build one directly, or parse
/// the `MOTOR_TELEMETRY` environment variable with
/// [`TelemetryConfig::from_env`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Address to bind the HTTP listener to. Use port 0 to let the OS
    /// pick (read it back with [`TelemetryServer::local_addr`]).
    pub addr: String,
    /// Collection-tick interval (one frame per tick).
    pub interval: Duration,
    /// Frames the ring retains (the sliding window `/frames` and
    /// `motor-top` sparklines can see).
    pub frame_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            addr: "127.0.0.1:9612".to_string(),
            interval: Duration::from_millis(250),
            frame_capacity: DEFAULT_FRAME_CAPACITY,
        }
    }
}

impl TelemetryConfig {
    /// Parse a `MOTOR_TELEMETRY` value. `"1"`/`"on"` yield the defaults;
    /// a bare `host:port` sets the address; otherwise a comma list of
    /// `key=value` pairs: `addr=<host:port>`, `interval_ms=<n>`,
    /// `frames=<n>`. Unknown keys are ignored.
    pub fn parse(spec: &str) -> TelemetryConfig {
        let mut cfg = TelemetryConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            match part.split_once('=') {
                Some(("addr", v)) => cfg.addr = v.to_string(),
                Some(("interval_ms", v)) => {
                    if let Ok(ms) = v.parse() {
                        cfg.interval = Duration::from_millis(ms);
                    }
                }
                Some(("frames", v)) => {
                    if let Ok(n) = v.parse() {
                        cfg.frame_capacity = n;
                    }
                }
                Some(_) => {}
                // A bare token: "1"/"on" keep the defaults, anything with
                // a colon is a bind address.
                None if part.contains(':') => cfg.addr = part.to_string(),
                None => {}
            }
        }
        cfg
    }

    /// The configuration requested by the `MOTOR_TELEMETRY` environment
    /// variable, if set (empty/`"0"`/`"off"` mean disabled).
    pub fn from_env() -> Option<TelemetryConfig> {
        match std::env::var("MOTOR_TELEMETRY") {
            Ok(v) if !v.is_empty() && v != "0" && v != "off" => Some(Self::parse(&v)),
            _ => None,
        }
    }
}

/// Handle to one registered rank; pass back to
/// [`Collector::mark_done`] when the rank body returns.
#[derive(Debug, Clone, Copy)]
pub struct RankTicket(usize);

/// Safepoint-stall accounting between two collection ticks of one rank.
#[derive(Default)]
struct StallWindow {
    prev_stall_sum: f64,
    prev_now_nanos: u64,
}

/// One monitored rank: everything the collection tick reads, all
/// lock-free or briefly-locked so a tick never blocks the rank.
struct RankHooks {
    /// Human label (`"rank 2"`, `"child 1.0"`, ...).
    label: String,
    /// Rank within its group (world rank, or child-world rank).
    rank: usize,
    /// Spawn group: 0 for the initial world, one per `spawn_children`
    /// batch after that. Peer cross-matching only happens within a group —
    /// peer ranks in op arguments are meaningless across worlds.
    group: usize,
    device: Arc<Device>,
    vm: Arc<Vm>,
    done: AtomicBool,
    /// Stall-window state (mutated by windowed observation only).
    window: Mutex<StallWindow>,
    /// Previous tick's merged snapshot, for delta frames (mutated by
    /// [`Collector::collect`] only).
    prev: Mutex<Option<MetricsSnapshot>>,
    /// Last successfully read heap occupancy — kept when a GC holds the
    /// state lock at tick time, so the gauge never stalls the monitor.
    heap_used: AtomicU64,
    heap_capacity: AtomicU64,
}

impl RankHooks {
    /// Observe without touching the stall window (on-demand `/flight`
    /// and exit records must not perturb the doctor's GC-pressure
    /// windows). Stall fields are zero.
    fn observe_pure(&self) -> RankHealth {
        let dreg = self.device.metrics();
        let vreg = self.vm.metrics();
        let now = dreg.now_nanos();
        let mut inflight = dreg.inflight_ops();
        inflight.extend(vreg.inflight_ops());
        inflight.sort_by_key(|op| op.token);
        let (hard_pins, cond_pins, oldest_pin) = self.vm.pin_diagnostics();
        RankHealth {
            rank: self.rank,
            label: self.label.clone(),
            done: self.done.load(Ordering::Acquire),
            now_nanos: now,
            last_progress_nanos: dreg.last_progress_nanos().max(vreg.last_progress_nanos()),
            inflight,
            queue_depths: self.device.queue_depths(),
            hard_pins,
            cond_pins,
            oldest_pin_nanos: oldest_pin.map_or(0, |d| d.as_nanos() as u64),
            safepoint_stall_nanos: 0,
            window_nanos: 0,
            links_dropped: dreg.get(Metric::LinksDropped),
        }
    }

    /// Observe *and* advance the stall window: safepoint-stall time since
    /// the previous windowed observation, estimated from the stall
    /// histogram's bucket midpoints. Called from the collection tick only.
    fn observe_windowed(&self) -> RankHealth {
        let mut health = self.observe_pure();
        let stall_sum = self
            .vm
            .metrics()
            .hist_snapshot(Hist::SafepointStallNanos)
            .estimated_sum();
        let mut w = self.window.lock();
        let delta = (stall_sum - w.prev_stall_sum).max(0.0) as u64;
        let window = health.now_nanos.saturating_sub(w.prev_now_nanos);
        let first = w.prev_now_nanos == 0;
        w.prev_stall_sum = stall_sum;
        w.prev_now_nanos = health.now_nanos;
        // The first observation has no window yet.
        if !first {
            health.safepoint_stall_nanos = delta;
            health.window_nanos = window;
        }
        health
    }

    fn flight(&self, health: &RankHealth) -> RankFlight {
        RankFlight {
            rank: self.rank,
            label: self.label.clone(),
            done: health.done,
            inflight: health.inflight.clone(),
            queue_depths: health.queue_depths,
            snapshot: merged_metrics(&self.device, &self.vm),
        }
    }

    /// Refresh the cached heap gauges; keeps the previous reading when a
    /// GC holds the VM state lock.
    fn refresh_heap(&self) -> (u64, u64) {
        if let Some((used, capacity)) = self.vm.heap_usage() {
            self.heap_used.store(used, Ordering::Relaxed);
            self.heap_capacity.store(capacity, Ordering::Relaxed);
            (used, capacity)
        } else {
            (
                self.heap_used.load(Ordering::Relaxed),
                self.heap_capacity.load(Ordering::Relaxed),
            )
        }
    }
}

/// One rank's observation from a tick, tagged with its spawn group (the
/// unit [`classify_observations`] groups by).
#[derive(Debug, Clone)]
pub struct Observation {
    /// Spawn group (0 for the initial world).
    pub group: usize,
    /// The observed health.
    pub health: RankHealth,
}

/// Classify observations group by group: [`classify`] indexes peers by
/// rank, which is only meaningful within one world. Groups caught
/// mid-registration (rank indices not yet contiguous) are skipped.
pub fn classify_observations(obs: &[Observation], cfg: &DoctorConfig) -> Vec<Anomaly> {
    let mut groups: Vec<usize> = obs.iter().map(|o| o.group).collect();
    groups.sort_unstable();
    groups.dedup();
    let mut found = Vec::new();
    for g in groups {
        let mut members: Vec<&RankHealth> = obs
            .iter()
            .filter(|o| o.group == g)
            .map(|o| &o.health)
            .collect();
        members.sort_by_key(|m| m.rank);
        if members.iter().enumerate().any(|(i, m)| m.rank != i) {
            continue;
        }
        let members: Vec<RankHealth> = members.into_iter().cloned().collect();
        found.extend(classify(&members, cfg));
    }
    found
}

/// The shared collection state: registered rank hooks, the frame ring,
/// and the latest observations. One per cluster run, created whenever the
/// doctor *or* the telemetry endpoint is enabled; both consume its ticks.
pub struct Collector {
    ranks: Mutex<Vec<Arc<RankHooks>>>,
    next_group: AtomicUsize,
    ring: FrameRing,
    prev_t_nanos: AtomicU64,
    latest: Mutex<Vec<Observation>>,
}

impl Collector {
    /// A collector with no ranks registered and a ring of
    /// `frame_capacity` frames.
    pub fn new(frame_capacity: usize) -> Arc<Collector> {
        Arc::new(Collector {
            ranks: Mutex::new(Vec::new()),
            next_group: AtomicUsize::new(1),
            ring: FrameRing::new(frame_capacity),
            prev_t_nanos: AtomicU64::new(0),
            latest: Mutex::new(Vec::new()),
        })
    }

    /// Register a rank of the initial world (group 0).
    pub fn register(
        &self,
        rank: usize,
        label: String,
        device: Arc<Device>,
        vm: Arc<Vm>,
    ) -> RankTicket {
        self.register_in_group(0, rank, label, device, vm)
    }

    /// Allocate a fresh spawn group for a `spawn_children` batch.
    pub fn alloc_group(&self) -> usize {
        self.next_group.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a rank of spawn group `group` (see [`Self::alloc_group`]).
    pub fn register_in_group(
        &self,
        group: usize,
        rank: usize,
        label: String,
        device: Arc<Device>,
        vm: Arc<Vm>,
    ) -> RankTicket {
        let mut ranks = self.ranks.lock();
        ranks.push(Arc::new(RankHooks {
            label,
            rank,
            group,
            device,
            vm,
            done: AtomicBool::new(false),
            window: Mutex::new(StallWindow::default()),
            prev: Mutex::new(None),
            heap_used: AtomicU64::new(0),
            heap_capacity: AtomicU64::new(0),
        }));
        RankTicket(ranks.len() - 1)
    }

    /// Record that a rank's body returned (its silence is no longer
    /// suspicious, and peers blocked on it can be blamed).
    pub fn mark_done(&self, ticket: RankTicket) {
        if let Some(h) = self.ranks.lock().get(ticket.0) {
            h.done.store(true, Ordering::Release);
        }
    }

    /// Number of ranks registered so far (across all groups).
    pub fn ranks_registered(&self) -> usize {
        self.ranks.lock().len()
    }

    /// The delta-frame ring.
    pub fn ring(&self) -> &FrameRing {
        &self.ring
    }

    /// The observations from the most recent tick.
    pub fn latest_observations(&self) -> Vec<Observation> {
        self.latest.lock().clone()
    }

    fn sorted_hooks(&self) -> Vec<Arc<RankHooks>> {
        let mut hooks: Vec<Arc<RankHooks>> = self.ranks.lock().clone();
        hooks.sort_by_key(|h| (h.group, h.rank));
        hooks
    }

    /// One collection tick: observe every rank (advancing stall windows),
    /// diff against the previous tick, push one frame of windowed deltas
    /// into the ring, and return the observations for classification.
    /// Called from the monitor loop (and on-demand scans) only.
    pub fn collect(&self) -> Vec<Observation> {
        let hooks = self.sorted_hooks();
        if hooks.is_empty() {
            return Vec::new();
        }
        let t_nanos = hooks[0].device.metrics().now_nanos();
        let prev_t = self.prev_t_nanos.swap(t_nanos, Ordering::Relaxed);
        let window_nanos = if prev_t == 0 {
            0
        } else {
            t_nanos.saturating_sub(prev_t)
        };
        let mut observations = Vec::with_capacity(hooks.len());
        let mut deltas = Vec::with_capacity(hooks.len());
        for h in &hooks {
            let health = h.observe_windowed();
            let merged = merged_metrics(&h.device, &h.vm);
            let delta = {
                let mut prev = h.prev.lock();
                let d = match prev.as_ref() {
                    Some(p) => merged.diff(p),
                    None => merged.clone(),
                };
                *prev = Some(merged);
                d.without_events()
            };
            let stalls = delta.hist(Hist::SafepointStallNanos);
            let (heap_used, heap_capacity) = h.refresh_heap();
            deltas.push(RankDelta {
                group: h.group,
                rank: h.rank,
                label: h.label.clone(),
                done: health.done,
                queue_depths: health.queue_depths,
                heap_used_bytes: heap_used,
                heap_capacity_bytes: heap_capacity,
                gc_stall_p50_nanos: stalls.p50(),
                gc_stall_p99_nanos: stalls.p99(),
                delta,
                inflight: health.inflight.clone(),
            });
            observations.push(Observation {
                group: h.group,
                health,
            });
        }
        self.ring.push(TelemetryFrame {
            seq: self.ring.alloc_seq(),
            t_nanos,
            window_nanos,
            ranks: deltas,
        });
        *self.latest.lock() = observations.clone();
        observations
    }

    /// Cut a flight record from already-taken observations plus fresh
    /// merged metrics (what the doctor does when a scan finds anomalies).
    pub(crate) fn flight_record_from(
        &self,
        obs: &[Observation],
        anomalies: Vec<Anomaly>,
    ) -> FlightRecord {
        let hooks = self.sorted_hooks();
        let t_nanos = hooks.first().map_or(0, |h| h.device.metrics().now_nanos());
        let mut ranks = Vec::with_capacity(obs.len());
        for o in obs {
            if let Some(h) = hooks
                .iter()
                .find(|h| h.group == o.group && h.rank == o.health.rank)
            {
                ranks.push(h.flight(&o.health));
            }
        }
        FlightRecord {
            t_nanos,
            anomalies,
            ranks,
        }
    }

    /// Cut an on-demand flight record *without* perturbing the doctor's
    /// stall windows or the delta ring (the `/flight` endpoint and the
    /// exit record).
    pub fn flight_record(&self, anomalies: Vec<Anomaly>) -> FlightRecord {
        let obs: Vec<Observation> = self
            .sorted_hooks()
            .iter()
            .map(|h| Observation {
                group: h.group,
                health: h.observe_pure(),
            })
            .collect();
        self.flight_record_from(&obs, anomalies)
    }

    /// The `/metrics` document: every rank's merged snapshot rendered as
    /// one exposition document (each family's `# TYPE` emitted once, one
    /// sample per rank with `group`/`rank` labels), followed by the
    /// rate/window gauges from the newest frame. Takes fresh pure
    /// snapshots — scraping never advances the delta state.
    pub fn prometheus(&self) -> String {
        let hooks = self.sorted_hooks();
        let snaps: Vec<(String, String, MetricsSnapshot)> = hooks
            .iter()
            .map(|h| {
                (
                    h.group.to_string(),
                    h.rank.to_string(),
                    merged_metrics(&h.device, &h.vm),
                )
            })
            .collect();
        let labels: Vec<[(&str, &str); 2]> = snaps
            .iter()
            .map(|(g, r, _)| [("group", g.as_str()), ("rank", r.as_str())])
            .collect();
        let labeled: Vec<(&MetricsSnapshot, &[(&str, &str)])> = snaps
            .iter()
            .zip(&labels)
            .map(|((_, _, s), l)| (s, &l[..]))
            .collect();
        let mut out = to_prometheus_multi(&labeled);
        if let Some(frame) = self.ring.latest() {
            out.push_str(&frame_prometheus(&frame));
        }
        out
    }

    /// The `/frames` document: the delta ring as a JSON time series.
    pub fn frames_json(&self) -> String {
        frames_to_json(&self.ring.frames(), self.ring.capacity())
    }

    /// Total trace-ring events overwritten before they could be
    /// snapshotted, summed across every rank's registries (surfaced by
    /// `/healthz` so ring overflow is visible live).
    pub fn trace_events_dropped(&self) -> u64 {
        self.sorted_hooks()
            .iter()
            .map(|h| {
                h.device
                    .metrics()
                    .snapshot()
                    .get(Metric::TraceEventsDropped)
                    + h.vm.metrics().snapshot().get(Metric::TraceEventsDropped)
            })
            .sum()
    }
}

/// Handle to the monitor loop; [`stop`](MonitorHandle::stop) it when the
/// cluster exits.
pub struct MonitorHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: JoinHandle<()>,
}

impl MonitorHandle {
    /// Ask the loop to exit and join it.
    pub fn stop(self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock() = true;
            cv.notify_all();
        }
        let _ = self.thread.join();
    }
}

/// Spawn the unified monitor loop: one [`Collector::collect`] tick every
/// `interval`, each tick's observations handed to the doctor (when one is
/// enabled) for classification. This replaces the doctor's private scan
/// thread — there is exactly one observer regardless of how many
/// consumers are attached.
pub fn start_monitor(
    collector: Arc<Collector>,
    doctor: Option<Arc<DoctorServer>>,
    interval: Duration,
) -> MonitorHandle {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("motor-monitor".into())
        .spawn(move || {
            let (lock, cv) = &*stop2;
            let mut stopped = lock.lock();
            while !*stopped {
                let timed_out = cv.wait_for(&mut stopped, interval).timed_out();
                if timed_out && !*stopped {
                    drop(stopped);
                    let obs = collector.collect();
                    if let Some(d) = &doctor {
                        d.process(&obs);
                    }
                    stopped = lock.lock();
                }
            }
        })
        .expect("spawn motor-monitor thread");
    MonitorHandle { stop, thread }
}

/// Route one request path to a response: `(status, reason, content-type,
/// body)`. Pure (no socket), so the endpoint surface is unit-testable.
fn respond(
    path: &str,
    collector: &Collector,
    doctor: Option<&DoctorServer>,
) -> (u16, &'static str, &'static str, String) {
    const JSON: &str = "application/json";
    match path {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            collector.prometheus(),
        ),
        "/healthz" => {
            let anomalies = match doctor {
                Some(d) => d.anomalies(),
                // No doctor attached: classify the latest tick's
                // observations statelessly with default thresholds.
                None => classify_observations(
                    &collector.latest_observations(),
                    &DoctorConfig::default(),
                ),
            };
            let items: Vec<String> = anomalies.iter().map(Anomaly::to_json).collect();
            let status = if anomalies.is_empty() {
                "ok"
            } else {
                "unhealthy"
            };
            let body = format!(
                "{{\"status\":\"{status}\",\"ranks\":{},\"frames_seen\":{},\
                 \"trace_events_dropped\":{},\"anomalies\":[{}]}}",
                collector.ranks_registered(),
                collector.ring().frames_seen(),
                collector.trace_events_dropped(),
                items.join(",")
            );
            if anomalies.is_empty() {
                (200, "OK", JSON, body)
            } else {
                (503, "Service Unavailable", JSON, body)
            }
        }
        "/flight" => {
            let anomalies = doctor.map_or_else(Vec::new, |d| d.anomalies());
            (
                200,
                "OK",
                JSON,
                collector.flight_record(anomalies).to_json(),
            )
        }
        "/frames" => (200, "OK", JSON, collector.frames_json()),
        "/" => (
            200,
            "OK",
            "text/plain; charset=utf-8",
            "motor telemetry: /metrics /healthz /flight /frames\n".to_string(),
        ),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            format!("no such endpoint: {path}\n"),
        ),
    }
}

/// Parse the request line of an HTTP/1.x request: `(method, path)` with
/// any query string stripped.
fn parse_request_line(head: &str) -> (String, String) {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/");
    let path = target.split('?').next().unwrap_or("/").to_string();
    (method, path)
}

fn handle_connection(mut stream: TcpStream, collector: &Collector, doctor: Option<&DoctorServer>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request headers (we never accept bodies).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return; // oversized request: drop the connection
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
    let (method, path) = parse_request_line(&String::from_utf8_lossy(&head));
    let (status, reason, ctype, body) = if method == "GET" {
        respond(&path, collector, doctor)
    } else {
        (
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The in-process scrape endpoint: a nonblocking accept loop on its own
/// thread, one short-lived thread per connection (`Connection: close`
/// always). Scrapes read shared state only — they never advance the
/// delta ring or the doctor's windows, so two concurrent clients see
/// consistent, independent responses.
pub struct TelemetryServer {
    collector: Arc<Collector>,
    doctor: Option<Arc<DoctorServer>>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl TelemetryServer {
    /// Bind `cfg.addr` and start serving. Fails only on bind errors
    /// (address in use, permission) — callers decide whether that is
    /// fatal (`run_cluster` warns and runs on).
    pub fn start(
        cfg: &TelemetryConfig,
        collector: Arc<Collector>,
        doctor: Option<Arc<DoctorServer>>,
    ) -> std::io::Result<Arc<TelemetryServer>> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let server = Arc::new(TelemetryServer {
            collector,
            doctor,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
            accept: Mutex::new(None),
        });
        let me = Arc::clone(&server);
        let thread = std::thread::Builder::new()
            .name("motor-telemetry".into())
            .spawn(move || {
                while !me.stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let conn = Arc::clone(&me);
                            let _ = std::thread::Builder::new()
                                .name("motor-telemetry-conn".into())
                                .spawn(move || {
                                    handle_connection(
                                        stream,
                                        &conn.collector,
                                        conn.doctor.as_deref(),
                                    );
                                });
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
            .expect("spawn motor-telemetry thread");
        *server.accept.lock() = Some(thread);
        Ok(server)
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Ask the accept loop to exit and join it (idempotent). In-flight
    /// connection threads finish their response on their own.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_obs::check_prometheus_text;
    use motor_obs::export::json;

    #[test]
    fn config_parse_forms() {
        let d = TelemetryConfig::parse("1");
        assert_eq!(d.addr, TelemetryConfig::default().addr);
        let bare = TelemetryConfig::parse("0.0.0.0:9000");
        assert_eq!(bare.addr, "0.0.0.0:9000");
        let kv = TelemetryConfig::parse("addr=127.0.0.1:0,interval_ms=50,frames=16");
        assert_eq!(kv.addr, "127.0.0.1:0");
        assert_eq!(kv.interval, Duration::from_millis(50));
        assert_eq!(kv.frame_capacity, 16);
        let partial = TelemetryConfig::parse("interval_ms=100");
        assert_eq!(partial.addr, TelemetryConfig::default().addr);
        assert_eq!(partial.interval, Duration::from_millis(100));
    }

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            ("GET".to_string(), "/metrics".to_string())
        );
        assert_eq!(
            parse_request_line("GET /frames?last=5 HTTP/1.1\r\n\r\n"),
            ("GET".to_string(), "/frames".to_string())
        );
        assert_eq!(parse_request_line(""), (String::new(), "/".to_string()));
    }

    #[test]
    fn routes_on_an_empty_collector() {
        // No ranks registered: every endpoint must still answer with
        // well-formed bodies (a scrape racing cluster startup).
        let c = Collector::new(8);
        let (status, _, ctype, body) = respond("/metrics", &c, None);
        assert_eq!(status, 200);
        assert!(ctype.starts_with("text/plain"));
        check_prometheus_text(&body).expect("empty exposition is valid");
        assert!(body.contains("motor_build_info"));

        let (status, _, _, body) = respond("/healthz", &c, None);
        assert_eq!(status, 200);
        let v = json::parse(&body).expect("healthz is valid JSON");
        assert_eq!(v.get("status").and_then(|x| x.as_str()), Some("ok"));
        assert_eq!(v.get("ranks").and_then(|x| x.as_u64()), Some(0));

        let (status, _, _, body) = respond("/frames", &c, None);
        assert_eq!(status, 200);
        let v = json::parse(&body).expect("frames is valid JSON");
        assert_eq!(
            v.get("frames").and_then(|x| x.as_array()).map(|a| a.len()),
            Some(0)
        );

        let (status, _, _, body) = respond("/flight", &c, None);
        assert_eq!(status, 200);
        let v = json::parse(&body).expect("flight is valid JSON");
        assert_eq!(
            v.get("motor_flight_record").and_then(|x| x.as_u64()),
            Some(1)
        );

        let (status, _, _, _) = respond("/nope", &c, None);
        assert_eq!(status, 404);
    }

    #[test]
    fn server_binds_and_serves_over_tcp() {
        // End-to-end over a real socket, without a cluster: bind port 0,
        // speak minimal HTTP, check the response frame.
        let c = Collector::new(8);
        let srv = TelemetryServer::start(
            &TelemetryConfig {
                addr: "127.0.0.1:0".to_string(),
                ..TelemetryConfig::default()
            },
            Arc::clone(&c),
            None,
        )
        .expect("bind");
        let mut stream = TcpStream::connect(srv.local_addr()).expect("connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: application/json"));
        assert!(response.contains("\"status\":\"ok\""));

        // Non-GET is rejected without panicking the server.
        let mut stream = TcpStream::connect(srv.local_addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        srv.stop();
    }
}
