//! The extended object-oriented operations (paper §4.2.2, §7.5).
//!
//! `OSend` / `ORecv` / `OBcast` / `OScatter` / `OGather` transport whole
//! objects, arrays of objects and trees of objects by serializing with the
//! custom mechanism of [`crate::serial`] — "functionality not possible
//! with other Java and .Net implementations of MPI, namely the ability to
//! scatter / gather arrays of objects" (§1).
//!
//! Wire protocol: "Before sending the serialized buffer, Motor sends the
//! size of the buffer. This ensures the receiver can prepare a sufficient
//! buffer" (§7.5). Both messages travel on the user's tag; MPI
//! non-overtaking keeps each size/data pair matched per sender.
//!
//! The serialized bytes live in pooled native buffers ([`crate::bufpool`]),
//! so these operations never pin managed memory (§7.4).

use std::cell::Cell;
use std::sync::Arc;

use std::ops::RangeBounds;

use motor_mpc::{Comm, Source, Tag};
use motor_obs::{span_arg_peer_tag, Hist, Metric, MetricsRegistry, SpanKind};
use motor_runtime::{Handle, MotorThread};

use crate::bufpool::BufPool;
use crate::error::{CoreError, CoreResult};
use crate::fcall::Fcall;
use crate::mp::MpStatus;
use crate::serial::{AttrLookup, Serializer, VisitedStrategy};

/// The extended object-oriented interface bound to one rank.
pub struct Oomp<'t> {
    thread: &'t MotorThread,
    comm: Comm,
    pool: Arc<BufPool>,
    strategy: VisitedStrategy,
    attrs: AttrLookup,
    last_epoch: Cell<u64>,
}

impl<'t> Oomp<'t> {
    /// Bind the OO operations to a thread and communicator.
    pub fn new(thread: &'t MotorThread, comm: Comm, pool: Arc<BufPool>) -> Oomp<'t> {
        Oomp {
            thread,
            comm,
            pool,
            strategy: VisitedStrategy::Linear,
            attrs: AttrLookup::FieldDescBit,
            last_epoch: Cell::new(0),
        }
    }

    /// Override the serializer's visited-structure strategy (ablation).
    pub fn with_strategy(mut self, s: VisitedStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Override the serializer's attribute-lookup path (ablation).
    pub fn with_attr_lookup(mut self, a: AttrLookup) -> Self {
        self.attrs = a;
        self
    }

    fn serializer(&self) -> Serializer<'t> {
        Serializer::new(self.thread)
            .with_strategy(self.strategy)
            .with_attr_lookup(self.attrs)
    }

    fn metrics(&self) -> &MetricsRegistry {
        self.thread.vm().metrics()
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The paper's GC hook on the buffer stack: when a collection has
    /// happened since the last operation, unallocate stale buffers.
    fn maintain_pool(&self) {
        let epoch = self.thread.vm().safepoint().epoch();
        if epoch != self.last_epoch.get() {
            self.pool.trim_at_gc(epoch);
            self.last_epoch.set(epoch);
        }
    }

    fn current_epoch(&self) -> u64 {
        self.thread.vm().safepoint().epoch()
    }

    /// Send the size header followed by the data buffer.
    fn send_sized(&self, bytes: &[u8], dest: usize, tag: Tag) -> CoreResult<()> {
        let size = (bytes.len() as u64).to_le_bytes();
        self.comm.send_bytes(&size, dest, tag)?;
        self.comm.send_bytes(bytes, dest, tag)?;
        Ok(())
    }

    /// Receive a size header, then the data into a pooled buffer. Returns
    /// the buffer and the sender's status.
    fn recv_sized(&self, src: Source, tag: Tag) -> CoreResult<(crate::bufpool::PoolBuf, MpStatus)> {
        let mut size = [0u8; 8];
        let st = self.comm.recv_bytes(&mut size, src, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut buf = self.pool.get(len, self.current_epoch());
        buf.buf_mut().resize(len, 0);
        // Pair with the same sender to keep size/data streams aligned.
        let st2 = self
            .comm
            .recv_bytes(buf.buf_mut(), st.source as usize, st.tag)?;
        debug_assert_eq!(st2.count, len);
        Ok((buf, st.into()))
    }

    // ------------------------------------------------------------------
    // Point-to-point object transport
    // ------------------------------------------------------------------

    /// Transport an object (tree) to `dest` — the `OSend` of Figure 4.
    pub fn osend(&self, obj: Handle, dest: usize, tag: impl Into<Tag>) -> CoreResult<()> {
        let tag = tag.into();
        let _span = self
            .metrics()
            .span(SpanKind::Osend, span_arg_peer_tag(dest, tag.to_device()));
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompOsends);
        let (bytes, _) = self.serializer().serialize(obj)?;
        self.metrics()
            .record(Hist::SerializedGraphBytes, bytes.len() as u64);
        self.send_sized(&bytes, dest, tag)?;
        // Recycle the serialization buffer through the pool.
        self.pool.adopt(bytes, self.current_epoch());
        Ok(())
    }

    /// Transport a sub-range of an array given as a Rust range, e.g.
    /// `oomp.osend_sub(arr, 1..3, dest, tag)`.
    pub fn osend_sub(
        &self,
        obj: Handle,
        range: impl RangeBounds<usize>,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<()> {
        let (offset, count) = crate::mp::resolve_bounds(range, self.thread.array_len(obj))?;
        self.osend_range_impl(obj, offset, count, dest, tag.into())
    }

    /// Transport a sub-range of an array — `OSend` with offset and
    /// numcomponents (Figure 4).
    #[deprecated(since = "0.6.0", note = "use `osend_sub` with a Rust range instead")]
    pub fn osend_range(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> CoreResult<()> {
        self.osend_range_impl(obj, offset, count, dest, tag.into())
    }

    fn osend_range_impl(
        &self,
        obj: Handle,
        offset: usize,
        count: usize,
        dest: usize,
        tag: Tag,
    ) -> CoreResult<()> {
        let _span = self
            .metrics()
            .span(SpanKind::Osend, span_arg_peer_tag(dest, tag.to_device()));
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompOsends);
        let (bytes, _) = self
            .serializer()
            .serialize_array_range(obj, offset, count)?;
        self.metrics()
            .record(Hist::SerializedGraphBytes, bytes.len() as u64);
        self.send_sized(&bytes, dest, tag)?;
        self.pool.adopt(bytes, self.current_epoch());
        Ok(())
    }

    /// Receive an object (tree) — the `ORecv` of Figure 4. Returns the
    /// reconstructed root and the message status.
    pub fn orecv(
        &self,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> CoreResult<(Handle, MpStatus)> {
        let src = src.into();
        let tag = tag.into();
        let peer = match src {
            Source::Rank(r) => r,
            Source::Any => u32::MAX as usize,
        };
        let _span = self
            .metrics()
            .span(SpanKind::Orecv, span_arg_peer_tag(peer, tag.to_device()));
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompOrecvs);
        let (buf, st) = self.recv_sized(src, tag)?;
        let root = self.serializer().deserialize(buf.as_slice())?;
        self.pool.put(buf, self.current_epoch());
        Ok((root, st))
    }

    // ------------------------------------------------------------------
    // Collective object transport
    // ------------------------------------------------------------------

    /// Broadcast an object tree from `root`. The root passes `Some(obj)`
    /// and gets its own handle back; other ranks receive the copy.
    pub fn obcast(&self, obj: Option<Handle>, root: usize) -> CoreResult<Handle> {
        let _span = self.metrics().span(SpanKind::Obcast, root as u64);
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompCollectives);
        if self.comm.rank() == root {
            let obj = obj.ok_or(CoreError::NullBuffer)?;
            let (bytes, _) = self.serializer().serialize(obj)?;
            let mut size = (bytes.len() as u64).to_le_bytes();
            self.comm.bcast_bytes(&mut size, root)?;
            let mut data = bytes;
            self.comm.bcast_bytes(&mut data, root)?;
            self.pool.adopt(data, self.current_epoch());
            Ok(obj)
        } else {
            let mut size = [0u8; 8];
            self.comm.bcast_bytes(&mut size, root)?;
            let len = u64::from_le_bytes(size) as usize;
            let mut buf = self.pool.get(len, self.current_epoch());
            buf.buf_mut().resize(len, 0);
            self.comm.bcast_bytes(buf.buf_mut(), root)?;
            let h = self.serializer().deserialize(buf.as_slice())?;
            self.pool.put(buf, self.current_epoch());
            Ok(h)
        }
    }

    /// Scatter an array of objects from `root`: each rank receives a
    /// sub-array of `len / size` elements (the split representation in
    /// action, §7.5). The root passes `Some(array)`.
    pub fn oscatter(&self, arr: Option<Handle>, root: usize) -> CoreResult<Handle> {
        let _span = self.metrics().span(SpanKind::Oscatter, root as u64);
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompCollectives);
        let n = self.comm.size();
        let tag = Tag::new(2_000);
        if self.comm.rank() == root {
            let arr = arr.ok_or(CoreError::NullBuffer)?;
            let len = self.thread.array_len(arr);
            if !len.is_multiple_of(n) {
                return Err(CoreError::Serialization(format!(
                    "scatter of {len} elements over {n} ranks is not even"
                )));
            }
            let chunk = len / n;
            let ser = self.serializer();
            let mut own: Option<Handle> = None;
            // "For scatter operations the serialization mechanism
            // automatically splits the array and flattens referenced
            // objects" — one independently deserializable part per rank.
            for r in 0..n {
                let (bytes, _) = ser.serialize_array_range(arr, r * chunk, chunk)?;
                if r == root {
                    own = Some(ser.deserialize(&bytes)?);
                    self.pool.adopt(bytes, self.current_epoch());
                } else {
                    self.send_sized(&bytes, r, tag)?;
                    self.pool.adopt(bytes, self.current_epoch());
                }
            }
            Ok(own.expect("root part"))
        } else {
            let (buf, _) = self.recv_sized(Source::Rank(root), tag)?;
            let h = self.serializer().deserialize(buf.as_slice())?;
            self.pool.put(buf, self.current_epoch());
            Ok(h)
        }
    }

    /// Gather each rank's array of objects into one array at `root` (rank
    /// order). Returns `Some(full)` at root, `None` elsewhere.
    pub fn ogather(&self, sub: Handle, root: usize) -> CoreResult<Option<Handle>> {
        let _span = self.metrics().span(SpanKind::Ogather, root as u64);
        let _fc = Fcall::enter(self.thread);
        self.maintain_pool();
        self.metrics().bump(Metric::OompCollectives);
        let n = self.comm.size();
        let tag = Tag::new(2_001);
        let ser = self.serializer();
        if self.comm.rank() == root {
            // "For gather operations the deserialization mechanism takes
            // many split representations and reconstructs them into a
            // single array."
            let mut parts: Vec<Handle> = Vec::with_capacity(n);
            let own_len = self.thread.array_len(sub);
            let (own_bytes, _) = ser.serialize_array_range(sub, 0, own_len)?;
            for r in 0..n {
                if r == root {
                    parts.push(ser.deserialize(&own_bytes)?);
                } else {
                    let (buf, _) = self.recv_sized(Source::Rank(r), tag)?;
                    parts.push(ser.deserialize(buf.as_slice())?);
                    self.pool.put(buf, self.current_epoch());
                }
            }
            self.pool.adopt(own_bytes, self.current_epoch());
            // Concatenate the parts.
            let total: usize = parts.iter().map(|&p| self.thread.array_len(p)).sum();
            let elem_class = {
                let cls = self.thread.class_of(parts[0]);
                let vm = self.thread.vm();
                let reg = vm.registry();
                match reg.table(cls).kind {
                    motor_runtime::TypeKind::ObjArray(e) => e,
                    _ => {
                        return Err(CoreError::Serialization(
                            "ogather requires arrays of objects".into(),
                        ))
                    }
                }
            };
            let full = self.thread.alloc_obj_array(elem_class, total);
            let mut at = 0usize;
            for p in parts {
                let plen = self.thread.array_len(p);
                for i in 0..plen {
                    let e = self.thread.obj_array_get(p, i);
                    self.thread.obj_array_set(full, at, e);
                    self.thread.release(e);
                    at += 1;
                }
                self.thread.release(p);
            }
            Ok(Some(full))
        } else {
            let len = self.thread.array_len(sub);
            let (bytes, _) = ser.serialize_array_range(sub, 0, len)?;
            self.send_sized(&bytes, root, tag)?;
            self.pool.adopt(bytes, self.current_epoch());
            Ok(None)
        }
    }
}
