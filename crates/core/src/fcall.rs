//! The FCall discipline — the trusted runtime-internal call boundary.
//!
//! Paper §5.1: FCalls "are internally trusted. Therefore, they are more
//! efficient than P/Invoke calls because they do not have parameter
//! marshalling and security checks," but in exchange "they must behave
//! like managed code": poll the collector on entry, while waiting, and on
//! exit, and explicitly protect object pointers.
//!
//! [`Fcall`] is the RAII analog of the `FCIMPL`/`HELPER_METHOD_FRAME`
//! macros: constructing it performs the entry poll, dropping it performs
//! the exit poll; in between the FCall body runs cooperatively (the
//! collector waits for it), so raw object addresses obtained inside are
//! stable until the body explicitly polls — exactly the window the Motor
//! pinning policy exploits (§7.4).

use motor_runtime::{ClassId, ElemKind, Handle, MotorThread, TypeKind};

use crate::error::{CoreError, CoreResult};

/// An active FCall frame.
pub struct Fcall<'t> {
    thread: &'t MotorThread,
}

impl<'t> Fcall<'t> {
    /// Enter an FCall: polls the collector (entry poll).
    pub fn enter(thread: &'t MotorThread) -> Fcall<'t> {
        thread.poll();
        Fcall { thread }
    }

    /// The attached thread.
    pub fn thread(&self) -> &'t MotorThread {
        self.thread
    }

    /// Poll inside the FCall (the polling-wait lap hook).
    #[inline]
    pub fn poll(&self) {
        self.thread.poll();
    }

    /// Parameter check: the object must be non-null.
    pub fn check_not_null(&self, h: Handle) -> CoreResult<()> {
        if self.thread.is_null(h) {
            return Err(CoreError::NullBuffer);
        }
        Ok(())
    }

    /// Parameter check for the regular MPI bindings (paper §4.2.1): "Only
    /// object types with no object references or arrays of simple types can
    /// be used as send or receive objects. This prevents overwriting
    /// references and protects the integrity of the object model."
    pub fn check_transportable_raw(&self, h: Handle) -> CoreResult<ClassId> {
        self.check_not_null(h)?;
        let class = self.thread.class_of(h);
        let vm = self.thread.vm();
        let reg = vm.registry();
        let mt = reg.table(class);
        match &mt.kind {
            TypeKind::Class if mt.has_refs => Err(CoreError::ObjectModelIntegrity(mt.name.clone())),
            TypeKind::ObjArray(_) => Err(CoreError::ObjectModelIntegrity(mt.name.clone())),
            _ => Ok(class),
        }
    }

    /// Resolve the zero-copy window of a validated object: `(ptr, bytes)`.
    /// Stability rules are the pinning policy's business.
    pub fn data_window(&self, h: Handle) -> (*mut u8, usize) {
        self.thread.raw_data_window(h)
    }

    /// Element kind of a primitive or multidimensional array (None for a
    /// ref-free class object).
    pub fn elem_kind(&self, h: Handle) -> Option<ElemKind> {
        let class = self.thread.class_of(h);
        let vm = self.thread.vm();
        let reg = vm.registry();
        match reg.table(class).kind {
            TypeKind::PrimArray(k) => Some(k),
            TypeKind::MdArray { elem, .. } => Some(elem),
            _ => None,
        }
    }
}

impl Drop for Fcall<'_> {
    fn drop(&mut self) {
        // Exit poll.
        self.thread.poll();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<Vm>, MotorThread) {
        let vm = Vm::new(VmConfig::default());
        let t = MotorThread::attach(Arc::clone(&vm));
        (vm, t)
    }

    #[test]
    fn fcall_polls_on_entry_and_exit() {
        let (_vm, t) = setup();
        // No pending GC: polls are no-ops but must not hang.
        let f = Fcall::enter(&t);
        f.poll();
        drop(f);
    }

    #[test]
    fn null_buffers_rejected() {
        let (_vm, t) = setup();
        let f = Fcall::enter(&t);
        let null = t.null_handle();
        assert!(matches!(f.check_not_null(null), Err(CoreError::NullBuffer)));
    }

    #[test]
    fn ref_bearing_objects_rejected_for_raw_transport() {
        let (vm, t) = setup();
        let arr = {
            let mut reg = vm.registry_mut();
            reg.prim_array(ElemKind::I32)
        };
        let bad = {
            let mut reg = vm.registry_mut();
            reg.define_class("HasRef")
                .transportable("data", arr)
                .build()
        };
        let good = {
            let mut reg = vm.registry_mut();
            reg.define_class("Plain").prim("x", ElemKind::F64).build()
        };
        let f = Fcall::enter(&t);
        let h_bad = t.alloc_instance(bad);
        let h_good = t.alloc_instance(good);
        let h_arr = t.alloc_prim_array(ElemKind::I32, 4);
        assert!(matches!(
            f.check_transportable_raw(h_bad),
            Err(CoreError::ObjectModelIntegrity(_))
        ));
        assert!(f.check_transportable_raw(h_good).is_ok());
        assert!(f.check_transportable_raw(h_arr).is_ok());
    }

    #[test]
    fn elem_kind_reports_array_types() {
        let (_vm, t) = setup();
        let f = Fcall::enter(&t);
        let a = t.alloc_prim_array(ElemKind::F64, 3);
        let m = t.alloc_md_array(ElemKind::I32, &[2, 2]);
        assert_eq!(f.elem_kind(a), Some(ElemKind::F64));
        assert_eq!(f.elem_kind(m), Some(ElemKind::I32));
    }
}
