//! The FCall discipline — the trusted runtime-internal call boundary.
//!
//! Paper §5.1: FCalls "are internally trusted. Therefore, they are more
//! efficient than P/Invoke calls because they do not have parameter
//! marshalling and security checks," but in exchange "they must behave
//! like managed code": poll the collector on entry, while waiting, and on
//! exit, and explicitly protect object pointers.
//!
//! [`Fcall`] is the RAII analog of the `FCIMPL`/`HELPER_METHOD_FRAME`
//! macros: constructing it performs the entry poll, dropping it performs
//! the exit poll; in between the FCall body runs cooperatively (the
//! collector waits for it), so raw object addresses obtained inside are
//! stable until the body explicitly polls — exactly the window the Motor
//! pinning policy exploits (§7.4).

use std::cell::{Cell, RefCell};

use motor_interp::{FCallId, FcallHost, TrapKind, Value};
use motor_mpc::Source;
use motor_runtime::{ClassId, ElemKind, Handle, MotorThread, TypeKind};

use crate::error::{CoreError, CoreResult};
use crate::mp::{Mp, MpRequest};
use crate::oomp::Oomp;

/// An active FCall frame.
pub struct Fcall<'t> {
    thread: &'t MotorThread,
}

impl<'t> Fcall<'t> {
    /// Enter an FCall: polls the collector (entry poll).
    pub fn enter(thread: &'t MotorThread) -> Fcall<'t> {
        thread.poll();
        Fcall { thread }
    }

    /// The attached thread.
    pub fn thread(&self) -> &'t MotorThread {
        self.thread
    }

    /// Poll inside the FCall (the polling-wait lap hook).
    #[inline]
    pub fn poll(&self) {
        self.thread.poll();
    }

    /// Parameter check: the object must be non-null.
    pub fn check_not_null(&self, h: Handle) -> CoreResult<()> {
        if self.thread.is_null(h) {
            return Err(CoreError::NullBuffer);
        }
        Ok(())
    }

    /// Parameter check for the regular MPI bindings (paper §4.2.1): "Only
    /// object types with no object references or arrays of simple types can
    /// be used as send or receive objects. This prevents overwriting
    /// references and protects the integrity of the object model."
    pub fn check_transportable_raw(&self, h: Handle) -> CoreResult<ClassId> {
        self.check_not_null(h)?;
        let class = self.thread.class_of(h);
        let vm = self.thread.vm();
        let reg = vm.registry();
        let mt = reg.table(class);
        match &mt.kind {
            TypeKind::Class if mt.has_refs => Err(CoreError::ObjectModelIntegrity(mt.name.clone())),
            TypeKind::ObjArray(_) => Err(CoreError::ObjectModelIntegrity(mt.name.clone())),
            _ => Ok(class),
        }
    }

    /// Resolve the zero-copy window of a validated object: `(ptr, bytes)`.
    /// Stability rules are the pinning policy's business.
    pub fn data_window(&self, h: Handle) -> (*mut u8, usize) {
        self.thread.raw_data_window(h)
    }

    /// Element kind of a primitive or multidimensional array (None for a
    /// ref-free class object).
    pub fn elem_kind(&self, h: Handle) -> Option<ElemKind> {
        let class = self.thread.class_of(h);
        let vm = self.thread.vm();
        let reg = vm.registry();
        match reg.table(class).kind {
            TypeKind::PrimArray(k) => Some(k),
            TypeKind::MdArray { elem, .. } => Some(elem),
            _ => None,
        }
    }
}

impl Drop for Fcall<'_> {
    fn drop(&mut self) {
        // Exit poll.
        self.thread.poll();
    }
}

/// Map a binding failure to an interpreter trap. The trap carries a
/// static category; the detailed message stays on the `CoreError` side.
fn trap(e: &CoreError) -> TrapKind {
    TrapKind::Fcall(match e {
        CoreError::NullBuffer => "null transport buffer",
        CoreError::ObjectModelIntegrity(_) => {
            "buffer type contains references; raw transport refused"
        }
        CoreError::RangeOutOfBounds { .. } => "transport range out of bounds",
        CoreError::Mpc(_) => "message passing core failure",
        CoreError::Serialization(_) => "serialization failure",
        CoreError::UnknownType(_) => "receiver does not know the transported type",
    })
}

fn int_arg(v: Value, what: &'static str) -> Result<i64, TrapKind> {
    match v {
        Value::I(i) => Ok(i),
        _ => Err(TrapKind::Fcall(what)),
    }
}

fn arg(args: &[Value], i: usize) -> Result<Value, TrapKind> {
    args.get(i)
        .copied()
        .ok_or(TrapKind::Fcall("missing intrinsic operand"))
}

/// Negative managed peer values are the wildcard receive source
/// (`FCALL_ANY_SOURCE`).
fn source_of(peer: i64) -> Source {
    if peer < 0 {
        Source::Any
    } else {
        Source::Rank(peer as usize)
    }
}

fn dest_of(peer: i64) -> Result<usize, TrapKind> {
    usize::try_from(peer).map_err(|_| TrapKind::Fcall("destination rank must be non-negative"))
}

/// The message-passing intrinsic host: routes [`motor_interp::il::Op::FCall`]
/// from the interpreter into the [`Mp`]/[`Oomp`] bindings, each invocation
/// an FCall frame with entry/exit polls.
///
/// Requests created by `MpIsend`/`MpIrecv` live in a host-side table and
/// are surfaced to managed code as opaque [`Value::Req`] indices; the
/// typed verifier's linearity rules guarantee each one reaches `MpWait`
/// exactly once before its function returns, so the table cannot leak.
///
/// When the interpreter runs a module carrying the `motor-analyze`
/// transport proof, raw transports take the *trusted* bindings and the
/// per-send transportability walk is elided ([`MpIntrinsics::elided`]
/// counts them — the measurable win of load-time verification).
pub struct MpIntrinsics<'t> {
    mp: Mp<'t>,
    oomp: Oomp<'t>,
    requests: RefCell<Vec<Option<MpRequest>>>,
    elided: Cell<u64>,
}

impl<'t> MpIntrinsics<'t> {
    /// Build the host over bound `Mp` and `Oomp` interfaces (one rank).
    pub fn new(mp: Mp<'t>, oomp: Oomp<'t>) -> MpIntrinsics<'t> {
        MpIntrinsics {
            mp,
            oomp,
            requests: RefCell::new(Vec::new()),
            elided: Cell::new(0),
        }
    }

    /// Number of requests still in flight (0 after any verified function
    /// returns, by the request type-state guarantee).
    pub fn outstanding(&self) -> usize {
        self.requests
            .borrow()
            .iter()
            .filter(|r| r.is_some())
            .count()
    }

    /// How many raw transports ran with the transportability check elided
    /// under a transport proof.
    pub fn elided(&self) -> u64 {
        self.elided.get()
    }

    fn thread(&self) -> &'t MotorThread {
        self.mp.thread()
    }

    /// Decode a transport-buffer operand: a non-null object reference.
    fn buf_arg(&self, v: Value) -> Result<Handle, TrapKind> {
        match v {
            Value::R(h) if !self.thread().is_null(h) => Ok(h),
            Value::R(_) | Value::Null => Err(TrapKind::NullReference),
            _ => Err(TrapKind::Fcall("transport buffer must be an object")),
        }
    }

    /// Park a request in the table, reusing free slots so long-running
    /// kernels keep the table bounded.
    fn park(&self, req: MpRequest) -> u32 {
        let mut t = self.requests.borrow_mut();
        match t.iter().position(Option::is_none) {
            Some(i) => {
                t[i] = Some(req);
                i as u32
            }
            None => {
                t.push(Some(req));
                (t.len() - 1) as u32
            }
        }
    }

    fn take(&self, v: Value) -> Result<MpRequest, TrapKind> {
        let Value::Req(idx) = v else {
            return Err(TrapKind::Fcall("MpWait operand must be a request"));
        };
        self.requests
            .borrow_mut()
            .get_mut(idx as usize)
            .and_then(Option::take)
            .ok_or(TrapKind::Fcall("request already completed"))
    }

    fn note_elided(&self, trusted: bool) -> bool {
        if trusted {
            self.elided.set(self.elided.get() + 1);
        }
        trusted
    }
}

impl FcallHost for MpIntrinsics<'_> {
    fn fcall(&self, id: FCallId, args: &[Value], trusted: bool) -> Result<Option<Value>, TrapKind> {
        match id {
            FCallId::MpSend => {
                let buf = self.buf_arg(arg(args, 0)?)?;
                let dest = dest_of(int_arg(arg(args, 1)?, "send dest must be an int")?)?;
                let tag = int_arg(arg(args, 2)?, "tag must be an int")? as i32;
                if self.note_elided(trusted) {
                    self.mp.send_trusted(buf, dest, tag)
                } else {
                    self.mp.send(buf, dest, tag)
                }
                .map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::MpRecv => {
                let buf = self.buf_arg(arg(args, 0)?)?;
                let src = source_of(int_arg(arg(args, 1)?, "recv source must be an int")?);
                let tag = int_arg(arg(args, 2)?, "tag must be an int")? as i32;
                if self.note_elided(trusted) {
                    self.mp.recv_trusted(buf, src, tag)
                } else {
                    self.mp.recv(buf, src, tag)
                }
                .map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::MpIsend => {
                let buf = self.buf_arg(arg(args, 0)?)?;
                let dest = dest_of(int_arg(arg(args, 1)?, "isend dest must be an int")?)?;
                let tag = int_arg(arg(args, 2)?, "tag must be an int")? as i32;
                let req = if self.note_elided(trusted) {
                    self.mp.isend_trusted(buf, dest, tag)
                } else {
                    self.mp.isend(buf, dest, tag)
                }
                .map_err(|e| trap(&e))?;
                Ok(Some(Value::Req(self.park(req))))
            }
            FCallId::MpIrecv => {
                let buf = self.buf_arg(arg(args, 0)?)?;
                let src = source_of(int_arg(arg(args, 1)?, "irecv source must be an int")?);
                let tag = int_arg(arg(args, 2)?, "tag must be an int")? as i32;
                let req = if self.note_elided(trusted) {
                    self.mp.irecv_trusted(buf, src, tag)
                } else {
                    self.mp.irecv(buf, src, tag)
                }
                .map_err(|e| trap(&e))?;
                Ok(Some(Value::Req(self.park(req))))
            }
            FCallId::MpWait => {
                let mut req = self.take(arg(args, 0)?)?;
                self.mp.wait(&mut req).map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::MpBarrier => {
                self.mp.barrier().map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::MpBcast => {
                let buf = self.buf_arg(arg(args, 0)?)?;
                let root = dest_of(int_arg(arg(args, 1)?, "bcast root must be an int")?)?;
                if self.note_elided(trusted) {
                    self.mp.bcast_trusted(buf, root)
                } else {
                    self.mp.bcast(buf, root)
                }
                .map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::Osend => {
                let obj = self.buf_arg(arg(args, 0)?)?;
                let dest = dest_of(int_arg(arg(args, 1)?, "osend dest must be an int")?)?;
                let tag = int_arg(arg(args, 2)?, "tag must be an int")? as i32;
                self.oomp.osend(obj, dest, tag).map_err(|e| trap(&e))?;
                Ok(None)
            }
            FCallId::Orecv(class) => {
                let src = source_of(int_arg(arg(args, 0)?, "orecv source must be an int")?);
                let tag = int_arg(arg(args, 1)?, "tag must be an int")? as i32;
                let (h, _st) = self.oomp.orecv(src, tag).map_err(|e| trap(&e))?;
                // Arrival type check: the deserialized root must be of the
                // declared class — the one dynamic check object transport
                // keeps, because the wire type is the sender's claim.
                if self.thread().class_of(h) != class {
                    self.thread().release(h);
                    return Err(TrapKind::Fcall(
                        "received object class does not match Orecv declaration",
                    ));
                }
                Ok(Some(Value::R(h)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<Vm>, MotorThread) {
        let vm = Vm::new(VmConfig::default());
        let t = MotorThread::attach(Arc::clone(&vm));
        (vm, t)
    }

    #[test]
    fn fcall_polls_on_entry_and_exit() {
        let (_vm, t) = setup();
        // No pending GC: polls are no-ops but must not hang.
        let f = Fcall::enter(&t);
        f.poll();
        drop(f);
    }

    #[test]
    fn null_buffers_rejected() {
        let (_vm, t) = setup();
        let f = Fcall::enter(&t);
        let null = t.null_handle();
        assert!(matches!(f.check_not_null(null), Err(CoreError::NullBuffer)));
    }

    #[test]
    fn ref_bearing_objects_rejected_for_raw_transport() {
        let (vm, t) = setup();
        let arr = {
            let mut reg = vm.registry_mut();
            reg.prim_array(ElemKind::I32)
        };
        let bad = {
            let mut reg = vm.registry_mut();
            reg.define_class("HasRef")
                .transportable("data", arr)
                .build()
        };
        let good = {
            let mut reg = vm.registry_mut();
            reg.define_class("Plain").prim("x", ElemKind::F64).build()
        };
        let f = Fcall::enter(&t);
        let h_bad = t.alloc_instance(bad);
        let h_good = t.alloc_instance(good);
        let h_arr = t.alloc_prim_array(ElemKind::I32, 4);
        assert!(matches!(
            f.check_transportable_raw(h_bad),
            Err(CoreError::ObjectModelIntegrity(_))
        ));
        assert!(f.check_transportable_raw(h_good).is_ok());
        assert!(f.check_transportable_raw(h_arr).is_ok());
    }

    #[test]
    fn elem_kind_reports_array_types() {
        let (_vm, t) = setup();
        let f = Fcall::enter(&t);
        let a = t.alloc_prim_array(ElemKind::F64, 3);
        let m = t.alloc_md_array(ElemKind::I32, &[2, 2]);
        assert_eq!(f.elem_kind(a), Some(ElemKind::F64));
        assert_eq!(f.elem_kind(m), Some(ElemKind::I32));
    }
}
