//! The Motor pinning policy (paper §4.3 and §7.4).
//!
//! "Pinning is not necessary for every MPI operation, and is only required
//! if garbage collection might occur and if the object has the potential
//! to be moved during that collection."
//!
//! The policy, reproduced exactly:
//!
//! * **Elder residents never pin.** "Motor checks the object's internal
//!   memory address against the boundaries of the younger generation. If
//!   the object is outside this boundary, then it has already been promoted
//!   to the elder generation and is not at risk of being moved during
//!   collection."
//! * **Blocking operations defer the pin.** "Pinning is not performed
//!   automatically, but is deferred until the operation enters a
//!   polling-wait state ... many blocking MPI operations complete quickly
//!   and never need to enter the polling-wait," and without entering the
//!   wait there is no opportunity for a collection.
//! * **Non-blocking operations pin conditionally.** The object is pinned
//!   immediately, but release is delegated to the collector: during the
//!   mark phase the GC asks the transport request whether it is still in
//!   flight and discards the pin if not.
//!
//! [`PinPolicy`] also offers the wrapper baselines' behaviour (pin-always,
//! as the Indiana bindings do for every call) so the ablation benchmark can
//! quantify the difference on identical machinery, and an unsound
//! `Disabled` mode used by the failure-injection test to demonstrate the
//! corruption the policy prevents.

use std::sync::Arc;

use motor_mpc::Request;
use motor_runtime::stats::GcStats;
use motor_runtime::types::ClassId;
use motor_runtime::{Handle, MotorThread, PinToken};

/// Which pinning behaviour to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// The Motor policy described above (the default).
    #[default]
    Motor,
    /// Pin and unpin around every operation, as the managed-wrapper
    /// bindings do (the Indiana C# bindings "perform pinning for each MPI
    /// operation", paper §8).
    Always,
    /// Never pin — intentionally unsound; only for demonstrating the
    /// corruption window in failure-injection tests.
    Disabled,
}

/// The pin (if any) held for the duration of a blocking operation.
pub enum HeldPin {
    /// No pin was needed.
    None,
    /// A hard pin that must be released when the operation completes.
    Hard(PinToken),
}

/// Decide-and-pin for a *blocking* operation that is about to enter its
/// polling wait. Returns the pin to release afterwards.
///
/// This is called only when the fast path (operation complete before any
/// wait) has failed, implementing the paper's deferred pinning.
pub fn pin_for_polling_wait(thread: &MotorThread, policy: PinPolicy, buf: Handle) -> HeldPin {
    match policy {
        PinPolicy::Motor => {
            if thread.is_young(buf) {
                HeldPin::Hard(thread.pin(buf))
            } else {
                GcStats::bump(&thread.vm().stats().pins_avoided_elder);
                HeldPin::None
            }
        }
        PinPolicy::Always => HeldPin::Hard(thread.pin(buf)),
        PinPolicy::Disabled => HeldPin::None,
    }
}

/// Account for a blocking operation that completed on the fast path and
/// never entered the polling wait (and therefore never pinned).
pub fn note_fast_blocking_completion(thread: &MotorThread, policy: PinPolicy, buf: Handle) {
    if policy == PinPolicy::Motor && thread.is_young(buf) {
        GcStats::bump(&thread.vm().stats().pins_avoided_fast_blocking);
    }
}

/// Release a held pin after the blocking operation completed.
pub fn release(thread: &MotorThread, pin: HeldPin) {
    if let HeldPin::Hard(tok) = pin {
        thread.unpin(tok);
    }
}

/// Pin for a *non-blocking* operation: register a conditional pin whose
/// release the collector performs once `req` reports completion
/// (paper §4.3). Under `Always`, degrade to the wrapper behaviour of a
/// hard pin that a completion check must release (returned to the caller).
pub fn pin_for_nonblocking(
    thread: &MotorThread,
    policy: PinPolicy,
    buf: Handle,
    req: &Request,
) -> Option<PinToken> {
    match policy {
        PinPolicy::Motor => {
            if thread.is_young(buf) {
                let r = Arc::clone(req);
                thread.pin_conditional(buf, Arc::new(move || r.in_flight()));
            } else {
                GcStats::bump(&thread.vm().stats().pins_avoided_elder);
            }
            None
        }
        PinPolicy::Always => Some(thread.pin(buf)),
        PinPolicy::Disabled => None,
    }
}

/// Install never-transported escape proofs (motor-analyze's per-class
/// bits) into the thread's VM, letting the minor collector skip its
/// pinned-set membership check for those classes entirely.
///
/// Complements the policy above: [`pin_for_polling_wait`] and friends
/// avoid *creating* unnecessary pins; the proof removes the per-object
/// *lookup* for classes that can never be transport buffers. The bits
/// must come from a sound whole-program analysis — an embedder that
/// pins objects of a proven class by hand (via [`MotorThread::pin`])
/// invalidates the proof. Installation intersects with any earlier
/// proof; see [`motor_runtime::Vm::install_never_transported`].
pub fn install_never_transported(thread: &MotorThread, classes: &[ClassId]) {
    thread.vm().install_never_transported(classes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::heap::HeapConfig;
    use motor_runtime::{ElemKind, Vm, VmConfig};

    fn setup() -> (Arc<Vm>, MotorThread) {
        let vm = Vm::new(VmConfig {
            heap: HeapConfig {
                young_bytes: 8192,
                ..Default::default()
            },
            ..Default::default()
        });
        let t = MotorThread::attach(Arc::clone(&vm));
        (vm, t)
    }

    #[test]
    fn elder_objects_skip_pinning() {
        let (vm, t) = setup();
        let h = t.alloc_prim_array(ElemKind::U8, 64);
        t.collect_minor(); // promote
        assert!(!t.is_young(h));
        let pin = pin_for_polling_wait(&t, PinPolicy::Motor, h);
        assert!(matches!(pin, HeldPin::None));
        let snap = vm.stats_snapshot();
        assert_eq!(snap.pins, 0);
        assert_eq!(snap.pins_avoided_elder, 1);
    }

    #[test]
    fn young_objects_pin_for_the_wait() {
        let (vm, t) = setup();
        let h = t.alloc_prim_array(ElemKind::U8, 64);
        assert!(t.is_young(h));
        let pin = pin_for_polling_wait(&t, PinPolicy::Motor, h);
        assert!(matches!(pin, HeldPin::Hard(_)));
        release(&t, pin);
        let snap = vm.stats_snapshot();
        assert_eq!(snap.pins, 1);
        assert_eq!(snap.unpins, 1);
    }

    #[test]
    fn always_policy_pins_even_elder_objects() {
        let (vm, t) = setup();
        let h = t.alloc_prim_array(ElemKind::U8, 64);
        t.collect_minor();
        let pin = pin_for_polling_wait(&t, PinPolicy::Always, h);
        assert!(matches!(pin, HeldPin::Hard(_)));
        release(&t, pin);
        assert_eq!(vm.stats_snapshot().pin_traffic(), 2);
    }

    #[test]
    fn nonblocking_registers_conditional_pin_only_when_young() {
        use motor_mpc::request::RequestState;
        let (vm, t) = setup();
        let young = t.alloc_prim_array(ElemKind::U8, 32);
        let req = RequestState::new(1);
        assert!(pin_for_nonblocking(&t, PinPolicy::Motor, young, &req).is_none());
        assert_eq!(vm.stats_snapshot().conditional_pins_registered, 1);
        // Elder object: no registration.
        t.collect_minor();
        let req2 = RequestState::new(2);
        pin_for_nonblocking(&t, PinPolicy::Motor, young, &req2);
        assert_eq!(vm.stats_snapshot().conditional_pins_registered, 1);
        assert_eq!(vm.stats_snapshot().pins_avoided_elder, 1);
        // The first conditional pin resolves once the request completes.
        req.complete();
        t.collect_minor();
        assert!(vm.stats_snapshot().conditional_pins_released >= 1);
    }

    #[test]
    fn never_transported_proof_elides_pin_checks() {
        let (vm, t) = setup();
        let quiet = vm
            .registry_mut()
            .define_class("Quiet")
            .prim("x", ElemKind::I64)
            .build();
        let h = t.alloc_instance(quiet);
        assert_eq!(vm.stats_snapshot().pin_checks_elided, 0);
        install_never_transported(&t, &[quiet]);
        t.collect_minor();
        assert!(vm.stats_snapshot().pin_checks_elided >= 1);
        // Clearing the proof restores the conservative path.
        let before = vm.stats_snapshot().pin_checks_elided;
        vm.clear_never_transported();
        t.collect_minor();
        assert_eq!(vm.stats_snapshot().pin_checks_elided, before);
        let _ = h;
    }

    #[test]
    fn fast_blocking_completion_is_counted() {
        let (vm, t) = setup();
        let h = t.alloc_prim_array(ElemKind::U8, 32);
        note_fast_blocking_completion(&t, PinPolicy::Motor, h);
        assert_eq!(vm.stats_snapshot().pins_avoided_fast_blocking, 1);
        assert_eq!(vm.stats_snapshot().pins, 0);
    }
}
