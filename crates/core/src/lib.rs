//! # motor-core — Motor: a virtual machine for high performance computing
//!
//! The paper's contribution: a high-performance message passing library
//! integrated *inside* a managed runtime, rather than wrapped behind a
//! managed-to-native call interface. This crate ties the managed runtime
//! (`motor-runtime`) and the Message Passing Core (`motor-mpc`) together:
//!
//! * [`fcall`] — the trusted FCall boundary (entry/exit GC polls,
//!   parameter checks, object-model-integrity enforcement).
//! * [`mp`] — `System.MP`, the regular MPI bindings over managed objects
//!   (count and datatype parameters removed; array sub-range overloads;
//!   zero-copy transfer from object instance data).
//! * [`pinning`] — the Motor pinning policy: elder residents never pin,
//!   blocking operations pin only on entering the polling wait, and
//!   non-blocking operations register *conditional* pins the collector
//!   resolves during its mark phase.
//! * [`serial`] — the custom serializer (type table + side-by-side object
//!   data, Transportable-bit traversal, linear/hashed visited structures,
//!   split representation).
//! * [`oomp`] — the extended object-oriented operations: `OSend`,
//!   `ORecv`, `OBcast`, `OScatter`, `OGather`.
//! * [`bufpool`] — the reusable native buffer stack trimmed at GC.
//! * [`cluster`] — the harness running one VM per rank.
//!
//! ```
//! use motor_core::cluster::run_cluster_default;
//! use motor_runtime::ElemKind;
//!
//! // Two Motor VMs ping-pong a managed array.
//! run_cluster_default(
//!     2,
//!     |_reg| {},
//!     |proc| {
//!         let mp = proc.mp();
//!         let t = proc.thread();
//!         let buf = t.alloc_prim_array(ElemKind::I32, 4);
//!         if mp.rank() == 0 {
//!             t.prim_write(buf, 0, &[1i32, 2, 3, 4]);
//!             mp.send(buf, 1, 0).unwrap();
//!         } else {
//!             mp.recv(buf, 0, 0).unwrap();
//!             let mut out = [0i32; 4];
//!             t.prim_read(buf, 0, &mut out);
//!             assert_eq!(out, [1, 2, 3, 4]);
//!         }
//!     },
//! )
//! .unwrap();
//! ```

pub mod bufpool;
pub mod cluster;
pub mod doctor;
pub mod error;
pub mod fcall;
pub mod mp;
pub mod oomp;
pub mod pinning;
pub mod serial;
pub mod telemetry;

pub use cluster::{
    run_cluster, run_cluster_default, ClusterConfig, ClusterConfigBuilder, ClusterMetrics,
    MotorProc,
};
pub use doctor::DoctorServer;
pub use error::{CoreError, CoreResult};
pub use fcall::MpIntrinsics;
pub use motor_mpc::Source;
pub use motor_mpc::Tag;
pub use mp::{Mp, MpRequest, MpStatus, ANY_TAG};
pub use oomp::Oomp;
pub use pinning::PinPolicy;
pub use serial::{AttrLookup, SerializeStats, Serializer, VisitedStrategy};
pub use telemetry::{
    classify_observations, start_monitor, Collector, MonitorHandle, Observation, RankTicket,
    TelemetryConfig, TelemetryServer,
};
