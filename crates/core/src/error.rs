//! Motor core error type.

use std::fmt;

/// Errors surfaced by the Motor message-passing bindings.
#[derive(Debug)]
pub enum CoreError {
    /// A null object was passed as a message buffer.
    NullBuffer,
    /// The object's type contains references; transporting it raw would
    /// compromise object-model integrity (paper §2.4). Use the extended
    /// object-oriented operations instead.
    ObjectModelIntegrity(String),
    /// Array range (offset, count) out of bounds.
    RangeOutOfBounds {
        /// Requested start element.
        offset: usize,
        /// Requested element count.
        count: usize,
        /// Actual array length.
        len: usize,
    },
    /// The message passing core reported an error.
    Mpc(motor_mpc::MpcError),
    /// A serialized representation could not be decoded.
    Serialization(String),
    /// The receiver does not know a type named in the type table.
    UnknownType(String),
}

/// Result alias for Motor operations.
pub type CoreResult<T> = Result<T, CoreError>;

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NullBuffer => write!(f, "null message buffer"),
            CoreError::ObjectModelIntegrity(ty) => write!(
                f,
                "type `{ty}` contains object references; raw transport refused \
                 (use the extended object-oriented operations)"
            ),
            CoreError::RangeOutOfBounds { offset, count, len } => {
                write!(f, "range {offset}+{count} exceeds array length {len}")
            }
            CoreError::Mpc(e) => write!(f, "message passing core: {e}"),
            CoreError::Serialization(s) => write!(f, "serialization: {s}"),
            CoreError::UnknownType(t) => write!(f, "receiver does not know type `{t}`"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<motor_mpc::MpcError> for CoreError {
    fn from(e: motor_mpc::MpcError) -> Self {
        CoreError::Mpc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::NullBuffer.to_string().contains("null"));
        assert!(CoreError::ObjectModelIntegrity("Node".into())
            .to_string()
            .contains("Node"));
        let e = CoreError::RangeOutOfBounds {
            offset: 3,
            count: 9,
            len: 10,
        };
        assert!(e.to_string().contains("3+9"));
        assert!(CoreError::UnknownType("X".into()).to_string().contains("X"));
    }

    #[test]
    fn mpc_error_converts() {
        let e: CoreError = motor_mpc::MpcError::Shutdown.into();
        assert!(matches!(e, CoreError::Mpc(_)));
    }
}
