//! The `motor-doctor` watchdog: live stall/deadlock diagnosis over a
//! running cluster.
//!
//! Every rank's registries already keep a live in-flight op table (see
//! [`motor_obs::doctor`]): spans register on open, outstanding
//! `Isend`/`Irecv` requests keep their registration until completion, and
//! the transport's polling wait heartbeats the table whenever the
//! progress engine actually moves bytes. The [`DoctorServer`] here is the
//! other half: a monitor thread that periodically scans every registered
//! rank's tables, cross-matches waiters against their peers' in-flight
//! ops and device queues, and classifies anomalies with
//! [`motor_obs::classify`] — *stall*, *deadlock suspect*, *pin leak*,
//! *GC pressure*.
//!
//! On the first new anomaly (and on demand) it cuts a [`FlightRecord`]:
//! every rank's merged metrics snapshot, trace-ring drain and in-flight
//! table plus the anomaly list, written as JSON next to the Perfetto
//! export, and prints a one-screen diagnosis naming the blamed ranks and
//! ops. Enable it per run with [`ClusterConfigBuilder::doctor`] or the
//! `MOTOR_DOCTOR` environment variable (see
//! [`DoctorConfig::parse`](motor_obs::DoctorConfig::parse)).
//!
//! [`ClusterConfigBuilder::doctor`]: crate::cluster::ClusterConfigBuilder::doctor

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use motor_mpc::Device;
use motor_obs::{
    classify, Anomaly, DoctorConfig, FlightRecord, Hist, Metric, MetricsSnapshot, RankFlight,
    RankHealth,
};
use motor_runtime::stats::GcStatsSnapshot;
use motor_runtime::Vm;
use parking_lot::{Condvar, Mutex};

/// The GC-bridge pairs merged into a rank's snapshot (the VM's GC
/// counters live in `GcStats`, not in a `MetricsRegistry`).
pub(crate) fn gc_bridge_pairs(gc: &GcStatsSnapshot) -> [(Metric, u64); 15] {
    [
        (Metric::GcMinorCollections, gc.minor_collections),
        (Metric::GcFullCollections, gc.full_collections),
        (Metric::GcObjectsPromoted, gc.objects_promoted),
        (Metric::GcBytesPromoted, gc.bytes_promoted),
        (Metric::GcPinnedBlockPromotions, gc.pinned_block_promotions),
        (Metric::GcPins, gc.pins),
        (Metric::GcUnpins, gc.unpins),
        (Metric::GcCondPinsRegistered, gc.conditional_pins_registered),
        (Metric::GcCondPinsHeld, gc.conditional_pins_held),
        (Metric::GcCondPinsReleased, gc.conditional_pins_released),
        (Metric::GcPinsAvoidedElder, gc.pins_avoided_elder),
        (
            Metric::GcPinsAvoidedFastBlocking,
            gc.pins_avoided_fast_blocking,
        ),
        (Metric::GcObjectsSwept, gc.objects_swept),
        (Metric::GcBytesSwept, gc.bytes_swept),
        (Metric::GcPinChecksElided, gc.pin_checks_elided),
    ]
}

/// Merged per-rank snapshot: transport-side registry + VM-side registry +
/// GC bridge (the same merge [`MotorProc::metrics`] performs).
///
/// [`MotorProc::metrics`]: crate::cluster::MotorProc::metrics
pub(crate) fn merged_metrics(device: &Device, vm: &Vm) -> MetricsSnapshot {
    let mut snap = device.metrics().snapshot();
    snap.merge(&vm.metrics().snapshot());
    snap.set_gc_bridge(&gc_bridge_pairs(&vm.stats_snapshot()));
    snap
}

/// Safepoint-stall accounting between two scans of one rank.
#[derive(Default)]
struct StallWindow {
    prev_stall_sum: f64,
    prev_now_nanos: u64,
}

/// One monitored rank: everything the watchdog reads, all shared-state
/// and lock-free or briefly-locked so the scan never blocks the rank.
struct RankHooks {
    /// Human label (`"rank 2"`, `"child 1"`, ...).
    label: String,
    /// Rank within its group (world rank, or child-world rank).
    rank: usize,
    /// Spawn group: 0 for the initial world, one per `spawn_children`
    /// batch after that. Peer cross-matching only happens within a group —
    /// peer ranks in op arguments are meaningless across worlds.
    group: usize,
    device: Arc<Device>,
    vm: Arc<Vm>,
    done: AtomicBool,
    window: Mutex<StallWindow>,
}

impl RankHooks {
    fn observe(&self) -> RankHealth {
        let dreg = self.device.metrics();
        let vreg = self.vm.metrics();
        let now = dreg.now_nanos();
        let mut inflight = dreg.inflight_ops();
        inflight.extend(vreg.inflight_ops());
        inflight.sort_by_key(|op| op.token);
        let (hard_pins, cond_pins, oldest_pin) = self.vm.pin_diagnostics();
        // Safepoint-stall time over the window since the previous scan,
        // estimated from the stall histogram's bucket midpoints.
        let stall_sum = vreg
            .hist_snapshot(Hist::SafepointStallNanos)
            .estimated_sum();
        let (stall_nanos, window_nanos) = {
            let mut w = self.window.lock();
            let delta = (stall_sum - w.prev_stall_sum).max(0.0) as u64;
            let window = now.saturating_sub(w.prev_now_nanos);
            let first = w.prev_now_nanos == 0;
            w.prev_stall_sum = stall_sum;
            w.prev_now_nanos = now;
            // The first observation has no window yet.
            if first {
                (0, 0)
            } else {
                (delta, window)
            }
        };
        RankHealth {
            rank: self.rank,
            label: self.label.clone(),
            done: self.done.load(Ordering::Acquire),
            now_nanos: now,
            last_progress_nanos: dreg.last_progress_nanos().max(vreg.last_progress_nanos()),
            inflight,
            queue_depths: self.device.queue_depths(),
            hard_pins,
            cond_pins,
            oldest_pin_nanos: oldest_pin.map_or(0, |d| d.as_nanos() as u64),
            safepoint_stall_nanos: stall_nanos,
            window_nanos,
            links_dropped: dreg.get(Metric::LinksDropped),
        }
    }

    fn flight(&self, health: &RankHealth) -> RankFlight {
        RankFlight {
            rank: self.rank,
            label: self.label.clone(),
            done: health.done,
            inflight: health.inflight.clone(),
            queue_depths: health.queue_depths,
            snapshot: merged_metrics(&self.device, &self.vm),
        }
    }
}

/// Handle to one registered rank; pass back to
/// [`DoctorServer::mark_done`] when the rank body returns.
#[derive(Debug, Clone, Copy)]
pub struct RankTicket(usize);

/// The cluster watchdog. Create with [`DoctorServer::new`], register
/// every rank, then [`start`](DoctorServer::start) the monitor thread;
/// [`stop`](DoctorServer::stop) it when the cluster exits.
pub struct DoctorServer {
    cfg: DoctorConfig,
    ranks: Mutex<Vec<Arc<RankHooks>>>,
    next_group: AtomicUsize,
    /// Every anomaly diagnosed so far, deduplicated by
    /// [`Anomaly::key`](motor_obs::Anomaly::key).
    anomalies: Mutex<Vec<Anomaly>>,
    records_written: AtomicUsize,
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

impl DoctorServer {
    /// A server with no ranks registered yet.
    pub fn new(cfg: DoctorConfig) -> Arc<DoctorServer> {
        Arc::new(DoctorServer {
            cfg,
            ranks: Mutex::new(Vec::new()),
            next_group: AtomicUsize::new(1),
            anomalies: Mutex::new(Vec::new()),
            records_written: AtomicUsize::new(0),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DoctorConfig {
        &self.cfg
    }

    /// Register a rank of the initial world (group 0).
    pub fn register(
        &self,
        rank: usize,
        label: String,
        device: Arc<Device>,
        vm: Arc<Vm>,
    ) -> RankTicket {
        self.register_in_group(0, rank, label, device, vm)
    }

    /// Allocate a fresh spawn group for a `spawn_children` batch.
    pub fn alloc_group(&self) -> usize {
        self.next_group.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a rank of spawn group `group` (see [`Self::alloc_group`]).
    pub fn register_in_group(
        &self,
        group: usize,
        rank: usize,
        label: String,
        device: Arc<Device>,
        vm: Arc<Vm>,
    ) -> RankTicket {
        let mut ranks = self.ranks.lock();
        ranks.push(Arc::new(RankHooks {
            label,
            rank,
            group,
            device,
            vm,
            done: AtomicBool::new(false),
            window: Mutex::new(StallWindow::default()),
        }));
        RankTicket(ranks.len() - 1)
    }

    /// Record that a rank's body returned (its silence is no longer
    /// suspicious, and peers blocked on it can be blamed).
    pub fn mark_done(&self, ticket: RankTicket) {
        if let Some(h) = self.ranks.lock().get(ticket.0) {
            h.done.store(true, Ordering::Release);
        }
    }

    /// One watchdog pass: observe every rank, classify per spawn group,
    /// record and report anomalies not seen before. Returns the *new*
    /// anomalies (usually called from the monitor thread, but callable
    /// directly for on-demand checks and tests).
    pub fn scan(&self) -> Vec<Anomaly> {
        let hooks: Vec<Arc<RankHooks>> = self.ranks.lock().clone();
        if hooks.is_empty() {
            return Vec::new();
        }
        let health: Vec<RankHealth> = hooks.iter().map(|h| h.observe()).collect();

        // Classify group by group: `classify` indexes peers by rank, which
        // is only meaningful within one world.
        let mut groups: Vec<usize> = hooks.iter().map(|h| h.group).collect();
        groups.sort_unstable();
        groups.dedup();
        let mut found = Vec::new();
        for g in groups {
            let mut members: Vec<&RankHealth> = hooks
                .iter()
                .zip(&health)
                .filter(|(h, _)| h.group == g)
                .map(|(_, obs)| obs)
                .collect();
            members.sort_by_key(|m| m.rank);
            // Skip a group mid-registration: peer indices would be off.
            if members.iter().enumerate().any(|(i, m)| m.rank != i) {
                continue;
            }
            let members: Vec<RankHealth> = members.into_iter().cloned().collect();
            found.extend(classify(&members, &self.cfg));
        }

        let fresh: Vec<Anomaly> = {
            let mut known = self.anomalies.lock();
            let fresh: Vec<Anomaly> = found
                .into_iter()
                .filter(|a| known.iter().all(|k| k.key() != a.key()))
                .collect();
            known.extend(fresh.iter().cloned());
            fresh
        };
        if !fresh.is_empty() {
            let record = self.cut_record(&hooks, &health, fresh.clone());
            eprint!("{}", record.diagnosis());
            self.write_record(&record);
            if let Some(code) = self.cfg.exit_code {
                eprintln!("motor-doctor: aborting the process (exit code {code})");
                std::process::exit(code);
            }
        }
        fresh
    }

    /// Cut a flight record of the current state on demand (anomalies seen
    /// so far included).
    pub fn flight_record(&self) -> FlightRecord {
        let hooks: Vec<Arc<RankHooks>> = self.ranks.lock().clone();
        let health: Vec<RankHealth> = hooks.iter().map(|h| h.observe()).collect();
        self.cut_record(&hooks, &health, self.anomalies())
    }

    fn cut_record(
        &self,
        hooks: &[Arc<RankHooks>],
        health: &[RankHealth],
        anomalies: Vec<Anomaly>,
    ) -> FlightRecord {
        let t_nanos = hooks.first().map_or(0, |h| h.device.metrics().now_nanos());
        let mut ranks: Vec<(usize, usize, RankFlight)> = hooks
            .iter()
            .zip(health)
            .map(|(h, obs)| (h.group, h.rank, h.flight(obs)))
            .collect();
        ranks.sort_by_key(|&(g, r, _)| (g, r));
        FlightRecord {
            t_nanos,
            anomalies,
            ranks: ranks.into_iter().map(|(_, _, f)| f).collect(),
        }
    }

    /// Write `record` to the configured path, if any.
    pub fn write_record(&self, record: &FlightRecord) {
        if let Some(path) = &self.cfg.record_path {
            match std::fs::write(path, record.to_json()) {
                Ok(()) => {
                    self.records_written.fetch_add(1, Ordering::Relaxed);
                    eprintln!("motor-doctor: flight record written to {path}");
                }
                Err(e) => eprintln!("motor-doctor: cannot write {path}: {e}"),
            }
        }
    }

    /// Every anomaly diagnosed so far (deduplicated).
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.anomalies.lock().clone()
    }

    /// Number of flight records written to disk so far.
    pub fn records_written(&self) -> usize {
        self.records_written.load(Ordering::Relaxed)
    }

    /// Spawn the monitor thread; it scans every
    /// [`scan_interval`](motor_obs::DoctorConfig::scan_interval) until
    /// [`stop`](Self::stop).
    pub fn start(self: &Arc<Self>) -> JoinHandle<()> {
        let me = Arc::clone(self);
        std::thread::Builder::new()
            .name("motor-doctor".into())
            .spawn(move || {
                let mut stopped = me.stop.lock();
                while !*stopped {
                    let timed_out = me
                        .stop_cv
                        .wait_for(&mut stopped, me.cfg.scan_interval)
                        .timed_out();
                    if timed_out && !*stopped {
                        drop(stopped);
                        me.scan();
                        stopped = me.stop.lock();
                    }
                }
            })
            .expect("spawn motor-doctor thread")
    }

    /// Ask the monitor thread to exit (idempotent).
    pub fn stop(&self) {
        *self.stop.lock() = true;
        self.stop_cv.notify_all();
    }
}
