//! The `motor-doctor` watchdog: live stall/deadlock diagnosis over a
//! running cluster.
//!
//! Every rank's registries already keep a live in-flight op table (see
//! [`motor_obs::doctor`]): spans register on open, outstanding
//! `Isend`/`Irecv` requests keep their registration until completion, and
//! the transport's polling wait heartbeats the table whenever the
//! progress engine actually moves bytes. The [`DoctorServer`] here is a
//! *consumer* of the shared telemetry plane: the unified monitor loop
//! (see [`crate::telemetry::start_monitor`]) takes one
//! [`Collector::collect`] tick per interval, and hands each tick's
//! observations to [`DoctorServer::process`], which cross-matches waiters
//! against their peers' in-flight ops and device queues and classifies
//! anomalies with [`motor_obs::classify`] — *stall*, *deadlock suspect*,
//! *pin leak*, *GC pressure*. The doctor no longer takes snapshots of its
//! own: the watchdog and the `/metrics`-`/frames` endpoints observe the
//! cluster through the same frames.
//!
//! On the first new anomaly (and on demand) it cuts a [`FlightRecord`]:
//! every rank's merged metrics snapshot, trace-ring drain and in-flight
//! table plus the anomaly list, written as JSON next to the Perfetto
//! export, and prints a one-screen diagnosis naming the blamed ranks and
//! ops. Enable it per run with [`ClusterConfigBuilder::doctor`] or the
//! `MOTOR_DOCTOR` environment variable (see
//! [`DoctorConfig::parse`](motor_obs::DoctorConfig::parse)).
//!
//! [`ClusterConfigBuilder::doctor`]: crate::cluster::ClusterConfigBuilder::doctor
//! [`Collector::collect`]: crate::telemetry::Collector::collect

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use motor_mpc::Device;
use motor_obs::{Anomaly, DoctorConfig, FlightRecord, Metric, MetricsSnapshot};
use motor_runtime::stats::GcStatsSnapshot;
use motor_runtime::Vm;
use parking_lot::Mutex;

use crate::telemetry::{classify_observations, Collector, Observation};

/// The GC-bridge pairs merged into a rank's snapshot (the VM's GC
/// counters live in `GcStats`, not in a `MetricsRegistry`).
pub(crate) fn gc_bridge_pairs(gc: &GcStatsSnapshot) -> [(Metric, u64); 15] {
    [
        (Metric::GcMinorCollections, gc.minor_collections),
        (Metric::GcFullCollections, gc.full_collections),
        (Metric::GcObjectsPromoted, gc.objects_promoted),
        (Metric::GcBytesPromoted, gc.bytes_promoted),
        (Metric::GcPinnedBlockPromotions, gc.pinned_block_promotions),
        (Metric::GcPins, gc.pins),
        (Metric::GcUnpins, gc.unpins),
        (Metric::GcCondPinsRegistered, gc.conditional_pins_registered),
        (Metric::GcCondPinsHeld, gc.conditional_pins_held),
        (Metric::GcCondPinsReleased, gc.conditional_pins_released),
        (Metric::GcPinsAvoidedElder, gc.pins_avoided_elder),
        (
            Metric::GcPinsAvoidedFastBlocking,
            gc.pins_avoided_fast_blocking,
        ),
        (Metric::GcObjectsSwept, gc.objects_swept),
        (Metric::GcBytesSwept, gc.bytes_swept),
        (Metric::GcPinChecksElided, gc.pin_checks_elided),
    ]
}

/// Merged per-rank snapshot: transport-side registry + VM-side registry +
/// GC bridge (the same merge [`MotorProc::metrics`] performs).
///
/// [`MotorProc::metrics`]: crate::cluster::MotorProc::metrics
pub(crate) fn merged_metrics(device: &Device, vm: &Vm) -> MetricsSnapshot {
    let mut snap = device.metrics().snapshot();
    snap.merge(&vm.metrics().snapshot());
    snap.set_gc_bridge(&gc_bridge_pairs(&vm.stats_snapshot()));
    snap
}

/// The cluster watchdog: anomaly classification, deduplication, and
/// flight-record policy over a shared [`Collector`]. Create with
/// [`DoctorServer::new`]; the unified monitor loop feeds it one
/// [`process`](DoctorServer::process) call per collection tick.
pub struct DoctorServer {
    cfg: DoctorConfig,
    collector: Arc<Collector>,
    /// Every anomaly diagnosed so far, deduplicated by
    /// [`Anomaly::key`](motor_obs::Anomaly::key).
    anomalies: Mutex<Vec<Anomaly>>,
    records_written: AtomicUsize,
}

impl DoctorServer {
    /// A watchdog consuming `collector`'s observations.
    pub fn new(cfg: DoctorConfig, collector: Arc<Collector>) -> Arc<DoctorServer> {
        Arc::new(DoctorServer {
            cfg,
            collector,
            anomalies: Mutex::new(Vec::new()),
            records_written: AtomicUsize::new(0),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DoctorConfig {
        &self.cfg
    }

    /// The shared collection state this watchdog observes through.
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Classify one tick's observations, record and report anomalies not
    /// seen before. Returns the *new* anomalies. Called by the monitor
    /// loop; callable directly with synthetic observations in tests.
    pub fn process(&self, obs: &[Observation]) -> Vec<Anomaly> {
        if obs.is_empty() {
            return Vec::new();
        }
        let found = classify_observations(obs, &self.cfg);
        let fresh: Vec<Anomaly> = {
            let mut known = self.anomalies.lock();
            let fresh: Vec<Anomaly> = found
                .into_iter()
                .filter(|a| known.iter().all(|k| k.key() != a.key()))
                .collect();
            known.extend(fresh.iter().cloned());
            fresh
        };
        if !fresh.is_empty() {
            let record = self.collector.flight_record_from(obs, fresh.clone());
            eprint!("{}", record.diagnosis());
            self.write_record(&record);
            if let Some(code) = self.cfg.exit_code {
                eprintln!("motor-doctor: aborting the process (exit code {code})");
                std::process::exit(code);
            }
        }
        fresh
    }

    /// One on-demand watchdog pass: take a fresh collection tick (which
    /// also pushes a telemetry frame) and classify it.
    pub fn scan(&self) -> Vec<Anomaly> {
        let obs = self.collector.collect();
        self.process(&obs)
    }

    /// Cut a flight record of the current state on demand (anomalies seen
    /// so far included; the doctor's stall windows are not perturbed).
    pub fn flight_record(&self) -> FlightRecord {
        self.collector.flight_record(self.anomalies())
    }

    /// Write `record` to the configured path, if any.
    pub fn write_record(&self, record: &FlightRecord) {
        if let Some(path) = &self.cfg.record_path {
            match std::fs::write(path, record.to_json()) {
                Ok(()) => {
                    self.records_written.fetch_add(1, Ordering::Relaxed);
                    eprintln!("motor-doctor: flight record written to {path}");
                }
                Err(e) => eprintln!("motor-doctor: cannot write {path}: {e}"),
            }
        }
    }

    /// Every anomaly diagnosed so far (deduplicated).
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.anomalies.lock().clone()
    }

    /// Number of flight records written to disk so far.
    pub fn records_written(&self) -> usize {
        self.records_written.load(Ordering::Relaxed)
    }
}
