//! The process universe: wiring, startup and MPI-2 dynamic process
//! management.
//!
//! The paper's Motor implements "selected MPI-2 functionality such as
//! dynamic process management and dynamic intercommunication routines"
//! (§7). In this reproduction an MPI *process* is an OS thread (each rank
//! owning its own VM instance at the Motor layer); the [`Universe`] is the
//! process-manager service: it creates devices, wires the full mesh of
//! links (in-process shared-memory rings or real TCP loopback), launches
//! rank bodies and supports spawning additional processes at runtime with
//! a parent↔children [`InterComm`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::channel::LinkState;
use crate::comm::Comm;
use crate::device::{Device, DeviceConfig};
use crate::error::{MpcError, MpcResult};
use crate::packet::Envelope;
use crate::progress::{ProgressConfig, ProgressEngine, ProgressMode, ProgressSet};
use crate::request::{Request, Status};

/// Which PAL transport connects ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// In-process shared-memory rings (the `shm` channel).
    Shm,
    /// Real kernel TCP over loopback (the `sock` channel).
    Tcp,
}

/// Builds the link pair wiring global ranks `(a, b)` — `a`'s end first.
/// Lets a test harness substitute fault-injecting links (e.g. motor-sim's
/// `SimLink`) for the built-in shm/tcp channels without the universe
/// knowing anything about them.
pub type LinkFactory = Arc<dyn Fn(usize, usize) -> MpcResult<(LinkState, LinkState)> + Send + Sync>;

/// Universe construction parameters.
#[derive(Clone)]
pub struct UniverseConfig {
    /// Transport used between ranks.
    pub channel: ChannelKind,
    /// Per-direction ring capacity for the shm channel, in bytes.
    pub ring_capacity: usize,
    /// Device tuning.
    pub device: DeviceConfig,
    /// When set, overrides [`channel`](Self::channel): every link pair
    /// comes from this factory instead.
    pub link_factory: Option<LinkFactory>,
    /// Asynchronous progress model. When left at the default (`off`), the
    /// `MOTOR_PROGRESS` environment variable is consulted instead, so
    /// deployments can switch modes without a rebuild.
    pub progress: ProgressConfig,
}

impl std::fmt::Debug for UniverseConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniverseConfig")
            .field("channel", &self.channel)
            .field("ring_capacity", &self.ring_capacity)
            .field("device", &self.device)
            .field("link_factory", &self.link_factory.as_ref().map(|_| "<fn>"))
            .field("progress", &self.progress)
            .finish()
    }
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            channel: ChannelKind::Shm,
            ring_capacity: 256 * 1024,
            device: DeviceConfig::default(),
            link_factory: None,
            progress: ProgressConfig::off(),
        }
    }
}

struct UniverseInner {
    config: UniverseConfig,
    /// Global rank → device.
    devices: Mutex<Vec<Arc<Device>>>,
    /// Context-id allocator (each allocation takes a pair).
    ctx_alloc: Arc<AtomicU32>,
    /// Join handles of dynamically spawned processes.
    children: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Resolved progress model (config, else `MOTOR_PROGRESS`).
    progress: ProgressConfig,
    /// Dedicated progress threads (mode `thread`; idle otherwise).
    engine: ProgressEngine,
    /// Steal pool every device joins in mode `steal`.
    steal: Arc<ProgressSet>,
}

/// A universe of communicating processes.
#[derive(Clone)]
pub struct Universe {
    inner: Arc<UniverseInner>,
}

/// One process's view: its device, world communicator and (for spawned
/// processes) the parent intercommunicator.
pub struct Proc {
    universe: Universe,
    device: Arc<Device>,
    world: Comm,
    parent: Option<InterComm>,
}

impl Proc {
    /// The world communicator of this process group.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// This process's global rank.
    pub fn global_rank(&self) -> usize {
        self.device.rank()
    }

    /// The universe (for dynamic spawning).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The parent intercommunicator, if this process was spawned
    /// dynamically (the `MPI_Comm_get_parent` analog).
    pub fn parent(&self) -> Option<&InterComm> {
        self.parent.as_ref()
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }
}

impl Universe {
    fn new(config: UniverseConfig) -> Universe {
        // Explicit non-default config wins; a config left at `off` defers
        // to `MOTOR_PROGRESS` (mirrors the doctor's from_env fallback).
        let progress = if config.progress.mode != ProgressMode::Off {
            config.progress
        } else {
            ProgressConfig::from_env().unwrap_or(config.progress)
        };
        Universe {
            inner: Arc::new(UniverseInner {
                config,
                devices: Mutex::new(Vec::new()),
                // Context 0/1 belong to the world communicator.
                ctx_alloc: Arc::new(AtomicU32::new(2)),
                children: Mutex::new(Vec::new()),
                progress,
                engine: ProgressEngine::new(progress),
                steal: ProgressSet::new(),
            }),
        }
    }

    /// The resolved progress configuration (explicit or `MOTOR_PROGRESS`).
    pub fn progress_config(&self) -> ProgressConfig {
        self.inner.progress
    }

    fn make_link_pair(
        config: &UniverseConfig,
        a: usize,
        b: usize,
    ) -> MpcResult<(LinkState, LinkState)> {
        if let Some(factory) = &config.link_factory {
            return factory(a, b);
        }
        Ok(match config.channel {
            ChannelKind::Shm => {
                let (a, b) = motor_pal::link::shm_pair(config.ring_capacity);
                (LinkState::new(Box::new(a)), LinkState::new(Box::new(b)))
            }
            ChannelKind::Tcp => {
                let (a, b) = motor_pal::link::tcp_pair()?;
                (LinkState::new(Box::new(a)), LinkState::new(Box::new(b)))
            }
        })
    }

    /// Create `count` fresh devices, wire them to each other and to every
    /// existing device, register them, and return them with their global
    /// ranks.
    fn add_processes(&self, count: usize) -> MpcResult<Vec<Arc<Device>>> {
        let mut devices = self.inner.devices.lock();
        let base = devices.len();
        let mut fresh = Vec::with_capacity(count);
        for i in 0..count {
            fresh.push(Device::new(base + i, self.inner.config.device.clone()));
        }
        // With an active progress mode, wired peers can poke each other's
        // wakers when they put bytes on the wire; mode `off` leaves the
        // poke tables empty so the legacy path stays untouched.
        let pokes = self.inner.progress.mode != ProgressMode::Off;
        // New ↔ existing links.
        for (i, nd) in fresh.iter().enumerate() {
            for (g, od) in devices.iter().enumerate() {
                let (a, b) = Self::make_link_pair(&self.inner.config, base + i, g)?;
                nd.set_link(g, a);
                od.set_link(base + i, b);
                if pokes {
                    nd.install_peer_waker(g, od.waker_handle());
                    od.install_peer_waker(base + i, nd.waker_handle());
                }
            }
        }
        // New ↔ new links.
        for i in 0..count {
            for j in (i + 1)..count {
                let (a, b) = Self::make_link_pair(&self.inner.config, base + i, base + j)?;
                fresh[i].set_link(base + j, a);
                fresh[j].set_link(base + i, b);
                if pokes {
                    fresh[i].install_peer_waker(base + j, fresh[j].waker_handle());
                    fresh[j].install_peer_waker(base + i, fresh[i].waker_handle());
                }
            }
        }
        devices.extend(fresh.iter().cloned());
        // Asynchronous progress coverage — including dynamically spawned
        // processes, which get their engine thread / steal-pool membership
        // the moment they are wired.
        for nd in &fresh {
            match self.inner.progress.mode {
                ProgressMode::Off => {}
                ProgressMode::Thread => self.inner.engine.attach(Arc::clone(nd)),
                ProgressMode::Steal => {
                    self.inner.steal.register(nd);
                    nd.install_steal_set(Arc::clone(&self.inner.steal));
                }
            }
        }
        Ok(fresh)
    }

    /// Run an `n`-rank program with the default configuration: each rank
    /// body runs on its own OS thread with its world communicator.
    /// Panics in rank bodies are propagated.
    pub fn run<F>(n: usize, body: F) -> MpcResult<()>
    where
        F: Fn(Proc) + Send + Sync,
    {
        Self::run_with(n, UniverseConfig::default(), body)
    }

    /// [`Universe::run`] with explicit configuration.
    pub fn run_with<F>(n: usize, config: UniverseConfig, body: F) -> MpcResult<()>
    where
        F: Fn(Proc) + Send + Sync,
    {
        assert!(n >= 1, "a universe needs at least one process");
        let universe = Universe::new(config);
        let devices = universe.add_processes(n)?;
        let group = Arc::new((0..n).collect::<Vec<usize>>());
        let result: Result<(), Box<dyn std::any::Any + Send>> = crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for (rank, device) in devices.iter().enumerate() {
                let device = Arc::clone(device);
                let group = Arc::clone(&group);
                let universe = universe.clone();
                let body = &body;
                handles.push(s.spawn(move |_| {
                    let world = Comm::assemble(
                        Arc::clone(&device),
                        0,
                        group,
                        rank,
                        Arc::clone(&universe.inner.ctx_alloc),
                    );
                    body(Proc {
                        universe,
                        device: Arc::clone(&device),
                        world,
                        parent: None,
                    });
                    // Finalize-style drain: buffered eager sends complete
                    // when queued, so over partial-write transports frames
                    // may still sit in the channel when the body returns.
                    let _ = device.drain();
                }));
            }
            for h in handles {
                h.join().expect("rank body panicked");
            }
        })
        .map(|_| ());
        // Join dynamically spawned children too.
        let children: Vec<_> = universe.inner.children.lock().drain(..).collect();
        for c in children {
            c.join().expect("spawned child panicked");
        }
        // Park-and-join the progress threads before the devices go away.
        universe.inner.engine.stop();
        result.map_err(|_| MpcError::Shutdown)?;
        Ok(())
    }

    /// MPI-2 dynamic process management: collectively spawn `count` new
    /// processes running `entry`. Every member of `comm` must call this;
    /// all members receive the parent↔children [`InterComm`]. The children
    /// receive a `Proc` whose world communicator spans the new processes
    /// and whose [`Proc::parent`] is the children↔parents intercomm.
    pub fn spawn_children<F>(&self, comm: &Comm, count: usize, entry: F) -> MpcResult<InterComm>
    where
        F: Fn(Proc) + Send + Sync + 'static,
    {
        assert!(count >= 1);
        // Root allocates ranks/contexts and launches threads; then shares
        // the coordinates with the other parents.
        // coords = [child_world_ctx, intercomm_ctx, child_base_rank, count]
        let mut coords = [0u32; 4];
        if comm.rank() == 0 {
            let child_world_ctx = comm.ctx_alloc().fetch_add(2, Ordering::Relaxed);
            let inter_ctx = comm.ctx_alloc().fetch_add(2, Ordering::Relaxed);
            let fresh = self.add_processes(count)?;
            let base = fresh[0].rank();
            coords = [child_world_ctx, inter_ctx, base as u32, count as u32];
            // Launch child threads.
            let child_group = Arc::new((base..base + count).collect::<Vec<usize>>());
            let parent_group = Arc::new(comm.group().as_ref().clone());
            let entry = Arc::new(entry);
            for (i, device) in fresh.into_iter().enumerate() {
                let child_group = Arc::clone(&child_group);
                let parent_group = Arc::clone(&parent_group);
                let entry = Arc::clone(&entry);
                let universe = self.clone();
                let ctx_alloc = Arc::clone(comm.ctx_alloc());
                let handle = std::thread::spawn(move || {
                    let world = Comm::assemble(
                        Arc::clone(&device),
                        child_world_ctx,
                        child_group,
                        i,
                        ctx_alloc,
                    );
                    let parent = InterComm {
                        device: Arc::clone(&device),
                        context: inter_ctx,
                        local_rank: i,
                        remote: parent_group,
                    };
                    entry(Proc {
                        universe,
                        device: Arc::clone(&device),
                        world,
                        parent: Some(parent),
                    });
                    let _ = device.drain();
                });
                self.inner.children.lock().push(handle);
            }
        }
        comm.bcast_slice(&mut coords, 0)?;
        let [_, inter_ctx, base, n] = coords;
        Ok(InterComm {
            device: Arc::clone(comm.device()),
            context: inter_ctx,
            local_rank: comm.rank(),
            remote: Arc::new((base as usize..base as usize + n as usize).collect()),
        })
    }

    /// Total processes ever created in this universe.
    pub fn world_size(&self) -> usize {
        self.inner.devices.lock().len()
    }
}

/// An intercommunicator: point-to-point communication with a *remote*
/// group (the MPI-2 `MPI_Comm_spawn` result).
pub struct InterComm {
    device: Arc<Device>,
    context: u32,
    local_rank: usize,
    /// Remote group: remote rank → global rank.
    remote: Arc<Vec<usize>>,
}

impl InterComm {
    /// Number of processes in the remote group.
    pub fn remote_size(&self) -> usize {
        self.remote.len()
    }

    /// This process's rank in its local group.
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    fn envelope(&self, tag: i32) -> Envelope {
        Envelope {
            src: self.local_rank as u32,
            gsrc: self.device.rank() as u32,
            tag,
            context: self.context,
            len: 0,
            sreq: 0,
            flags: 0,
        }
    }

    /// Blocking send to a remote-group rank.
    pub fn send_bytes(
        &self,
        buf: &[u8],
        remote_rank: usize,
        tag: impl Into<crate::Tag>,
    ) -> MpcResult<()> {
        let g = *self
            .remote
            .get(remote_rank)
            .ok_or(MpcError::InvalidRank(remote_rank as i32))?;
        let tag = tag.into().to_device();
        // SAFETY: `buf` is borrowed across the wait below.
        let req: Request = unsafe {
            self.device
                .isend_raw(g, self.envelope(tag), buf.as_ptr(), buf.len(), false)?
        };
        self.device.wait_with(&req, || {})?;
        Ok(())
    }

    /// Blocking receive from a remote-group rank (or [`crate::Source::Any`]).
    pub fn recv_bytes(
        &self,
        buf: &mut [u8],
        remote_rank: impl Into<crate::Source>,
        tag: impl Into<crate::Tag>,
    ) -> MpcResult<Status> {
        let src = remote_rank.into().to_device();
        let tag = tag.into().to_device();
        // SAFETY: `buf` is borrowed across the wait below.
        let req = unsafe {
            self.device
                .irecv_raw(src, tag, self.context, buf.as_mut_ptr(), buf.len())?
        };
        let status = self.device.wait_with(&req, || {})?;
        if status.truncated {
            return Err(MpcError::Truncation {
                message: status.count,
                buffer: buf.len(),
            });
        }
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ANY_TAG;
    use crate::dtype::ReduceOp;
    use crate::source::Source;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn two_rank_pingpong_shm() {
        Universe::run(2, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send_slice(&[41i32], 1, 0).unwrap();
                let mut buf = [0i32];
                world.recv_slice(&mut buf, 1, 0).unwrap();
                assert_eq!(buf[0], 42);
            } else {
                let mut buf = [0i32];
                world.recv_slice(&mut buf, 0, 0).unwrap();
                world.send_slice(&[buf[0] + 1], 0, 0).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn two_rank_pingpong_tcp() {
        let cfg = UniverseConfig {
            channel: ChannelKind::Tcp,
            ..Default::default()
        };
        Universe::run_with(2, cfg, |proc| {
            let world = proc.world();
            let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            if world.rank() == 0 {
                world.send_bytes(&data, 1, 7).unwrap();
            } else {
                let mut buf = vec![0u8; data.len()];
                let st = world.recv_bytes(&mut buf, 0, 7).unwrap();
                assert_eq!(st.count, data.len());
                assert_eq!(buf, data);
            }
        })
        .unwrap();
    }

    #[test]
    fn large_rendezvous_transfer_between_ranks() {
        Universe::run(2, |proc| {
            let world = proc.world();
            let n = 300_000usize;
            if world.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 240) as u8).collect();
                world.send_bytes(&data, 1, 1).unwrap();
            } else {
                let mut buf = vec![0u8; n];
                world.recv_bytes(&mut buf, 0, 1).unwrap();
                assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 240) as u8));
            }
        })
        .unwrap();
    }

    #[test]
    fn barrier_orders_phases() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        Universe::run(4, move |proc| {
            let world = proc.world();
            c.fetch_add(1, Ordering::SeqCst);
            world.barrier().unwrap();
            // After the barrier every rank must observe all 4 arrivals.
            assert_eq!(c.load(Ordering::SeqCst), 4);
        })
        .unwrap();
    }

    #[test]
    fn bcast_from_each_root() {
        Universe::run(5, |proc| {
            let world = proc.world();
            for root in 0..5usize {
                let mut buf = if world.rank() == root {
                    [root as i64 * 100 + 7]
                } else {
                    [0i64]
                };
                world.bcast_slice(&mut buf, root).unwrap();
                assert_eq!(buf[0], root as i64 * 100 + 7);
                world.barrier().unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn scatter_gather_roundtrip() {
        Universe::run(4, |proc| {
            let world = proc.world();
            let n = world.size();
            let root = 1usize;
            let send: Option<Vec<u8>> = if world.rank() == root {
                Some((0..(4 * n) as u8).collect())
            } else {
                None
            };
            let mut part = [0u8; 4];
            world
                .scatter_bytes(send.as_deref(), &mut part, root)
                .unwrap();
            let expect: Vec<u8> = (0..4u8).map(|i| (world.rank() * 4) as u8 + i).collect();
            assert_eq!(&part, expect.as_slice());
            // Transform and gather back.
            for b in part.iter_mut() {
                *b = b.wrapping_add(1);
            }
            let mut gathered = vec![0u8; 4 * n];
            let recv = if world.rank() == root {
                Some(&mut gathered[..])
            } else {
                None
            };
            world.gather_bytes(&part, recv, root).unwrap();
            if world.rank() == root {
                let expect: Vec<u8> = (0..(4 * n) as u8).map(|b| b.wrapping_add(1)).collect();
                assert_eq!(gathered, expect);
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_and_allreduce() {
        Universe::run(4, |proc| {
            let world = proc.world();
            let r = world.rank() as i64;
            let send = [r + 1, 10 * (r + 1)];
            let mut out = [0i64; 2];
            world
                .reduce_slice(
                    &send,
                    if world.rank() == 0 {
                        Some(&mut out[..])
                    } else {
                        None
                    },
                    ReduceOp::Sum,
                    0,
                )
                .unwrap();
            if world.rank() == 0 {
                assert_eq!(out, [10, 100]);
            }
            let mut all = [0i64; 2];
            world
                .allreduce_slice(&send, &mut all, ReduceOp::Max)
                .unwrap();
            assert_eq!(all, [4, 40]);
        })
        .unwrap();
    }

    #[test]
    fn allgather_ring() {
        Universe::run(5, |proc| {
            let world = proc.world();
            let mine = [world.rank() as u16; 3];
            let mut all = vec![0u16; 3 * world.size()];
            world
                .allgather_bytes(
                    crate::dtype::as_bytes(&mine),
                    crate::dtype::as_bytes_mut(&mut all),
                )
                .unwrap();
            for r in 0..world.size() {
                assert_eq!(&all[3 * r..3 * r + 3], [r as u16; 3]);
            }
        })
        .unwrap();
    }

    #[test]
    fn alltoall_exchanges_personalized_chunks() {
        Universe::run(3, |proc| {
            let world = proc.world();
            let n = world.size();
            // Rank r sends byte (10*r + dest) to each dest.
            let send: Vec<u8> = (0..n).map(|d| (10 * world.rank() + d) as u8).collect();
            let mut recv = vec![0u8; n];
            world.alltoall_bytes(&send, &mut recv, 1).unwrap();
            for (src, &got) in recv.iter().enumerate() {
                assert_eq!(got, (10 * src + world.rank()) as u8);
            }
        })
        .unwrap();
    }

    #[test]
    fn comm_dup_isolates_traffic() {
        Universe::run(2, |proc| {
            let world = proc.world();
            let dup = world.dup().unwrap();
            if world.rank() == 0 {
                // Same tag on both communicators; receivers must not mix.
                world.send_slice(&[1i32], 1, 9).unwrap();
                dup.send_slice(&[2i32], 1, 9).unwrap();
            } else {
                let mut a = [0i32];
                let mut b = [0i32];
                // Receive from the dup FIRST: only context keeps them apart.
                dup.recv_slice(&mut b, 0, 9).unwrap();
                world.recv_slice(&mut a, 0, 9).unwrap();
                assert_eq!((a[0], b[0]), (1, 2));
            }
        })
        .unwrap();
    }

    #[test]
    fn comm_split_into_halves() {
        Universe::run(4, |proc| {
            let world = proc.world();
            let color = (world.rank() % 2) as u32;
            let half = world.split(color, world.rank() as i32).unwrap();
            assert_eq!(half.size(), 2);
            // Ranks within the half follow the key order (== world order).
            let mut sum = [0i32];
            half.allreduce_slice(&[world.rank() as i32], &mut sum, ReduceOp::Sum)
                .unwrap();
            if color == 0 {
                assert_eq!(sum[0], 2);
            } else {
                assert_eq!(sum[0], 1 + 3);
            }
        })
        .unwrap();
    }

    #[test]
    fn any_source_any_tag_at_comm_level() {
        Universe::run(3, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                let mut seen = [false; 3];
                for _ in 0..2 {
                    let mut buf = [0u8; 1];
                    let st = world.recv_bytes(&mut buf, Source::Any, ANY_TAG).unwrap();
                    assert_eq!(buf[0] as u32, st.source);
                    seen[st.source as usize] = true;
                }
                assert!(seen[1] && seen[2]);
            } else {
                world
                    .send_bytes(&[world.rank() as u8], 0, world.rank() as i32)
                    .unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn probe_then_sized_receive() {
        Universe::run(2, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send_bytes(&[9u8; 77], 1, 3).unwrap();
            } else {
                let st = world.probe(Source::Any, ANY_TAG).unwrap();
                assert_eq!(st.count, 77);
                let mut buf = vec![0u8; st.count];
                world
                    .recv_bytes(&mut buf, st.source as usize, st.tag)
                    .unwrap();
                assert_eq!(buf, vec![9u8; 77]);
            }
        })
        .unwrap();
    }

    #[test]
    fn dynamic_spawn_with_intercomm() {
        Universe::run(2, |proc| {
            let world = proc.world();
            let inter = proc
                .universe()
                .spawn_children(world, 2, |child| {
                    let parent = child.parent().expect("spawned child has a parent");
                    assert_eq!(parent.remote_size(), 2);
                    // Child world works like any communicator.
                    let mut sum = [0i32];
                    child
                        .world()
                        .allreduce_slice(
                            &[child.world().rank() as i32 + 1],
                            &mut sum,
                            ReduceOp::Sum,
                        )
                        .unwrap();
                    assert_eq!(sum[0], 3);
                    // Report to the parent with the same local rank.
                    let payload = [child.world().rank() as u8 + 100];
                    parent
                        .send_bytes(&payload, child.world().rank(), 5)
                        .unwrap();
                })
                .unwrap();
            assert_eq!(inter.remote_size(), 2);
            // Parent r receives from child r.
            let mut buf = [0u8; 1];
            inter.recv_bytes(&mut buf, world.rank(), 5).unwrap();
            assert_eq!(buf[0], world.rank() as u8 + 100);
        })
        .unwrap();
    }

    #[test]
    fn progress_thread_mode_runs_universe() {
        let cfg = UniverseConfig {
            progress: ProgressConfig::thread(),
            ..Default::default()
        };
        Universe::run_with(3, cfg, |proc| {
            let world = proc.world();
            let mut sum = [0i64];
            world
                .allreduce_slice(&[world.rank() as i64 + 1], &mut sum, ReduceOp::Sum)
                .unwrap();
            assert_eq!(sum[0], 6);
            // Large transfer exercises rendezvous under the engine.
            let n = 200_000usize;
            if world.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
                world.send_bytes(&data, 1, 2).unwrap();
            } else if world.rank() == 1 {
                let mut buf = vec![0u8; n];
                world.recv_bytes(&mut buf, 0, 2).unwrap();
                assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 241) as u8));
            }
        })
        .unwrap();
    }

    #[test]
    fn progress_steal_mode_runs_universe() {
        let cfg = UniverseConfig {
            progress: ProgressConfig::steal(),
            ..Default::default()
        };
        Universe::run_with(4, cfg, |proc| {
            let world = proc.world();
            let me = world.rank();
            let other = world.size() - 1 - me;
            let send = [me as u8; 64];
            let mut recv = [0u8; 64];
            world
                .sendrecv_bytes(&send, other, &mut recv, other, 4)
                .unwrap();
            assert_eq!(recv, [other as u8; 64]);
        })
        .unwrap();
    }

    #[test]
    fn truncation_error_at_comm_level() {
        Universe::run(2, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send_bytes(&[1u8; 64], 1, 0).unwrap();
            } else {
                let mut small = [0u8; 8];
                let err = world.recv_bytes(&mut small, 0, 0).unwrap_err();
                assert!(matches!(err, MpcError::Truncation { .. }));
            }
        })
        .unwrap();
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        Universe::run(2, |proc| {
            let world = proc.world();
            let me = world.rank();
            let other = 1 - me;
            let send = [me as u8; 32];
            let mut recv = [0u8; 32];
            world
                .sendrecv_bytes(&send, other, &mut recv, other, 4)
                .unwrap();
            assert_eq!(recv, [other as u8; 32]);
        })
        .unwrap();
    }
}
