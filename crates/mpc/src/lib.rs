//! # motor-mpc — the Message Passing Core
//!
//! A from-scratch, layered MPI library mirroring MPICH2's architecture
//! (paper §6): an **MPI layer** (communicators, point-to-point operations,
//! collectives, MPI-2 dynamic process management) over a **CH3-style
//! device** (message queuing, envelope matching, eager/rendezvous
//! protocols, progress engine) over a **channel layer** (framing and data
//! transfer on PAL byte links — in-process shared memory or TCP loopback).
//!
//! The crate is *native*: it has no dependency on the managed runtime and
//! is used directly by the paper's "C++ / MPICH2" baseline. Motor
//! (`motor-core`) embeds the very same core inside the virtual machine and
//! reaches it through the FCall layer, which is the paper's architectural
//! point: one message-passing core, two positions in the stack.
//!
//! ```
//! use motor_mpc::universe::Universe;
//!
//! // Two ranks ping-pong four bytes.
//! Universe::run(2, |proc| {
//!     let world = proc.world();
//!     if world.rank() == 0 {
//!         world.send_slice(&[1i32], 1, 0).unwrap();
//!         let mut buf = [0i32];
//!         world.recv_slice(&mut buf, 1, 0).unwrap();
//!         assert_eq!(buf[0], 2);
//!     } else {
//!         let mut buf = [0i32];
//!         world.recv_slice(&mut buf, 0, 0).unwrap();
//!         world.send_slice(&[buf[0] + 1], 0, 0).unwrap();
//!     }
//! })
//! .unwrap();
//! ```

pub mod channel;
pub mod comm;
pub mod device;
pub mod dtype;
pub mod error;
pub mod group;
pub mod packet;
pub mod progress;
pub mod request;
pub mod source;
pub mod tag;
pub mod universe;

pub use comm::Comm;
pub use device::{Device, DeviceConfig, ANY_TAG};
pub use dtype::{DType, MpcPrim, ReduceOp};
pub use error::{MpcError, MpcResult};
pub use group::Group;
pub use progress::{ProgressConfig, ProgressEngine, ProgressMode, ProgressSet};
pub use request::{Request, Status};
pub use source::Source;
pub use tag::Tag;
pub use universe::{LinkFactory, Proc, Universe};
