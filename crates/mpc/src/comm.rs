//! The MPI layer: communicators, point-to-point operations, collectives.
//!
//! Mirrors the top layer of MPICH2 ("a platform and interconnect generic
//! MPI interface", paper §6) and the MPI-2 object model the Motor bindings
//! are based on. A [`Comm`] owns a *pair* of context ids — one for
//! point-to-point traffic and one for collectives, as MPICH2 allocates —
//! so user messages can never match internal collective traffic.
//!
//! Collectives are implemented over point-to-point: dissemination barrier,
//! binomial-tree broadcast, linear scatter/gather, rank-ordered (and
//! therefore deterministic) reductions, ring allgather and pairwise
//! alltoall.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use motor_obs::{Metric, SpanKind};

use crate::device::Device;
use crate::dtype::{as_bytes, as_bytes_mut, reduce_in_place, DType, MpcPrim, ReduceOp};
use crate::error::{MpcError, MpcResult};
use crate::packet::Envelope;
use crate::request::{Request, Status};
use crate::source::Source;
use crate::tag::Tag;

/// An intra-communicator.
#[derive(Clone)]
pub struct Comm {
    device: Arc<Device>,
    /// Point-to-point context id; `context + 1` is the collective context.
    context: u32,
    /// Communicator rank → global rank.
    group: Arc<Vec<usize>>,
    /// This process's rank within the communicator.
    rank: usize,
    /// Shared context-id allocator (two ids per allocation).
    ctx_alloc: Arc<AtomicU32>,
}

impl Comm {
    /// Assemble a communicator (used by the universe and by `dup`/`split`).
    pub fn assemble(
        device: Arc<Device>,
        context: u32,
        group: Arc<Vec<usize>>,
        rank: usize,
        ctx_alloc: Arc<AtomicU32>,
    ) -> Comm {
        Comm {
            device,
            context,
            group,
            rank,
            ctx_alloc,
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The communicator's point-to-point context id.
    pub fn context(&self) -> u32 {
        self.context
    }

    /// Communicator rank → global rank translation.
    pub fn global_rank(&self, comm_rank: usize) -> MpcResult<usize> {
        self.group
            .get(comm_rank)
            .copied()
            .ok_or(MpcError::InvalidRank(comm_rank as i32))
    }

    /// The underlying device (the FCall layer and baselines reach through
    /// this).
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    fn envelope(&self, tag: i32, collective: bool) -> Envelope {
        Envelope {
            src: self.rank as u32,
            gsrc: self.device.rank() as u32,
            tag,
            context: if collective {
                self.context + 1
            } else {
                self.context
            },
            len: 0,
            sreq: 0,
            flags: 0,
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point: raw (window-stability is the caller's obligation)
    // ------------------------------------------------------------------

    /// Begin a non-blocking send from a raw window.
    ///
    /// # Safety
    /// `(ptr, len)` must remain valid **and stable** (no GC movement, no
    /// free) until the returned request completes — the pinning obligation
    /// the paper discusses (§2.3).
    pub unsafe fn isend_ptr(
        &self,
        ptr: *const u8,
        len: usize,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> MpcResult<Request> {
        let g = self.global_rank(dest)?;
        let tag = tag.into().to_device();
        // SAFETY: forwarded caller contract.
        unsafe {
            self.device
                .isend_raw(g, self.envelope(tag, false), ptr, len, false)
        }
    }

    /// Begin a non-blocking synchronous-mode send (completes only once the
    /// receiver has matched).
    ///
    /// # Safety
    /// As [`Comm::isend_ptr`].
    pub unsafe fn issend_ptr(
        &self,
        ptr: *const u8,
        len: usize,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> MpcResult<Request> {
        let g = self.global_rank(dest)?;
        let tag = tag.into().to_device();
        // SAFETY: forwarded caller contract.
        unsafe {
            self.device
                .isend_raw(g, self.envelope(tag, false), ptr, len, true)
        }
    }

    /// Begin a non-blocking receive into a raw window.
    ///
    /// # Safety
    /// As [`Comm::isend_ptr`], for the destination window.
    pub unsafe fn irecv_ptr(
        &self,
        ptr: *mut u8,
        cap: usize,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> MpcResult<Request> {
        let src = src.into();
        if let Some(r) = src.rank() {
            if r >= self.size() {
                return Err(MpcError::InvalidRank(r as i32));
            }
        }
        // SAFETY: forwarded caller contract.
        unsafe {
            self.device.irecv_raw(
                src.to_device(),
                tag.into().to_device(),
                self.context,
                ptr,
                cap,
            )
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point: safe blocking byte/slice operations
    // ------------------------------------------------------------------

    /// Blocking standard-mode send.
    pub fn send_bytes(&self, buf: &[u8], dest: usize, tag: impl Into<Tag>) -> MpcResult<()> {
        // SAFETY: the borrow of `buf` outlives the wait below.
        let req = unsafe { self.isend_ptr(buf.as_ptr(), buf.len(), dest, tag)? };
        self.wait(&req)?;
        Ok(())
    }

    /// Blocking synchronous-mode send.
    pub fn ssend_bytes(&self, buf: &[u8], dest: usize, tag: impl Into<Tag>) -> MpcResult<()> {
        // SAFETY: as above.
        let req = unsafe { self.issend_ptr(buf.as_ptr(), buf.len(), dest, tag)? };
        self.wait(&req)?;
        Ok(())
    }

    /// Blocking receive; returns the message status. `src` may be
    /// [`Source::Any`]; `tag` may be [`Tag::ANY`].
    pub fn recv_bytes(
        &self,
        buf: &mut [u8],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> MpcResult<Status> {
        // SAFETY: the borrow of `buf` outlives the wait below.
        let req = unsafe { self.irecv_ptr(buf.as_mut_ptr(), buf.len(), src, tag)? };
        let status = self.wait(&req)?;
        if status.truncated {
            return Err(MpcError::Truncation {
                message: status.count,
                buffer: buf.len(),
            });
        }
        Ok(status)
    }

    /// Blocking typed send.
    pub fn send_slice<T: MpcPrim>(
        &self,
        buf: &[T],
        dest: usize,
        tag: impl Into<Tag>,
    ) -> MpcResult<()> {
        self.send_bytes(as_bytes(buf), dest, tag)
    }

    /// Blocking typed synchronous send.
    pub fn ssend_slice<T: MpcPrim>(
        &self,
        buf: &[T],
        dest: usize,
        tag: impl Into<Tag>,
    ) -> MpcResult<()> {
        self.ssend_bytes(as_bytes(buf), dest, tag)
    }

    /// Blocking typed receive.
    pub fn recv_slice<T: MpcPrim>(
        &self,
        buf: &mut [T],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> MpcResult<Status> {
        self.recv_bytes(as_bytes_mut(buf), src, tag)
    }

    /// Combined send+receive (deadlock-free exchange).
    pub fn sendrecv_bytes(
        &self,
        send: &[u8],
        dest: usize,
        recv: &mut [u8],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> MpcResult<Status> {
        let tag = tag.into();
        // SAFETY: both borrows outlive the waits.
        let rreq = unsafe { self.irecv_ptr(recv.as_mut_ptr(), recv.len(), src, tag)? };
        let sreq = unsafe { self.isend_ptr(send.as_ptr(), send.len(), dest, tag)? };
        self.wait(&sreq)?;
        self.wait(&rreq)
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    /// Drive progress until the request completes.
    pub fn wait(&self, req: &Request) -> MpcResult<Status> {
        self.device.wait_with(req, || {})
    }

    /// Drive progress until the request completes, invoking `yield_poll`
    /// every lap (Motor's GC-yield hook).
    pub fn wait_with(&self, req: &Request, yield_poll: impl FnMut()) -> MpcResult<Status> {
        self.device.wait_with(req, yield_poll)
    }

    /// Wait for every request.
    pub fn waitall(&self, reqs: &[Request]) -> MpcResult<Vec<Status>> {
        reqs.iter().map(|r| self.wait(r)).collect()
    }

    /// Non-blocking completion test.
    pub fn test(&self, req: &Request) -> MpcResult<Option<Status>> {
        self.device.test(req)
    }

    /// Blocking probe: status of the next matching message without
    /// receiving it.
    pub fn probe(&self, src: impl Into<Source>, tag: impl Into<Tag>) -> MpcResult<Status> {
        let src = src.into();
        let tag = tag.into().to_device();
        loop {
            if let Some(s) = self.device.iprobe(src.to_device(), tag, self.context)? {
                return Ok(s);
            }
            std::hint::spin_loop();
        }
    }

    /// Non-blocking probe.
    pub fn iprobe(&self, src: impl Into<Source>, tag: impl Into<Tag>) -> MpcResult<Option<Status>> {
        self.device
            .iprobe(src.into().to_device(), tag.into().to_device(), self.context)
    }

    // ------------------------------------------------------------------
    // Collectives (on the collective context)
    // ------------------------------------------------------------------

    fn coll_send(&self, buf: &[u8], dest: usize, tag: i32) -> MpcResult<()> {
        let g = self.global_rank(dest)?;
        // SAFETY: `buf` is borrowed across the wait below.
        let req = unsafe {
            self.device
                .isend_raw(g, self.envelope(tag, true), buf.as_ptr(), buf.len(), false)?
        };
        self.wait(&req)?;
        Ok(())
    }

    fn coll_recv(&self, buf: &mut [u8], src: usize, tag: i32) -> MpcResult<Status> {
        // SAFETY: `buf` is borrowed across the wait below.
        let req = unsafe {
            self.device.irecv_raw(
                src as i32,
                tag,
                self.context + 1,
                buf.as_mut_ptr(),
                buf.len(),
            )?
        };
        self.wait(&req)
    }

    /// Synchronize all ranks (dissemination algorithm, ⌈log₂ n⌉ rounds).
    pub fn barrier(&self) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollBarrier);
        let _span = self.device.metrics().span(SpanKind::Barrier, 0);
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let mut dist = 1usize;
        let mut round = 0i32;
        while dist < n {
            let to = (self.rank + dist) % n;
            let from = (self.rank + n - dist) % n;
            let mut token = [0u8; 1];
            // Exchange zero-meaning tokens; tag encodes the round.
            // SAFETY: `token` lives to the end of the loop body.
            let rreq = unsafe {
                self.device.irecv_raw(
                    from as i32,
                    round,
                    self.context + 1,
                    token.as_mut_ptr(),
                    1,
                )?
            };
            self.coll_send(&[0u8], to, round)?;
            self.wait(&rreq)?;
            dist *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `buf` from `root` to every rank (binomial tree).
    pub fn bcast_bytes(&self, buf: &mut [u8], root: usize) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollBcast);
        let _span = self.device.metrics().span(SpanKind::Bcast, root as u64);
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        if root >= n {
            return Err(MpcError::InvalidRank(root as i32));
        }
        let vrank = (self.rank + n - root) % n; // virtual rank: root is 0
        let tag = 1_000;
        // Receive from parent (clear lowest set bit).
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            self.coll_recv(buf, parent, tag)?;
        }
        // Forward to children (set bits above the lowest set bit).
        let mut mask = 1usize;
        while mask < n {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 {
                let child_v = vrank | mask;
                if child_v < n {
                    let child = (child_v + root) % n;
                    self.coll_send(buf, child, tag)?;
                }
            }
            mask <<= 1;
        }
        Ok(())
    }

    /// Typed broadcast.
    pub fn bcast_slice<T: MpcPrim>(&self, buf: &mut [T], root: usize) -> MpcResult<()> {
        self.bcast_bytes(as_bytes_mut(buf), root)
    }

    /// Scatter equal contiguous chunks of `send` (significant at `root`
    /// only) into every rank's `recv`.
    pub fn scatter_bytes(
        &self,
        send: Option<&[u8]>,
        recv: &mut [u8],
        root: usize,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollScatter);
        let _span = self.device.metrics().span(SpanKind::Scatter, root as u64);
        let n = self.size();
        let chunk = recv.len();
        let tag = 1_001;
        if self.rank == root {
            let send = send.expect("root must supply the send buffer");
            if send.len() != chunk * n {
                return Err(MpcError::Protocol(format!(
                    "scatter send buffer is {} bytes, expected {}",
                    send.len(),
                    chunk * n
                )));
            }
            for r in 0..n {
                let part = &send[r * chunk..(r + 1) * chunk];
                if r == root {
                    recv.copy_from_slice(part);
                } else {
                    self.coll_send(part, r, tag)?;
                }
            }
            Ok(())
        } else {
            self.coll_recv(recv, root, tag)?;
            Ok(())
        }
    }

    /// Gather every rank's `send` into root's `recv` (rank-ordered chunks).
    pub fn gather_bytes(&self, send: &[u8], recv: Option<&mut [u8]>, root: usize) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollGather);
        let _span = self.device.metrics().span(SpanKind::Gather, root as u64);
        let n = self.size();
        let chunk = send.len();
        let tag = 1_002;
        if self.rank == root {
            let recv = recv.expect("root must supply the receive buffer");
            if recv.len() != chunk * n {
                return Err(MpcError::Protocol(format!(
                    "gather recv buffer is {} bytes, expected {}",
                    recv.len(),
                    chunk * n
                )));
            }
            for r in 0..n {
                if r == root {
                    recv[r * chunk..(r + 1) * chunk].copy_from_slice(send);
                } else {
                    self.coll_recv(&mut recv[r * chunk..(r + 1) * chunk], r, tag)?;
                }
            }
            Ok(())
        } else {
            self.coll_send(send, root, tag)
        }
    }

    /// Allgather (ring algorithm): every rank ends with all chunks in rank
    /// order. `recv.len()` must be `send.len() * size`.
    pub fn allgather_bytes(&self, send: &[u8], recv: &mut [u8]) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollAllgather);
        let _span = self.device.metrics().span(SpanKind::Allgather, 0);
        let n = self.size();
        let chunk = send.len();
        if recv.len() != chunk * n {
            return Err(MpcError::Protocol(format!(
                "allgather recv buffer is {} bytes, expected {}",
                recv.len(),
                chunk * n
            )));
        }
        recv[self.rank * chunk..(self.rank + 1) * chunk].copy_from_slice(send);
        if n == 1 {
            return Ok(());
        }
        let right = (self.rank + 1) % n;
        let left = (self.rank + n - 1) % n;
        let tag = 1_003;
        // In step s we forward the chunk that originated at rank - s.
        for s in 0..n - 1 {
            let send_block = (self.rank + n - s) % n;
            let recv_block = (self.rank + n - s - 1) % n;
            let out = recv[send_block * chunk..(send_block + 1) * chunk].to_vec();
            let mut inn = vec![0u8; chunk];
            // Post the receive first to avoid unexpected-queue churn.
            // SAFETY: `inn` lives until the wait below completes.
            let rreq = unsafe {
                self.device.irecv_raw(
                    left as i32,
                    tag + s as i32,
                    self.context + 1,
                    inn.as_mut_ptr(),
                    chunk,
                )?
            };
            self.coll_send(&out, right, tag + s as i32)?;
            self.wait(&rreq)?;
            recv[recv_block * chunk..(recv_block + 1) * chunk].copy_from_slice(&inn);
        }
        Ok(())
    }

    /// Reduce raw element buffers of `dtype` to `root` (rank-ordered, and
    /// therefore deterministic for floating point). `recv` is significant
    /// at root only.
    pub fn reduce_bytes(
        &self,
        send: &[u8],
        recv: Option<&mut [u8]>,
        dtype: DType,
        op: ReduceOp,
        root: usize,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollReduce);
        let _span = self.device.metrics().span(SpanKind::Reduce, root as u64);
        let n = self.size();
        let tag = 1_004;
        if self.rank == root {
            let recv = recv.expect("root must supply the receive buffer");
            assert_eq!(recv.len(), send.len(), "reduce buffer length mismatch");
            // Accumulate in rank order 0..n for determinism.
            let mut tmp = vec![0u8; send.len()];
            for r in 0..n {
                if r == root {
                    if r == 0 {
                        recv.copy_from_slice(send);
                    } else {
                        reduce_in_place(op, dtype, recv, send);
                    }
                } else {
                    self.coll_recv(&mut tmp, r, tag)?;
                    if r == 0 {
                        recv.copy_from_slice(&tmp);
                    } else {
                        reduce_in_place(op, dtype, recv, &tmp);
                    }
                }
            }
            Ok(())
        } else {
            self.coll_send(send, root, tag)
        }
    }

    /// Typed reduction to `root`.
    pub fn reduce_slice<T: MpcPrim>(
        &self,
        send: &[T],
        recv: Option<&mut [T]>,
        op: ReduceOp,
        root: usize,
    ) -> MpcResult<()> {
        self.reduce_bytes(as_bytes(send), recv.map(as_bytes_mut), T::DTYPE, op, root)
    }

    /// Allreduce over raw element buffers: reduce to rank 0, then
    /// broadcast.
    pub fn allreduce_bytes(
        &self,
        send: &[u8],
        recv: &mut [u8],
        dtype: DType,
        op: ReduceOp,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollAllreduce);
        let _span = self.device.metrics().span(SpanKind::Allreduce, 0);
        if self.rank == 0 {
            // Sidestep the aliasing of send/recv at root.
            let mut acc = send.to_vec();
            self.reduce_bytes(send, Some(&mut acc[..]), dtype, op, 0)?;
            recv.copy_from_slice(&acc);
        } else {
            self.reduce_bytes(send, None, dtype, op, 0)?;
        }
        self.bcast_bytes(recv, 0)
    }

    /// Typed allreduce.
    pub fn allreduce_slice<T: MpcPrim>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: ReduceOp,
    ) -> MpcResult<()> {
        self.allreduce_bytes(as_bytes(send), as_bytes_mut(recv), T::DTYPE, op)
    }

    /// All-to-all personalized exchange of equal chunks. Both buffers hold
    /// `size` chunks of `chunk` bytes each.
    pub fn alltoall_bytes(&self, send: &[u8], recv: &mut [u8], chunk: usize) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollAlltoall);
        let _span = self.device.metrics().span(SpanKind::Alltoall, 0);
        let n = self.size();
        if send.len() != chunk * n || recv.len() != chunk * n {
            return Err(MpcError::Protocol("alltoall buffer size mismatch".into()));
        }
        let tag = 1_100;
        // Post all receives, then all sends, then wait.
        let mut rreqs = Vec::with_capacity(n);
        for r in 0..n {
            if r == self.rank {
                recv[r * chunk..(r + 1) * chunk].copy_from_slice(&send[r * chunk..(r + 1) * chunk]);
                continue;
            }
            let slot = &mut recv[r * chunk..(r + 1) * chunk];
            // SAFETY: `recv` is borrowed until every request below is waited.
            let req = unsafe {
                self.device
                    .irecv_raw(r as i32, tag, self.context + 1, slot.as_mut_ptr(), chunk)?
            };
            rreqs.push(req);
        }
        for r in 0..n {
            if r == self.rank {
                continue;
            }
            let g = self.global_rank(r)?;
            let part = &send[r * chunk..(r + 1) * chunk];
            // SAFETY: `send` is borrowed across the wait below.
            let req = unsafe {
                self.device.isend_raw(
                    g,
                    self.envelope(tag, true),
                    part.as_ptr(),
                    part.len(),
                    false,
                )?
            };
            self.wait(&req)?;
        }
        for r in &rreqs {
            self.wait(r)?;
        }
        Ok(())
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank r receives the
    /// reduction of ranks `0..=r` in rank order.
    pub fn scan_bytes(
        &self,
        send: &[u8],
        recv: &mut [u8],
        dtype: DType,
        op: ReduceOp,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollScan);
        let _span = self.device.metrics().span(SpanKind::Scan, 0);
        assert_eq!(send.len(), recv.len(), "scan buffer length mismatch");
        let tag = 1_005;
        // Linear chain: receive the prefix from the left neighbour, fold in
        // our contribution, pass the running prefix right.
        if self.rank == 0 {
            recv.copy_from_slice(send);
        } else {
            self.coll_recv(recv, self.rank - 1, tag)?;
            reduce_in_place(op, dtype, recv, send);
        }
        if self.rank + 1 < self.size() {
            self.coll_send(recv, self.rank + 1, tag)?;
        }
        Ok(())
    }

    /// Typed inclusive scan.
    pub fn scan_slice<T: MpcPrim>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: ReduceOp,
    ) -> MpcResult<()> {
        self.scan_bytes(as_bytes(send), as_bytes_mut(recv), T::DTYPE, op)
    }

    /// Variable-count gather (`MPI_Gatherv`): rank r contributes
    /// `send.len()` bytes; the root supplies per-rank `counts` and receives
    /// the concatenation in rank order.
    pub fn gatherv_bytes(
        &self,
        send: &[u8],
        recv: Option<(&mut [u8], &[usize])>,
        root: usize,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollGatherv);
        let _span = self.device.metrics().span(SpanKind::Gather, root as u64);
        let tag = 1_006;
        if self.rank == root {
            let (recv, counts) = recv.expect("root must supply buffer and counts");
            if counts.len() != self.size() || counts.iter().sum::<usize>() != recv.len() {
                return Err(MpcError::Protocol("gatherv counts mismatch".into()));
            }
            let mut off = 0;
            for (r, &c) in counts.iter().enumerate() {
                if r == root {
                    if c != send.len() {
                        return Err(MpcError::Protocol("root count mismatch".into()));
                    }
                    recv[off..off + c].copy_from_slice(send);
                } else {
                    self.coll_recv(&mut recv[off..off + c], r, tag)?;
                }
                off += c;
            }
            Ok(())
        } else {
            self.coll_send(send, root, tag)
        }
    }

    /// Variable-count scatter (`MPI_Scatterv`): the root supplies the
    /// buffer and per-rank `counts`; rank r receives its chunk into `recv`
    /// (whose length must equal its count).
    pub fn scatterv_bytes(
        &self,
        send: Option<(&[u8], &[usize])>,
        recv: &mut [u8],
        root: usize,
    ) -> MpcResult<()> {
        self.device.metrics().bump(Metric::CollScatterv);
        let _span = self.device.metrics().span(SpanKind::Scatter, root as u64);
        let tag = 1_007;
        if self.rank == root {
            let (send, counts) = send.expect("root must supply buffer and counts");
            if counts.len() != self.size() || counts.iter().sum::<usize>() != send.len() {
                return Err(MpcError::Protocol("scatterv counts mismatch".into()));
            }
            let mut off = 0;
            for (r, &c) in counts.iter().enumerate() {
                if r == root {
                    if c != recv.len() {
                        return Err(MpcError::Protocol("root count mismatch".into()));
                    }
                    recv.copy_from_slice(&send[off..off + c]);
                } else if c > 0 {
                    // Zero-length chunks involve no message (receivers
                    // skip their receive symmetrically).
                    self.coll_send(&send[off..off + c], r, tag)?;
                }
                off += c;
            }
            Ok(())
        } else {
            if recv.is_empty() {
                // Zero-length chunk: no message was sent.
                return Ok(());
            }
            self.coll_recv(recv, root, tag)?;
            Ok(())
        }
    }

    /// Wait until *any* of the requests completes; returns its index and
    /// status (`MPI_Waitany`).
    pub fn waitany(&self, reqs: &[Request]) -> MpcResult<(usize, Status)> {
        assert!(!reqs.is_empty(), "waitany on an empty request list");
        let mut backoff = motor_pal::Backoff::with_config(self.device.wait_backoff());
        loop {
            for (i, r) in reqs.iter().enumerate() {
                if r.is_complete() {
                    return Ok((i, r.status()));
                }
                if let Some(peer) = r.failed_peer() {
                    return Err(MpcError::PeerClosed(peer));
                }
            }
            if self.device.progress()? {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Duplicate the communicator with a fresh context (collective).
    pub fn dup(&self) -> MpcResult<Comm> {
        let mut ctx = [0u32; 1];
        if self.rank == 0 {
            ctx[0] = self.ctx_alloc.fetch_add(2, Ordering::Relaxed);
        }
        self.bcast_slice(&mut ctx, 0)?;
        Ok(Comm {
            device: Arc::clone(&self.device),
            context: ctx[0],
            group: Arc::clone(&self.group),
            rank: self.rank,
            ctx_alloc: Arc::clone(&self.ctx_alloc),
        })
    }

    /// Split into disjoint sub-communicators by `color`; ranks within each
    /// color are ordered by `key` (ties by old rank). Collective.
    pub fn split(&self, color: u32, key: i32) -> MpcResult<Comm> {
        let n = self.size();
        // Allgather (color, key) pairs.
        let mine = [color as i32, key];
        let mut all = vec![0i32; 2 * n];
        self.allgather_bytes(as_bytes(&mine), as_bytes_mut(&mut all[..]))?;
        // Deterministic group construction on every rank.
        let colors: Vec<u32> = all.chunks(2).map(|c| c[0] as u32).collect();
        let mut uniq = colors.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let my_color_index = uniq.iter().position(|&c| c == color).unwrap();
        // Rank 0 allocates a contiguous block of context pairs.
        let mut base = [0u32; 1];
        if self.rank == 0 {
            base[0] = self
                .ctx_alloc
                .fetch_add(2 * uniq.len() as u32, Ordering::Relaxed);
        }
        self.bcast_slice(&mut base, 0)?;
        // Members of my color, sorted by (key, old rank).
        let mut members: Vec<(i32, usize)> = (0..n)
            .filter(|&r| colors[r] == color)
            .map(|r| (all[2 * r + 1], r))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|&(_, old)| self.group[old]).collect();
        let my_new_rank = members
            .iter()
            .position(|&(_, old)| old == self.rank)
            .unwrap();
        Ok(Comm {
            device: Arc::clone(&self.device),
            context: base[0] + 2 * my_color_index as u32,
            group: Arc::new(group),
            rank: my_new_rank,
            ctx_alloc: Arc::clone(&self.ctx_alloc),
        })
    }

    /// The shared context allocator (universe wiring / intercomms).
    pub fn ctx_alloc(&self) -> &Arc<AtomicU32> {
        &self.ctx_alloc
    }

    /// The communicator's group (comm rank → global rank).
    pub fn group(&self) -> &Arc<Vec<usize>> {
        &self.group
    }
}
