//! Message Passing Core error type.

use std::fmt;

/// Errors surfaced by the message passing library.
#[derive(Debug)]
pub enum MpcError {
    /// The destination or source rank does not exist in the communicator.
    InvalidRank(i32),
    /// A receive buffer was smaller than the matched message.
    Truncation {
        /// Bytes the message carries.
        message: usize,
        /// Bytes the posted buffer can hold.
        buffer: usize,
    },
    /// The transport link failed.
    Transport(motor_pal::PalError),
    /// The link to a peer (global rank) closed while operations toward it
    /// were in flight; those operations will never complete.
    PeerClosed(usize),
    /// The communicator/universe is shutting down.
    Shutdown,
    /// Malformed packet on the wire (corruption or protocol bug).
    Protocol(String),
}

/// Result alias for MPC operations.
pub type MpcResult<T> = Result<T, MpcError>;

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpcError::Truncation { message, buffer } => {
                write!(
                    f,
                    "message of {message} bytes truncated to {buffer}-byte buffer"
                )
            }
            MpcError::Transport(e) => write!(f, "transport failure: {e}"),
            MpcError::PeerClosed(p) => {
                write!(f, "link to peer rank {p} closed with operations in flight")
            }
            MpcError::Shutdown => write!(f, "communicator shut down"),
            MpcError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for MpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<motor_pal::PalError> for MpcError {
    fn from(e: motor_pal::PalError) -> Self {
        MpcError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MpcError::InvalidRank(9).to_string().contains("9"));
        let t = MpcError::Truncation {
            message: 100,
            buffer: 10,
        };
        assert!(t.to_string().contains("100") && t.to_string().contains("10"));
        assert!(MpcError::Shutdown.to_string().contains("shut down"));
        assert!(MpcError::PeerClosed(3).to_string().contains("rank 3"));
    }

    #[test]
    fn pal_error_converts() {
        let e: MpcError = motor_pal::PalError::Disconnected.into();
        assert!(matches!(e, MpcError::Transport(_)));
    }
}
