//! Request objects for non-blocking operations.
//!
//! A [`Request`] is the handle returned by `isend`/`irecv`. Its completion
//! flag is the state Motor's conditional pin requests interrogate from the
//! collector's mark phase (paper §4.3): "the garbage collector checks the
//! status of the underlying non-blocking transport operations".

use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Completion metadata of a finished receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Status {
    /// Communicator rank of the sender.
    pub source: u32,
    /// Message tag.
    pub tag: i32,
    /// Bytes actually received.
    pub count: usize,
    /// The message was longer than the posted buffer and was truncated
    /// (the MPI_ERR_TRUNCATE condition).
    pub truncated: bool,
}

/// Shared state of one in-flight operation.
#[derive(Debug)]
pub struct RequestState {
    id: u64,
    complete: AtomicBool,
    src: AtomicU32,
    tag: AtomicI32,
    count: AtomicU64,
    truncated: AtomicBool,
    /// Global rank of a peer whose link died while this op was in flight
    /// (-1 = none). A failed request never completes; `wait`/`test` turn
    /// this marker into `MpcError::PeerClosed` instead of spinning forever.
    failed_peer: AtomicI32,
}

impl RequestState {
    /// Create an incomplete request with the given device-unique id.
    pub fn new(id: u64) -> Arc<RequestState> {
        Arc::new(RequestState {
            id,
            complete: AtomicBool::new(false),
            src: AtomicU32::new(0),
            tag: AtomicI32::new(0),
            count: AtomicU64::new(0),
            truncated: AtomicBool::new(false),
            failed_peer: AtomicI32::new(-1),
        })
    }

    /// Device-unique request id (used in wire correlation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the operation has completed (buffer reusable).
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Whether the transport is still using the buffer — the predicate a
    /// conditional pin evaluates.
    #[inline]
    pub fn in_flight(&self) -> bool {
        !self.is_complete()
    }

    /// Mark complete with receive metadata.
    pub fn complete_with(&self, source: u32, tag: i32, count: usize) {
        self.src.store(source, Ordering::Relaxed);
        self.tag.store(tag, Ordering::Relaxed);
        self.count.store(count as u64, Ordering::Relaxed);
        self.complete.store(true, Ordering::Release);
    }

    /// Flag the MPI_ERR_TRUNCATE condition (message longer than buffer).
    pub fn mark_truncated(&self) {
        self.truncated.store(true, Ordering::Relaxed);
    }

    /// Mark complete (send side; no metadata).
    pub fn complete(&self) {
        self.complete.store(true, Ordering::Release);
    }

    /// Mark the operation as permanently failed because the link to
    /// `peer` (global rank) closed. Deliberately does NOT set `complete`:
    /// the buffer was never safely transferred, and `wait`/`test` report
    /// the failure as an error rather than a success.
    pub fn fail(&self, peer: usize) {
        self.failed_peer.store(peer as i32, Ordering::Release);
    }

    /// The peer whose link failure doomed this operation, if any.
    pub fn failed_peer(&self) -> Option<usize> {
        let p = self.failed_peer.load(Ordering::Acquire);
        (p >= 0).then_some(p as usize)
    }

    /// Completion status (valid once complete).
    pub fn status(&self) -> Status {
        Status {
            source: self.src.load(Ordering::Relaxed),
            tag: self.tag.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed) as usize,
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }
}

/// A non-blocking operation handle.
pub type Request = Arc<RequestState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let r = RequestState::new(7);
        assert_eq!(r.id(), 7);
        assert!(r.in_flight());
        assert!(!r.is_complete());
        r.complete_with(2, 9, 128);
        assert!(r.is_complete());
        assert!(!r.in_flight());
        let s = r.status();
        assert_eq!(
            s,
            Status {
                source: 2,
                tag: 9,
                count: 128,
                truncated: false
            }
        );
    }

    #[test]
    fn fail_marks_peer_without_completing() {
        let r = RequestState::new(3);
        assert_eq!(r.failed_peer(), None);
        r.fail(2);
        assert_eq!(r.failed_peer(), Some(2));
        assert!(!r.is_complete());
    }

    #[test]
    fn completion_visible_across_threads() {
        let r = RequestState::new(1);
        let r2 = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            r2.complete();
        });
        t.join().unwrap();
        assert!(r.is_complete());
    }
}
