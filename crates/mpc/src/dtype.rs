//! MPI datatypes and reduction operators.
//!
//! The native Message Passing Core is independent of the managed runtime,
//! so it carries its own primitive datatype enumeration (the analog of
//! `MPI_Datatype` for contiguous base types) and the predefined reduction
//! operators of MPI-1. Motor's managed bindings drop the datatype parameter
//! entirely ("Object type is easy to determine and therefore the data type
//! parameter has been removed", paper §4.2.1); the native layer keeps it,
//! exactly as MPICH2 does.

/// Primitive wire datatypes (contiguous base types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    U8,
    I8,
    I16,
    U16,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            DType::U8 | DType::I8 => 1,
            DType::I16 | DType::U16 => 2,
            DType::I32 | DType::U32 | DType::F32 => 4,
            DType::I64 | DType::U64 | DType::F64 => 8,
        }
    }

    /// All datatypes (for exhaustive tests).
    pub const ALL: [DType; 10] = [
        DType::U8,
        DType::I8,
        DType::I16,
        DType::U16,
        DType::I32,
        DType::U32,
        DType::I64,
        DType::U64,
        DType::F32,
        DType::F64,
    ];
}

/// Rust-type ↔ [`DType`] mapping for the typed convenience API.
pub trait MpcPrim: Copy + Send + 'static {
    /// The wire datatype of this Rust type.
    const DTYPE: DType;
}

macro_rules! impl_mpc_prim {
    ($($t:ty => $d:ident),* $(,)?) => {
        $(impl MpcPrim for $t { const DTYPE: DType = DType::$d; })*
    };
}

impl_mpc_prim! {
    u8 => U8, i8 => I8, i16 => I16, u16 => U16,
    i32 => I32, u32 => U32, i64 => I64, u64 => U64,
    f32 => F32, f64 => F64,
}

/// Predefined reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Bitwise and (integer types only).
    Band,
    /// Bitwise or (integer types only).
    Bor,
}

macro_rules! reduce_arm {
    ($op:expr, $t:ty, $acc:expr, $inp:expr, $int:expr) => {{
        let n = $acc.len() / std::mem::size_of::<$t>();
        // SAFETY: caller guarantees both buffers hold `n` elements of `$t`.
        let a = unsafe { std::slice::from_raw_parts_mut($acc.as_mut_ptr() as *mut $t, n) };
        let b = unsafe { std::slice::from_raw_parts($inp.as_ptr() as *const $t, n) };
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = apply_one::<$t>($op, *x, y, $int);
        }
    }};
}

trait Reducible: Copy + PartialOrd {
    fn add(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn band(self, o: Self) -> Self;
    fn bor(self, o: Self) -> Self;
}

macro_rules! impl_reducible_int {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn add(self, o: Self) -> Self { self.wrapping_add(o) }
            fn mul(self, o: Self) -> Self { self.wrapping_mul(o) }
            fn band(self, o: Self) -> Self { self & o }
            fn bor(self, o: Self) -> Self { self | o }
        }
    )*};
}
macro_rules! impl_reducible_float {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn add(self, o: Self) -> Self { self + o }
            fn mul(self, o: Self) -> Self { self * o }
            fn band(self, _o: Self) -> Self { unreachable!("bitwise op on float") }
            fn bor(self, _o: Self) -> Self { unreachable!("bitwise op on float") }
        }
    )*};
}
impl_reducible_int!(u8, i8, i16, u16, i32, u32, i64, u64);
impl_reducible_float!(f32, f64);

fn apply_one<T: Reducible>(op: ReduceOp, a: T, b: T, is_int: bool) -> T {
    match op {
        ReduceOp::Sum => a.add(b),
        ReduceOp::Prod => a.mul(b),
        ReduceOp::Min => {
            if b < a {
                b
            } else {
                a
            }
        }
        ReduceOp::Max => {
            if b > a {
                b
            } else {
                a
            }
        }
        ReduceOp::Band => {
            assert!(is_int, "bitwise reduction requires an integer datatype");
            a.band(b)
        }
        ReduceOp::Bor => {
            assert!(is_int, "bitwise reduction requires an integer datatype");
            a.bor(b)
        }
    }
}

/// Reduce `input` into `acc` elementwise: `acc[i] = op(acc[i], input[i])`.
/// Both buffers are raw bytes holding elements of `dtype`.
pub fn reduce_in_place(op: ReduceOp, dtype: DType, acc: &mut [u8], input: &[u8]) {
    assert_eq!(acc.len(), input.len(), "reduction buffer length mismatch");
    assert_eq!(
        acc.len() % dtype.size(),
        0,
        "buffer not a whole number of elements"
    );
    match dtype {
        DType::U8 => reduce_arm!(op, u8, acc, input, true),
        DType::I8 => reduce_arm!(op, i8, acc, input, true),
        DType::I16 => reduce_arm!(op, i16, acc, input, true),
        DType::U16 => reduce_arm!(op, u16, acc, input, true),
        DType::I32 => reduce_arm!(op, i32, acc, input, true),
        DType::U32 => reduce_arm!(op, u32, acc, input, true),
        DType::I64 => reduce_arm!(op, i64, acc, input, true),
        DType::U64 => reduce_arm!(op, u64, acc, input, true),
        DType::F32 => reduce_arm!(op, f32, acc, input, false),
        DType::F64 => reduce_arm!(op, f64, acc, input, false),
    }
}

/// View a typed slice as raw bytes.
pub fn as_bytes<T: MpcPrim>(s: &[T]) -> &[u8] {
    // SAFETY: MpcPrim types are plain-old-data.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

/// View a typed mutable slice as raw bytes.
pub fn as_bytes_mut<T: MpcPrim>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: MpcPrim types are plain-old-data; all bit patterns valid.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut u8, std::mem::size_of_val(s)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for d in DType::ALL {
            assert!(matches!(d.size(), 1 | 2 | 4 | 8));
        }
        assert_eq!(<f64 as MpcPrim>::DTYPE.size(), 8);
    }

    #[test]
    fn sum_reduction_i32() {
        let mut acc = vec![1i32, 2, 3, 4];
        let inp = vec![10i32, 20, 30, 40];
        reduce_in_place(
            ReduceOp::Sum,
            DType::I32,
            as_bytes_mut(&mut acc),
            as_bytes(&inp),
        );
        assert_eq!(acc, vec![11, 22, 33, 44]);
    }

    #[test]
    fn min_max_f64() {
        let mut acc = vec![1.0f64, 9.0];
        let inp = vec![5.0f64, 2.0];
        let mut acc2 = acc.clone();
        reduce_in_place(
            ReduceOp::Min,
            DType::F64,
            as_bytes_mut(&mut acc),
            as_bytes(&inp),
        );
        assert_eq!(acc, vec![1.0, 2.0]);
        reduce_in_place(
            ReduceOp::Max,
            DType::F64,
            as_bytes_mut(&mut acc2),
            as_bytes(&inp),
        );
        assert_eq!(acc2, vec![5.0, 9.0]);
    }

    #[test]
    fn prod_wraps_on_integers() {
        let mut acc = vec![200u8];
        let inp = vec![2u8];
        reduce_in_place(ReduceOp::Prod, DType::U8, &mut acc, &inp);
        assert_eq!(acc, vec![144], "wrapping multiply");
    }

    #[test]
    fn bitwise_ops() {
        let mut acc = vec![0b1100u8];
        reduce_in_place(ReduceOp::Band, DType::U8, &mut acc, &[0b1010u8]);
        assert_eq!(acc, vec![0b1000]);
        let mut acc = vec![0b1100u8];
        reduce_in_place(ReduceOp::Bor, DType::U8, &mut acc, &[0b1010u8]);
        assert_eq!(acc, vec![0b1110]);
    }

    #[test]
    #[should_panic(expected = "integer datatype")]
    fn bitwise_on_float_refused() {
        let mut acc = vec![0u8; 8];
        let inp = vec![0u8; 8];
        reduce_in_place(ReduceOp::Band, DType::F64, &mut acc, &inp);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_refused() {
        let mut acc = vec![0u8; 4];
        reduce_in_place(ReduceOp::Sum, DType::U8, &mut acc, &[0u8; 8]);
    }
}
