//! The CH3-style device: matching, eager/rendezvous protocols, progress.
//!
//! Paper §6: MPICH2's "Abstract Device Interface (ADI), or device, layer
//! ... defines operations such as message queuing, packetizing, handling
//! heterogeneous communication and data transfer." This module is that
//! layer: it owns the posted-receive queue, the unexpected-message queue,
//! the envelope matcher (source/tag/context with wildcards, preserving
//! MPI's non-overtaking order), the eager/rendezvous protocol state
//! machines and the progress engine that pumps every link.
//!
//! The device works in *raw buffer windows* (`*mut u8` + length): callers
//! above — the native MPI layer, Motor's FCall layer, the wrapper
//! baselines — are responsible for the stability of those windows for the
//! lifetime of the operation. That contract is precisely what the paper's
//! pinning discussion is about.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use motor_obs::trace::{rndv_ctl, MSG_RNDV_FLAG};
use motor_obs::{EventKind, Hist, Metric, MetricsRegistry, SpanKind};
use parking_lot::Mutex;

use crate::channel::{LinkState, PacketSink, RndvDest};
use crate::error::{MpcError, MpcResult};
use crate::packet::{self, env_flags, Envelope};
use crate::request::{Request, RequestState, Status};

/// Wildcard source rank (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Device tuning parameters.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Messages up to this many bytes use the eager protocol; larger ones
    /// rendezvous (MPICH2's `MPIDI_CH3_EAGER_MAX_MSG_SIZE` analog).
    pub eager_threshold: usize,
    /// Capacity of the metrics event-trace ring (overwrite-on-wrap; see
    /// [`MetricsRegistry::with_event_capacity`]).
    pub event_capacity: usize,
    /// Shared time epoch for event timestamps. Ranks in one address space
    /// should share an epoch so their traces merge without calibration;
    /// `None` gives the registry a private epoch.
    pub epoch: Option<std::time::Instant>,
    /// Backoff ladder used by `wait` loops (spin → yield → sleep).
    /// Simulation pins this to [`motor_pal::BackoffConfig::no_sleep`] so
    /// waits never couple virtual time to the host scheduler.
    pub wait_backoff: motor_pal::BackoffConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            eager_threshold: 64 * 1024,
            event_capacity: motor_obs::DEFAULT_EVENT_CAPACITY,
            epoch: None,
            wait_backoff: motor_pal::BackoffConfig::default_ladder(),
        }
    }
}

/// A posted (pending) receive.
struct PostedRecv {
    src: i32,
    tag: i32,
    context: u32,
    ptr: usize,
    cap: usize,
    req: Request,
}

/// A message that arrived before its receive was posted.
enum Unexpected {
    /// Complete eager payload (buffered copy).
    Eager { env: Envelope, data: Vec<u8> },
    /// A rendezvous announcement; data still on the sender.
    Rts { env: Envelope },
}

impl Unexpected {
    fn envelope(&self) -> &Envelope {
        match self {
            Unexpected::Eager { env, .. } | Unexpected::Rts { env } => env,
        }
    }
}

/// A send awaiting CTS (rendezvous) or SyncAck (synchronous eager).
struct PendingSend {
    dst_global: usize,
    ptr: usize,
    len: usize,
    req: Request,
}

/// A matched rendezvous receive being streamed.
struct ActiveRecv {
    ptr: usize,
    cap: usize,
    env: Envelope,
    req: Request,
}

/// Frames generated while handling inbound packets (sent after the pump).
enum Deferred {
    Frame {
        dst: usize,
        bytes: Vec<u8>,
    },
    RawWindow {
        dst: usize,
        header: Vec<u8>,
        ptr: usize,
        len: usize,
        done: Request,
    },
}

#[derive(Default)]
struct DeviceState {
    links: Vec<Option<LinkState>>,
    /// Peers whose link died (index = global rank). Distinguishes "never
    /// wired" (`InvalidRank`) from "wired, then closed" (`PeerClosed`).
    dead: Vec<bool>,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    pending_sends: HashMap<u64, PendingSend>,
    active_recvs: HashMap<u64, ActiveRecv>,
}

impl DeviceState {
    fn is_dead(&self, peer: usize) -> bool {
        self.dead.get(peer).copied().unwrap_or(false)
    }
}

/// One process's message-passing device.
pub struct Device {
    rank: usize,
    state: Mutex<DeviceState>,
    next_req: AtomicU64,
    config: DeviceConfig,
    metrics: Arc<MetricsRegistry>,
}

fn envelope_matches(env: &Envelope, src: i32, tag: i32, context: u32) -> bool {
    env.context == context
        && (src == ANY_SOURCE || env.src == src as u32)
        && (tag == ANY_TAG || env.tag == tag)
}

impl Device {
    /// Create a device for global rank `rank` with no links.
    pub fn new(rank: usize, config: DeviceConfig) -> Arc<Device> {
        let metrics = Arc::new(MetricsRegistry::with_epoch(
            config.epoch.unwrap_or_else(std::time::Instant::now),
            config.event_capacity,
        ));
        Arc::new(Device {
            rank,
            state: Mutex::new(DeviceState::default()),
            next_req: AtomicU64::new(1),
            config,
            metrics,
        })
    }

    /// This device's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The per-rank metrics registry every transport layer reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The eager/rendezvous switchover point.
    pub fn eager_threshold(&self) -> usize {
        self.config.eager_threshold
    }

    /// The backoff ladder configured for wait loops.
    pub fn wait_backoff(&self) -> motor_pal::BackoffConfig {
        self.config.wait_backoff
    }

    /// Install the link to `peer` (universe wiring).
    pub fn set_link(&self, peer: usize, mut link: LinkState) {
        link.attach_metrics(Arc::clone(&self.metrics));
        link.set_peer(peer);
        let mut st = self.state.lock();
        if st.links.len() <= peer {
            st.links.resize_with(peer + 1, || None);
        }
        st.links[peer] = Some(link);
    }

    /// Number of link slots (== known universe size).
    pub fn link_count(&self) -> usize {
        self.state.lock().links.len()
    }

    fn new_request(&self) -> Request {
        RequestState::new(self.next_req.fetch_add(1, Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Start a send. `env` must carry this sender's comm rank, global rank,
    /// tag, context and `len`.
    ///
    /// Eager messages are copied into the frame immediately (the request
    /// completes as soon as that copy is queued — buffered semantics, as in
    /// MPICH2's eager path). Rendezvous messages keep the raw window and
    /// stream it zero-copy after CTS.
    ///
    /// # Safety
    /// The window `(ptr, len)` must stay valid **and stable** (no GC
    /// movement, no free) until the returned request completes — the
    /// pinning obligation of paper §2.3.
    pub unsafe fn isend_raw(
        &self,
        dst_global: usize,
        mut env: Envelope,
        ptr: *const u8,
        len: usize,
        synchronous: bool,
    ) -> MpcResult<Request> {
        let req = self.new_request();
        env.len = len as u64;
        env.sreq = req.id();
        if synchronous {
            env.flags |= env_flags::SYNC;
        }
        let use_eager = len <= self.config.eager_threshold;
        // SAFETY: caller guarantees the window for the operation lifetime;
        // for the eager path we only borrow it for the copy below.
        let data = unsafe { std::slice::from_raw_parts(ptr, len) };

        if dst_global == self.rank {
            self.metrics.event3(
                EventKind::MsgSend,
                dst_global as u64,
                env.tag as i64 as u64,
                len as u64,
            );
            self.send_to_self(env, ptr, len, &req);
            return Ok(req);
        }
        // Stamp the send initiation for cross-rank edge matching; the high
        // bit of the byte count marks the rendezvous path.
        self.metrics.event3(
            EventKind::MsgSend,
            dst_global as u64,
            env.tag as i64 as u64,
            len as u64 | if use_eager { 0 } else { MSG_RNDV_FLAG },
        );

        let mut st = self.state.lock();
        if st.is_dead(dst_global) {
            return Err(MpcError::PeerClosed(dst_global));
        }
        {
            let link = match st.links.get_mut(dst_global) {
                Some(Some(link)) => link,
                _ => return Err(MpcError::InvalidRank(dst_global as i32)),
            };
            if use_eager {
                link.queue_bytes(packet::encode_eager(&env, data));
                self.metrics.bump(Metric::SendsEager);
                if synchronous {
                    self.metrics.bump(Metric::SendsSync);
                }
                self.metrics.record(Hist::EagerSendBytes, len as u64);
                if !synchronous {
                    // Buffer handed off; MPI send-completion semantics met.
                    req.complete();
                }
            } else {
                link.queue_bytes(packet::encode_rts(&env));
                self.metrics.bump(Metric::SendsRndv);
                self.metrics.record(Hist::RndvSendBytes, len as u64);
                self.metrics.event3(
                    EventKind::RndvRts,
                    env.sreq,
                    len as u64,
                    rndv_ctl(dst_global, true),
                );
            }
        }
        // Rendezvous sends await CTS; synchronous eager sends await SyncAck.
        if !use_eager || synchronous {
            st.pending_sends.insert(
                env.sreq,
                PendingSend {
                    dst_global,
                    ptr: ptr as usize,
                    len,
                    req: Arc::clone(&req),
                },
            );
        }
        drop(st);
        self.progress()?;
        Ok(req)
    }

    /// Self-send: deliver without touching any link.
    fn send_to_self(&self, env: Envelope, ptr: *const u8, len: usize, req: &Request) {
        self.metrics.bump(Metric::SendsSelf);
        let mut st = self.state.lock();
        // Try to match a posted receive directly.
        let pos = st
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(st.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = st.posted.remove(pos).unwrap();
            let n = len.min(p.cap);
            // SAFETY: both windows are caller-guaranteed; self-send means
            // sender and receiver windows belong to this process.
            unsafe {
                std::ptr::copy_nonoverlapping(ptr, p.ptr as *mut u8, n);
            }
            if len > p.cap {
                p.req.mark_truncated();
            }
            self.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            p.req.complete_with(env.src, env.tag, n);
            req.complete();
        } else {
            // Buffer a copy, as the eager path would.
            // SAFETY: window valid per caller contract.
            let data = unsafe { std::slice::from_raw_parts(ptr, len) }.to_vec();
            st.unexpected.push_back(Unexpected::Eager { env, data });
            self.metrics
                .record_max(Metric::UnexpectedQueuePeak, st.unexpected.len() as u64);
            req.complete();
        }
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Post a receive into the raw window `(ptr, cap)`.
    ///
    /// # Safety
    /// The window must stay valid **and stable** until the returned
    /// request completes (see [`Device::isend_raw`]).
    pub unsafe fn irecv_raw(
        &self,
        src: i32,
        tag: i32,
        context: u32,
        ptr: *mut u8,
        cap: usize,
    ) -> MpcResult<Request> {
        let req = self.new_request();
        let mut st = self.state.lock();
        // Unexpected queue first, preserving arrival order (non-overtaking).
        let pos = st
            .unexpected
            .iter()
            .position(|u| envelope_matches(u.envelope(), src, tag, context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(st.unexpected.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            self.metrics.bump(Metric::RecvsUnexpected);
            match st.unexpected.remove(pos).unwrap() {
                Unexpected::Eager { env, data } => {
                    let n = data.len().min(cap);
                    // SAFETY: caller-guaranteed window.
                    unsafe {
                        std::ptr::copy_nonoverlapping(data.as_ptr(), ptr, n);
                    }
                    if data.len() > cap {
                        req.mark_truncated();
                    }
                    if env.is_sync() && env.gsrc as usize != self.rank {
                        Self::queue_frame(
                            &mut st,
                            env.gsrc as usize,
                            packet::encode_sync_ack(env.sreq),
                        )?;
                    }
                    self.metrics.event3(
                        EventKind::MsgRecv,
                        env.gsrc as u64,
                        env.tag as i64 as u64,
                        n as u64,
                    );
                    req.complete_with(env.src, env.tag, n);
                }
                Unexpected::Rts { env } => {
                    self.match_rts(&mut st, env, ptr, cap, &req)?;
                }
            }
        } else {
            // Nothing buffered from the peer and its link is gone: this
            // receive can never be satisfied. Only context 0 (the world
            // communicator) is checked — there comm rank equals global
            // rank, which is what the dead-peer table is indexed by.
            if context == 0 && src >= 0 && st.is_dead(src as usize) {
                return Err(MpcError::PeerClosed(src as usize));
            }
            st.posted.push_back(PostedRecv {
                src,
                tag,
                context,
                ptr: ptr as usize,
                cap,
                req: Arc::clone(&req),
            });
            self.metrics.bump(Metric::RecvsPosted);
            self.metrics
                .record_max(Metric::PostedQueuePeak, st.posted.len() as u64);
        }
        drop(st);
        self.progress()?;
        Ok(req)
    }

    /// Handle a matched RTS: for remote senders reply CTS; for self-sends
    /// copy directly out of the pending send window.
    fn match_rts(
        &self,
        st: &mut DeviceState,
        env: Envelope,
        ptr: *mut u8,
        cap: usize,
        req: &Request,
    ) -> MpcResult<()> {
        if env.gsrc as usize == self.rank {
            let ps = st
                .pending_sends
                .remove(&env.sreq)
                .expect("self rendezvous with vanished pending send");
            let n = ps.len.min(cap);
            // SAFETY: both windows caller-guaranteed within this process.
            unsafe {
                std::ptr::copy_nonoverlapping(ps.ptr as *const u8, ptr, n);
            }
            if ps.len > cap {
                req.mark_truncated();
            }
            self.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            req.complete_with(env.src, env.tag, n);
            ps.req.complete();
            return Ok(());
        }
        if env.len as usize > cap {
            req.mark_truncated();
        }
        st.active_recvs.insert(
            req.id(),
            ActiveRecv {
                ptr: ptr as usize,
                cap,
                env,
                req: Arc::clone(req),
            },
        );
        self.metrics.event3(
            EventKind::RndvCts,
            env.sreq,
            env.len,
            rndv_ctl(env.gsrc as usize, true),
        );
        Self::queue_frame(
            st,
            env.gsrc as usize,
            packet::encode_cts(env.sreq, req.id()),
        )
    }

    fn queue_frame(st: &mut DeviceState, dst: usize, bytes: Vec<u8>) -> MpcResult<()> {
        if let Some(Some(link)) = st.links.get_mut(dst) {
            link.queue_bytes(bytes);
            return Ok(());
        }
        if st.is_dead(dst) {
            Err(MpcError::PeerClosed(dst))
        } else {
            Err(MpcError::InvalidRank(dst as i32))
        }
    }

    // ------------------------------------------------------------------
    // Probe
    // ------------------------------------------------------------------

    /// Non-blocking probe: status of the first matching unexpected message,
    /// without consuming it.
    pub fn iprobe(&self, src: i32, tag: i32, context: u32) -> MpcResult<Option<Status>> {
        self.progress()?;
        let st = self.state.lock();
        self.metrics
            .add(Metric::MatchAttempts, st.unexpected.len() as u64);
        Ok(st
            .unexpected
            .iter()
            .find(|u| envelope_matches(u.envelope(), src, tag, context))
            .map(|u| {
                let e = u.envelope();
                Status {
                    source: e.src,
                    tag: e.tag,
                    count: e.len as usize,
                    truncated: false,
                }
            }))
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// Pump every link once: flush outgoing queues, parse incoming bytes,
    /// run protocol handlers. Returns `true` if anything moved.
    pub fn progress(&self) -> MpcResult<bool> {
        self.metrics.bump(Metric::ProgressPolls);
        let mut st = self.state.lock();
        let mut moved = false;
        let nlinks = st.links.len();
        let mut deferred: Vec<Deferred> = Vec::new();
        for i in 0..nlinks {
            // Split-borrow dance: take the link out so the sink can borrow
            // the rest of the state.
            let mut link = match st.links[i].take() {
                Some(l) => l,
                None => continue,
            };
            let out = link.pump_out();
            let mut sink = DeviceSink {
                st: &mut st,
                my_rank: self.rank,
                deferred: &mut deferred,
                metrics: &self.metrics,
            };
            let inn = link.pump_in(&mut sink);
            match (out, inn) {
                (Ok(a), Ok(b)) => {
                    moved |= a | b;
                    st.links[i] = Some(link);
                }
                (Err(MpcError::Transport(_)), _) | (_, Err(MpcError::Transport(_))) => {
                    // Peer gone: drop the link and fail every in-flight
                    // operation bound to it so waiters surface
                    // `MpcError::PeerClosed` instead of spinning forever.
                    // That includes requests bound to windows still queued
                    // on this link (post-CTS rendezvous data): they left
                    // `pending_sends` when the CTS arrived, so only the
                    // channel queue still knows them.
                    for req in link.take_undelivered_reqs() {
                        req.fail(i);
                    }
                    st.links[i] = None;
                    self.fail_peer_ops(&mut st, i);
                    moved = true;
                }
                (Err(e), _) | (_, Err(e)) => return Err(e),
            }
        }
        // Send frames generated by the handlers.
        for d in deferred {
            match d {
                Deferred::Frame { dst, bytes } => {
                    let _ = Self::queue_frame(&mut st, dst, bytes);
                }
                Deferred::RawWindow {
                    dst,
                    header,
                    ptr,
                    len,
                    done,
                } => {
                    if let Some(Some(link)) = st.links.get_mut(dst) {
                        link.queue_bytes(header);
                        link.queue_raw(ptr as *const u8, len, Some(done));
                    }
                }
            }
            moved = true;
        }
        if moved {
            self.metrics.note_progress();
        }
        Ok(moved)
    }

    /// Tear down everything that depended on the now-dead link to `peer`:
    /// mark the peer dead and fail every in-flight operation bound to it.
    /// Posted receives are failed only for context 0 (the world
    /// communicator), where comm rank equals the global rank indexing the
    /// dead-peer table; wildcard receives stay posted — another peer may
    /// still satisfy them.
    fn fail_peer_ops(&self, st: &mut DeviceState, peer: usize) {
        if st.dead.len() <= peer {
            st.dead.resize(peer + 1, false);
        }
        if !st.dead[peer] {
            st.dead[peer] = true;
            self.metrics.bump(Metric::LinksDropped);
        }
        st.pending_sends.retain(|_, ps| {
            if ps.dst_global == peer {
                ps.req.fail(peer);
                false
            } else {
                true
            }
        });
        st.active_recvs.retain(|_, ar| {
            if ar.env.gsrc as usize == peer {
                ar.req.fail(peer);
                false
            } else {
                true
            }
        });
        st.posted.retain(|p| {
            if p.context == 0 && p.src == peer as i32 {
                p.req.fail(peer);
                false
            } else {
                true
            }
        });
    }

    /// Drive progress until `req` completes, invoking `yield_poll` each
    /// lap — the hook where Motor parks for pending collections and where
    /// the native baseline does nothing.
    pub fn wait_with(&self, req: &Request, mut yield_poll: impl FnMut()) -> MpcResult<Status> {
        let start = self.metrics.now_nanos();
        self.metrics.event(EventKind::OpBegin, req.id(), 0);
        let inflight = self.metrics.op_begin(SpanKind::DeviceWait, req.id());
        let mut backoff = motor_pal::Backoff::with_config(self.config.wait_backoff);
        loop {
            yield_poll();
            if req.is_complete() {
                let waited = self.metrics.now_nanos().saturating_sub(start);
                self.metrics.op_end(inflight);
                self.metrics.record(Hist::WaitNanos, waited);
                self.metrics.event(EventKind::OpEnd, req.id(), waited);
                return Ok(req.status());
            }
            if let Some(peer) = req.failed_peer() {
                self.metrics.op_end(inflight);
                return Err(MpcError::PeerClosed(peer));
            }
            let moved = match self.progress() {
                Ok(m) => m,
                Err(e) => {
                    self.metrics.op_end(inflight);
                    return Err(e);
                }
            };
            if moved {
                self.metrics.op_beat(inflight);
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    /// Flush until a full pass moves nothing — the `MPI_Finalize`-style
    /// drain a rank performs when its body returns. Buffered eager sends
    /// complete as soon as the copy is queued on the channel, so frames
    /// can still sit in an outgoing queue when the caller stops driving
    /// progress; over transports that accept only partial writes (real
    /// sockets under backpressure, fault-injected simulation links) those
    /// frames would otherwise never reach the peer.
    pub fn drain(&self) -> MpcResult<()> {
        while self.progress()? {}
        Ok(())
    }

    /// Test without blocking; returns the status if complete.
    pub fn test(&self, req: &Request) -> MpcResult<Option<Status>> {
        if req.is_complete() {
            return Ok(Some(req.status()));
        }
        if let Some(peer) = req.failed_peer() {
            return Err(MpcError::PeerClosed(peer));
        }
        self.progress()?;
        if let Some(peer) = req.failed_peer() {
            return Err(MpcError::PeerClosed(peer));
        }
        Ok(if req.is_complete() {
            Some(req.status())
        } else {
            None
        })
    }

    /// Diagnostics: lengths of the device queues
    /// `(posted, unexpected, pending_sends, active_recvs)`.
    pub fn queue_depths(&self) -> (usize, usize, usize, usize) {
        let st = self.state.lock();
        (
            st.posted.len(),
            st.unexpected.len(),
            st.pending_sends.len(),
            st.active_recvs.len(),
        )
    }
}

/// The packet handler wired into each link pump.
struct DeviceSink<'a> {
    st: &'a mut DeviceState,
    my_rank: usize,
    deferred: &'a mut Vec<Deferred>,
    metrics: &'a MetricsRegistry,
}

impl PacketSink for DeviceSink<'_> {
    fn on_eager(&mut self, env: Envelope, data: &[u8]) {
        let pos = self
            .st
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(self.st.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = self.st.posted.remove(pos).unwrap();
            let n = data.len().min(p.cap);
            // SAFETY: posted window is caller-guaranteed stable until the
            // request completes.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), p.ptr as *mut u8, n);
            }
            if data.len() > p.cap {
                p.req.mark_truncated();
            }
            if env.is_sync() {
                self.deferred.push(Deferred::Frame {
                    dst: env.gsrc as usize,
                    bytes: packet::encode_sync_ack(env.sreq),
                });
            }
            self.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            p.req.complete_with(env.src, env.tag, n);
        } else {
            self.st.unexpected.push_back(Unexpected::Eager {
                env,
                data: data.to_vec(),
            });
            self.metrics
                .record_max(Metric::UnexpectedQueuePeak, self.st.unexpected.len() as u64);
        }
    }

    fn on_rts(&mut self, env: Envelope) {
        self.metrics.bump(Metric::RndvRtsIn);
        self.metrics.event3(
            EventKind::RndvRts,
            env.sreq,
            env.len,
            rndv_ctl(env.gsrc as usize, false),
        );
        let pos = self
            .st
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(self.st.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = self.st.posted.remove(pos).unwrap();
            if env.len as usize > p.cap {
                p.req.mark_truncated();
            }
            let rreq_id = p.req.id();
            self.st.active_recvs.insert(
                rreq_id,
                ActiveRecv {
                    ptr: p.ptr,
                    cap: p.cap,
                    env,
                    req: p.req,
                },
            );
            self.metrics.event3(
                EventKind::RndvCts,
                env.sreq,
                env.len,
                rndv_ctl(env.gsrc as usize, true),
            );
            self.deferred.push(Deferred::Frame {
                dst: env.gsrc as usize,
                bytes: packet::encode_cts(env.sreq, rreq_id),
            });
        } else {
            self.st.unexpected.push_back(Unexpected::Rts { env });
            self.metrics
                .record_max(Metric::UnexpectedQueuePeak, self.st.unexpected.len() as u64);
        }
    }

    fn on_cts(&mut self, sreq: u64, rreq: u64) {
        self.metrics.bump(Metric::RndvCtsIn);
        let ps = match self.st.pending_sends.remove(&sreq) {
            Some(p) => p,
            None => return, // duplicate CTS; ignore
        };
        self.metrics.event3(
            EventKind::RndvCts,
            sreq,
            ps.len as u64,
            rndv_ctl(ps.dst_global, false),
        );
        debug_assert_ne!(ps.dst_global, self.my_rank, "self-sends bypass the wire");
        self.deferred.push(Deferred::RawWindow {
            dst: ps.dst_global,
            header: packet::encode_rndv_data_header(rreq, ps.len),
            ptr: ps.ptr,
            len: ps.len,
            done: ps.req,
        });
    }

    fn on_sync_ack(&mut self, sreq: u64) {
        if let Some(ps) = self.st.pending_sends.remove(&sreq) {
            ps.req.complete();
        }
    }

    fn rndv_dest(&mut self, rreq: u64, _total: usize) -> RndvDest {
        match self.st.active_recvs.get(&rreq) {
            Some(ar) => RndvDest::Raw(ar.ptr as *mut u8, ar.cap),
            None => RndvDest::Discard,
        }
    }

    fn on_rndv_complete(&mut self, rreq: u64, total: usize) {
        if let Some(ar) = self.st.active_recvs.remove(&rreq) {
            let n = total.min(ar.cap);
            self.metrics.bump(Metric::RndvDone);
            self.metrics.event3(
                EventKind::RndvDone,
                ar.env.sreq,
                total as u64,
                rndv_ctl(ar.env.gsrc as usize, false),
            );
            self.metrics.event3(
                EventKind::MsgRecv,
                ar.env.gsrc as u64,
                ar.env.tag as i64 as u64,
                n as u64 | MSG_RNDV_FLAG,
            );
            ar.req.complete_with(ar.env.src, ar.env.tag, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LinkState;
    use motor_pal::link::shm_pair;

    /// Two connected devices over an in-process pair.
    fn duo() -> (Arc<Device>, Arc<Device>) {
        duo_with(DeviceConfig::default())
    }

    fn duo_with(config: DeviceConfig) -> (Arc<Device>, Arc<Device>) {
        let d0 = Device::new(0, config.clone());
        let d1 = Device::new(1, config);
        let (a, b) = shm_pair(64 * 1024);
        d0.set_link(1, LinkState::new(Box::new(a)));
        d1.set_link(0, LinkState::new(Box::new(b)));
        (d0, d1)
    }

    fn env(src: u32, gsrc: u32, tag: i32) -> Envelope {
        Envelope {
            src,
            gsrc,
            tag,
            context: 0,
            len: 0,
            sreq: 0,
            flags: 0,
        }
    }

    /// Test wrapper: the slice window outlives every drive loop below.
    fn send(d: &Device, dst: usize, e: Envelope, data: &[u8], sync: bool) -> MpcResult<Request> {
        // SAFETY: test buffers are plain slices that outlive the request.
        unsafe { d.isend_raw(dst, e, data.as_ptr(), data.len(), sync) }
    }

    /// Test wrapper for receives.
    fn recv(d: &Device, src: i32, tag: i32, ctx: u32, buf: &mut [u8]) -> MpcResult<Request> {
        // SAFETY: as in `send`.
        unsafe { d.irecv_raw(src, tag, ctx, buf.as_mut_ptr(), buf.len()) }
    }

    fn drive(d0: &Device, d1: &Device) {
        for _ in 0..10_000 {
            let a = d0.progress().unwrap();
            let b = d1.progress().unwrap();
            if !a && !b {
                return;
            }
        }
        panic!("devices did not quiesce");
    }

    #[test]
    fn eager_send_recv() {
        let (d0, d1) = duo();
        let data = [7u8; 100];
        let sreq = send(&d0, 1, env(0, 0, 5), &data, false).unwrap();
        let mut buf = [0u8; 100];
        let rreq = recv(&d1, ANY_SOURCE, 5, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete());
        assert!(rreq.is_complete());
        let s = rreq.status();
        assert_eq!(s.source, 0);
        assert_eq!(s.tag, 5);
        assert_eq!(s.count, 100);
        assert!(!s.truncated);
        assert_eq!(buf, [7u8; 100]);
    }

    #[test]
    fn recv_posted_before_send() {
        let (d0, d1) = duo();
        let mut buf = [0u8; 16];
        let rreq = recv(&d1, 0, 1, 0, &mut buf).unwrap();
        assert!(!rreq.is_complete());
        let data = [3u8; 16];
        let _s = send(&d0, 1, env(0, 0, 1), &data[..16], false).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        assert_eq!(buf, [3u8; 16]);
    }

    #[test]
    fn rendezvous_large_message() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 1024,
            ..DeviceConfig::default()
        });
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        let sreq = send(&d0, 1, env(0, 0, 9), &data, false).unwrap();
        assert!(
            !sreq.is_complete(),
            "rendezvous send cannot complete before CTS"
        );
        let mut buf = vec![0u8; data.len()];
        let rreq = recv(&d1, 0, 9, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete());
        assert!(rreq.is_complete());
        assert_eq!(rreq.status().count, data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn rendezvous_unexpected_rts_then_recv() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 64,
            ..DeviceConfig::default()
        });
        let data = vec![0xA5u8; 4096];
        let sreq = send(&d0, 1, env(0, 0, 2), &data, false).unwrap();
        // Let the RTS land unexpected.
        drive(&d0, &d1);
        assert_eq!(d1.queue_depths().1, 1, "RTS queued unexpected");
        let mut buf = vec![0u8; 4096];
        let rreq = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete() && rreq.is_complete());
        assert_eq!(buf, data);
    }

    #[test]
    fn tag_and_source_matching_with_wildcards() {
        let (d0, d1) = duo();
        let a = [1u8; 4];
        let b = [2u8; 4];
        send(&d0, 1, env(0, 0, 10), &a[..4], false).unwrap();
        send(&d0, 1, env(0, 0, 20), &b[..4], false).unwrap();
        drive(&d0, &d1);
        // Receive tag 20 first even though tag 10 arrived first.
        let mut buf = [0u8; 4];
        let r = recv(&d1, ANY_SOURCE, 20, 0, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r.is_complete());
        assert_eq!(buf, [2u8; 4]);
        // Wildcard then picks up the remaining tag-10 message.
        let mut buf2 = [0u8; 4];
        let r2 = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf2[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r2.is_complete());
        assert_eq!(r2.status().tag, 10);
        assert_eq!(buf2, [1u8; 4]);
    }

    #[test]
    fn non_overtaking_order_same_envelope() {
        let (d0, d1) = duo();
        for i in 0..5u8 {
            let data = [i; 8];
            send(&d0, 1, env(0, 0, 1), &data[..8], false).unwrap();
        }
        drive(&d0, &d1);
        for i in 0..5u8 {
            let mut buf = [0u8; 8];
            let r = recv(&d1, 0, 1, 0, &mut buf[..8]).unwrap();
            drive(&d0, &d1);
            assert!(r.is_complete());
            assert_eq!(
                buf, [i; 8],
                "messages with equal envelopes must not overtake"
            );
        }
    }

    #[test]
    fn synchronous_send_completes_only_after_match() {
        let (d0, d1) = duo();
        let data = [9u8; 32];
        let sreq = send(&d0, 1, env(0, 0, 7), &data[..32], true).unwrap();
        drive(&d0, &d1);
        assert!(
            !sreq.is_complete(),
            "ssend must wait for the receiver to match"
        );
        let mut buf = [0u8; 32];
        let rreq = recv(&d1, 0, 7, 0, &mut buf[..32]).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        assert!(sreq.is_complete(), "matched ⇒ acknowledged ⇒ complete");
    }

    #[test]
    fn truncation_is_flagged() {
        let (d0, d1) = duo();
        let data = [1u8; 100];
        send(&d0, 1, env(0, 0, 3), &data[..100], false).unwrap();
        let mut small = [0u8; 10];
        let rreq = recv(&d1, 0, 3, 0, &mut small[..10]).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        let s = rreq.status();
        assert!(s.truncated);
        assert_eq!(s.count, 10);
        assert_eq!(small, [1u8; 10]);
    }

    #[test]
    fn self_send_and_recv() {
        let (d0, _d1) = duo();
        let data = [5u8; 64];
        let s = send(&d0, 0, env(0, 0, 4), &data[..64], false).unwrap();
        let mut buf = [0u8; 64];
        let r = recv(&d0, 0, 4, 0, &mut buf[..64]).unwrap();
        d0.progress().unwrap();
        assert!(s.is_complete() && r.is_complete());
        assert_eq!(buf, [5u8; 64]);
    }

    #[test]
    fn contexts_isolate_messages() {
        let (d0, d1) = duo();
        let a = [1u8; 4];
        let mut e = env(0, 0, 1);
        e.context = 77;
        send(&d0, 1, e, &a, false).unwrap();
        drive(&d0, &d1);
        // A receive on context 0 must not see the context-77 message.
        let mut buf = [0u8; 4];
        let r = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(!r.is_complete());
        // The right context matches.
        let r2 = recv(&d1, ANY_SOURCE, ANY_TAG, 77, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r2.is_complete());
    }

    #[test]
    fn iprobe_reports_without_consuming() {
        let (d0, d1) = duo();
        let data = [8u8; 24];
        send(&d0, 1, env(0, 0, 6), &data[..24], false).unwrap();
        drive(&d0, &d1);
        let st = d1
            .iprobe(ANY_SOURCE, ANY_TAG, 0)
            .unwrap()
            .expect("message probed");
        assert_eq!(st.count, 24);
        assert_eq!(st.tag, 6);
        // Still there.
        assert!(d1.iprobe(0, 6, 0).unwrap().is_some());
        let mut buf = [0u8; 24];
        let r = recv(&d1, 0, 6, 0, &mut buf[..24]).unwrap();
        drive(&d0, &d1);
        assert!(r.is_complete());
        assert!(
            d1.iprobe(0, 6, 0).unwrap().is_none(),
            "consumed by the receive"
        );
    }

    #[test]
    fn wait_with_drives_progress() {
        let (d0, d1) = duo();
        let data = [2u8; 50];
        let mut buf = [0u8; 50];
        let rreq = recv(&d1, 0, 1, 0, &mut buf[..50]).unwrap();
        send(&d0, 1, env(0, 0, 1), &data[..50], false).unwrap();
        // d1 drives both sides here because shm links need no peer pump —
        // but the sender must flush; pump it once.
        d0.progress().unwrap();
        let mut polls = 0;
        let st = d1
            .wait_with(&rreq, || {
                polls += 1;
            })
            .unwrap();
        assert!(polls >= 1, "yield hook invoked");
        assert_eq!(st.count, 50);
        assert_eq!(buf, [2u8; 50]);
    }

    #[test]
    fn send_to_unknown_rank_is_invalid() {
        let (d0, _d1) = duo();
        let data = [0u8; 4];
        assert!(matches!(
            send(&d0, 9, env(0, 0, 1), &data[..4], false),
            Err(MpcError::InvalidRank(9))
        ));
    }
}
