//! The CH3-style device: matching, eager/rendezvous protocols, progress.
//!
//! Paper §6: MPICH2's "Abstract Device Interface (ADI), or device, layer
//! ... defines operations such as message queuing, packetizing, handling
//! heterogeneous communication and data transfer." This module is that
//! layer: it owns the posted-receive queue, the unexpected-message queue,
//! the envelope matcher (source/tag/context with wildcards, preserving
//! MPI's non-overtaking order), the eager/rendezvous protocol state
//! machines and the progress engine that pumps every link.
//!
//! The device works in *raw buffer windows* (`*mut u8` + length): callers
//! above — the native MPI layer, Motor's FCall layer, the wrapper
//! baselines — are responsible for the stability of those windows for the
//! lifetime of the operation. That contract is precisely what the paper's
//! pinning discussion is about.
//!
//! # Locking model (asynchronous progress)
//!
//! The device used to keep all state — links, queues, protocol tables —
//! under one mutex, which serialized concurrent senders and made a
//! progress thread pointless (it would just contend with the rank
//! thread). State is now split:
//!
//! * each link gets its **own** mutex (`Arc<Mutex<LinkState>>` slots in an
//!   `RwLock`ed table), so two threads pumping different peers never
//!   contend;
//! * the matching/protocol tables live in a single `match_state` mutex.
//!
//! Lock-order rules (deadlock freedom):
//!
//! 1. The links table read guard is **transient**: clone the slot's `Arc`,
//!    drop the guard, *then* lock the link. Never block on a link mutex
//!    while holding the table guard.
//! 2. `link → match_state` is allowed; `match_state → link` is forbidden.
//!    Handlers that must reply (CTS, sync-ack) return or defer frames and
//!    queue them after dropping `match_state`.
//! 3. At most one link mutex is held per thread at a time.
//!
//! Any thread may drive progress — the owning rank, a dedicated progress
//! thread ([`crate::progress::ProgressEngine`]), or a sibling rank's
//! parked waiter stealing cycles ([`crate::progress::ProgressSet`]).
//! Every completion notifies the device [`crate::progress::Waker`], which
//! parked waiters use instead of blind backoff sleeps.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use motor_obs::trace::{rndv_ctl, MSG_RNDV_FLAG};
use motor_obs::{EventKind, Hist, Metric, MetricsRegistry, SpanKind};
use parking_lot::{Mutex, RwLock};

use crate::channel::{LinkState, PacketSink, RndvDest};
use crate::error::{MpcError, MpcResult};
use crate::packet::{self, env_flags, Envelope};
use crate::progress::{ProgressSet, Waker};
use crate::request::{Request, RequestState, Status};

/// Wildcard source rank (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Device tuning parameters.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Messages up to this many bytes use the eager protocol; larger ones
    /// rendezvous (MPICH2's `MPIDI_CH3_EAGER_MAX_MSG_SIZE` analog).
    pub eager_threshold: usize,
    /// Capacity of the metrics event-trace ring (overwrite-on-wrap; see
    /// [`MetricsRegistry::with_event_capacity`]).
    pub event_capacity: usize,
    /// Shared time epoch for event timestamps. Ranks in one address space
    /// should share an epoch so their traces merge without calibration;
    /// `None` gives the registry a private epoch.
    pub epoch: Option<std::time::Instant>,
    /// Backoff ladder used by `wait` loops (spin → yield → sleep).
    /// Simulation pins this to [`motor_pal::BackoffConfig::no_sleep`] so
    /// waits never couple virtual time to the host scheduler.
    pub wait_backoff: motor_pal::BackoffConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            eager_threshold: 64 * 1024,
            event_capacity: motor_obs::DEFAULT_EVENT_CAPACITY,
            epoch: None,
            wait_backoff: motor_pal::BackoffConfig::default_ladder(),
        }
    }
}

/// A posted (pending) receive.
struct PostedRecv {
    src: i32,
    tag: i32,
    context: u32,
    ptr: usize,
    cap: usize,
    req: Request,
}

/// A message that arrived before its receive was posted.
enum Unexpected {
    /// Complete eager payload (buffered copy).
    Eager { env: Envelope, data: Vec<u8> },
    /// A rendezvous announcement; data still on the sender.
    Rts { env: Envelope },
}

impl Unexpected {
    fn envelope(&self) -> &Envelope {
        match self {
            Unexpected::Eager { env, .. } | Unexpected::Rts { env } => env,
        }
    }
}

/// A send awaiting CTS (rendezvous) or SyncAck (synchronous eager).
struct PendingSend {
    dst_global: usize,
    ptr: usize,
    len: usize,
    req: Request,
}

/// A matched rendezvous receive being streamed.
struct ActiveRecv {
    ptr: usize,
    cap: usize,
    env: Envelope,
    req: Request,
}

/// Frames generated while handling inbound packets (sent after the pump).
enum Deferred {
    Frame {
        dst: usize,
        bytes: Vec<u8>,
    },
    RawWindow {
        dst: usize,
        header: Vec<u8>,
        ptr: usize,
        len: usize,
        done: Request,
    },
}

/// The matching/protocol tables — everything except the links.
#[derive(Default)]
struct MatchState {
    /// Peers whose link died (index = global rank). Distinguishes "never
    /// wired" (`InvalidRank`) from "wired, then closed" (`PeerClosed`).
    dead: Vec<bool>,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    pending_sends: HashMap<u64, PendingSend>,
    active_recvs: HashMap<u64, ActiveRecv>,
}

impl MatchState {
    fn is_dead(&self, peer: usize) -> bool {
        self.dead.get(peer).copied().unwrap_or(false)
    }
}

/// One process's message-passing device.
pub struct Device {
    rank: usize,
    /// Per-peer link slots. The table lock is only ever held transiently
    /// (clone the `Arc`, drop the guard); each link has its own mutex so
    /// concurrent senders to different peers never serialize.
    links: RwLock<Vec<Option<Arc<Mutex<LinkState>>>>>,
    /// Matching and protocol state, independent of any link lock.
    match_state: Mutex<MatchState>,
    next_req: AtomicU64,
    config: DeviceConfig,
    metrics: Arc<MetricsRegistry>,
    /// Completion notifier: bumped whenever any thread moves this device.
    waker: Arc<Waker>,
    /// Peer wakers, indexed by global rank (installed by universe wiring
    /// when a progress mode is active). After this device's `pump_out`
    /// puts bytes on the wire to a peer, it pokes the peer's waker so a
    /// parked engine thread or sleeping waiter over there pumps them in
    /// immediately instead of waiting out its idle-park quantum.
    peer_wakers: RwLock<Vec<Option<Arc<Waker>>>>,
    /// Steal registry this device belongs to (progress mode `steal`).
    steal_set: Mutex<Option<Arc<ProgressSet>>>,
}

fn envelope_matches(env: &Envelope, src: i32, tag: i32, context: u32) -> bool {
    env.context == context
        && (src == ANY_SOURCE || env.src == src as u32)
        && (tag == ANY_TAG || env.tag == tag)
}

impl Device {
    /// Create a device for global rank `rank` with no links.
    pub fn new(rank: usize, config: DeviceConfig) -> Arc<Device> {
        let metrics = Arc::new(MetricsRegistry::with_epoch(
            config.epoch.unwrap_or_else(std::time::Instant::now),
            config.event_capacity,
        ));
        Arc::new(Device {
            rank,
            links: RwLock::new(Vec::new()),
            match_state: Mutex::new(MatchState::default()),
            next_req: AtomicU64::new(1),
            config,
            metrics,
            waker: Arc::new(Waker::default()),
            peer_wakers: RwLock::new(Vec::new()),
            steal_set: Mutex::new(None),
        })
    }

    /// This device's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The per-rank metrics registry every transport layer reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The eager/rendezvous switchover point.
    pub fn eager_threshold(&self) -> usize {
        self.config.eager_threshold
    }

    /// The backoff ladder configured for wait loops.
    pub fn wait_backoff(&self) -> motor_pal::BackoffConfig {
        self.config.wait_backoff
    }

    /// Install the link to `peer` (universe wiring).
    pub fn set_link(&self, peer: usize, mut link: LinkState) {
        link.attach_metrics(Arc::clone(&self.metrics));
        link.set_peer(peer);
        let mut links = self.links.write();
        if links.len() <= peer {
            links.resize_with(peer + 1, || None);
        }
        links[peer] = Some(Arc::new(Mutex::new(link)));
    }

    /// Number of link slots (== known universe size).
    pub fn link_count(&self) -> usize {
        self.links.read().len()
    }

    /// Join the steal pool `set`: waiters parked on this device will pump
    /// the set's other members, and vice versa.
    pub fn install_steal_set(&self, set: Arc<ProgressSet>) {
        *self.steal_set.lock() = Some(set);
    }

    /// Current waker generation (see [`Device::park_until_progress`]).
    pub fn progress_generation(&self) -> u64 {
        self.waker.generation()
    }

    /// Park until progress moves the generation past `seen` or `timeout`
    /// elapses. Never misses a notify between reading `seen` and parking.
    pub fn park_until_progress(&self, seen: u64, timeout: Duration) -> u64 {
        self.waker.wait_next(seen, timeout)
    }

    /// Wake every thread parked on this device (engine shutdown, external
    /// completion sources).
    pub fn notify_progress(&self) {
        self.waker.notify();
    }

    /// Handle to this device's waker for cross-device pokes.
    pub(crate) fn waker_handle(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    /// Let this device poke `peer`'s waker after putting bytes on the
    /// wire to it (universe wiring, active progress modes only — with no
    /// installs the poke path is a read of an empty table).
    pub(crate) fn install_peer_waker(&self, peer: usize, waker: Arc<Waker>) {
        let mut table = self.peer_wakers.write();
        if table.len() <= peer {
            table.resize_with(peer + 1, || None);
        }
        table[peer] = Some(waker);
    }

    /// Wake whatever is parked on `peer`'s device, if wiring gave us its
    /// waker.
    fn poke_peer(&self, peer: usize) {
        let w = self.peer_wakers.read().get(peer).and_then(Clone::clone);
        if let Some(w) = w {
            w.notify();
        }
    }

    fn new_request(&self) -> Request {
        RequestState::new(self.next_req.fetch_add(1, Ordering::Relaxed))
    }

    /// Clone the link `Arc` for `peer` under a transient table guard.
    fn link_arc(&self, peer: usize) -> Option<Arc<Mutex<LinkState>>> {
        self.links.read().get(peer).and_then(|slot| slot.clone())
    }

    /// Remove the link slot for `peer` (its transport died).
    fn drop_link(&self, peer: usize) {
        if let Some(slot) = self.links.write().get_mut(peer) {
            *slot = None;
        }
    }

    /// Queue a control frame on the link to `dst`, with the legacy error
    /// surface: dead peer → `PeerClosed`, never wired → `InvalidRank`.
    fn queue_frame_on_link(&self, dst: usize, bytes: Vec<u8>) -> MpcResult<()> {
        if let Some(link) = self.link_arc(dst) {
            link.lock().queue_bytes(bytes);
            return Ok(());
        }
        if self.match_state.lock().is_dead(dst) {
            Err(MpcError::PeerClosed(dst))
        } else {
            Err(MpcError::InvalidRank(dst as i32))
        }
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Start a send. `env` must carry this sender's comm rank, global rank,
    /// tag, context and `len`.
    ///
    /// Eager messages are copied into the frame immediately (the request
    /// completes as soon as that copy is queued — buffered semantics, as in
    /// MPICH2's eager path). Rendezvous messages keep the raw window and
    /// stream it zero-copy after CTS.
    ///
    /// # Safety
    /// The window `(ptr, len)` must stay valid **and stable** (no GC
    /// movement, no free) until the returned request completes — the
    /// pinning obligation of paper §2.3.
    pub unsafe fn isend_raw(
        &self,
        dst_global: usize,
        mut env: Envelope,
        ptr: *const u8,
        len: usize,
        synchronous: bool,
    ) -> MpcResult<Request> {
        let req = self.new_request();
        env.len = len as u64;
        env.sreq = req.id();
        if synchronous {
            env.flags |= env_flags::SYNC;
        }
        let use_eager = len <= self.config.eager_threshold;
        // SAFETY: caller guarantees the window for the operation lifetime;
        // for the eager path we only borrow it for the copy below.
        let data = unsafe { std::slice::from_raw_parts(ptr, len) };

        if dst_global == self.rank {
            self.metrics.event3(
                EventKind::MsgSend,
                dst_global as u64,
                env.tag as i64 as u64,
                len as u64,
            );
            self.send_to_self(env, ptr, len, &req);
            return Ok(req);
        }
        // Stamp the send initiation for cross-rank edge matching; the high
        // bit of the byte count marks the rendezvous path.
        self.metrics.event3(
            EventKind::MsgSend,
            dst_global as u64,
            env.tag as i64 as u64,
            len as u64 | if use_eager { 0 } else { MSG_RNDV_FLAG },
        );

        // Register completion-awaiting state *before* the frame is queued:
        // with an engine thread pumping concurrently, the CTS or SyncAck
        // reply can race back before this thread takes another lock.
        if !use_eager || synchronous {
            let mut ms = self.match_state.lock();
            if ms.is_dead(dst_global) {
                return Err(MpcError::PeerClosed(dst_global));
            }
            ms.pending_sends.insert(
                env.sreq,
                PendingSend {
                    dst_global,
                    ptr: ptr as usize,
                    len,
                    req: Arc::clone(&req),
                },
            );
        } else if self.match_state.lock().is_dead(dst_global) {
            return Err(MpcError::PeerClosed(dst_global));
        }

        let frame = if use_eager {
            packet::encode_eager(&env, data)
        } else {
            packet::encode_rts(&env)
        };
        if let Err(e) = self.queue_frame_on_link(dst_global, frame) {
            self.match_state.lock().pending_sends.remove(&env.sreq);
            return Err(e);
        }
        if use_eager {
            self.metrics.bump(Metric::SendsEager);
            if synchronous {
                self.metrics.bump(Metric::SendsSync);
            }
            self.metrics.record(Hist::EagerSendBytes, len as u64);
            if !synchronous {
                // Buffer handed off; MPI send-completion semantics met.
                req.complete();
            }
        } else {
            self.metrics.bump(Metric::SendsRndv);
            self.metrics.record(Hist::RndvSendBytes, len as u64);
            self.metrics.event3(
                EventKind::RndvRts,
                env.sreq,
                len as u64,
                rndv_ctl(dst_global, true),
            );
        }
        self.progress()?;
        Ok(req)
    }

    /// Self-send: deliver without touching any link.
    fn send_to_self(&self, env: Envelope, ptr: *const u8, len: usize, req: &Request) {
        self.metrics.bump(Metric::SendsSelf);
        let mut ms = self.match_state.lock();
        // Try to match a posted receive directly.
        let pos = ms
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(ms.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = ms.posted.remove(pos).unwrap();
            let n = len.min(p.cap);
            // SAFETY: both windows are caller-guaranteed; self-send means
            // sender and receiver windows belong to this process.
            unsafe {
                std::ptr::copy_nonoverlapping(ptr, p.ptr as *mut u8, n);
            }
            if len > p.cap {
                p.req.mark_truncated();
            }
            self.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            p.req.complete_with(env.src, env.tag, n);
            req.complete();
        } else {
            // Buffer a copy, as the eager path would.
            // SAFETY: window valid per caller contract.
            let data = unsafe { std::slice::from_raw_parts(ptr, len) }.to_vec();
            ms.unexpected.push_back(Unexpected::Eager { env, data });
            self.metrics
                .record_max(Metric::UnexpectedQueuePeak, ms.unexpected.len() as u64);
            req.complete();
        }
        drop(ms);
        self.waker.notify();
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Post a receive into the raw window `(ptr, cap)`.
    ///
    /// # Safety
    /// The window must stay valid **and stable** until the returned
    /// request completes (see [`Device::isend_raw`]).
    pub unsafe fn irecv_raw(
        &self,
        src: i32,
        tag: i32,
        context: u32,
        ptr: *mut u8,
        cap: usize,
    ) -> MpcResult<Request> {
        let req = self.new_request();
        // Reply frame (sync-ack or CTS) generated while matching; queued
        // after `match_state` drops (lock order: never match_state → link).
        let mut reply: Option<(usize, Vec<u8>)> = None;
        let mut ms = self.match_state.lock();
        // Unexpected queue first, preserving arrival order (non-overtaking).
        let pos = ms
            .unexpected
            .iter()
            .position(|u| envelope_matches(u.envelope(), src, tag, context));
        self.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(ms.unexpected.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            self.metrics.bump(Metric::RecvsUnexpected);
            match ms.unexpected.remove(pos).unwrap() {
                Unexpected::Eager { env, data } => {
                    let n = data.len().min(cap);
                    // SAFETY: caller-guaranteed window.
                    unsafe {
                        std::ptr::copy_nonoverlapping(data.as_ptr(), ptr, n);
                    }
                    if data.len() > cap {
                        req.mark_truncated();
                    }
                    if env.is_sync() && env.gsrc as usize != self.rank {
                        reply = Some((env.gsrc as usize, packet::encode_sync_ack(env.sreq)));
                    }
                    self.metrics.event3(
                        EventKind::MsgRecv,
                        env.gsrc as u64,
                        env.tag as i64 as u64,
                        n as u64,
                    );
                    req.complete_with(env.src, env.tag, n);
                }
                Unexpected::Rts { env } => {
                    reply = self.match_rts(&mut ms, env, ptr, cap, &req);
                }
            }
        } else {
            // Nothing buffered from the peer and its link is gone: this
            // receive can never be satisfied. Only context 0 (the world
            // communicator) is checked — there comm rank equals global
            // rank, which is what the dead-peer table is indexed by.
            if context == 0 && src >= 0 && ms.is_dead(src as usize) {
                return Err(MpcError::PeerClosed(src as usize));
            }
            ms.posted.push_back(PostedRecv {
                src,
                tag,
                context,
                ptr: ptr as usize,
                cap,
                req: Arc::clone(&req),
            });
            self.metrics.bump(Metric::RecvsPosted);
            self.metrics
                .record_max(Metric::PostedQueuePeak, ms.posted.len() as u64);
        }
        drop(ms);
        if let Some((dst, bytes)) = reply {
            self.queue_frame_on_link(dst, bytes)?;
        }
        self.progress()?;
        Ok(req)
    }

    /// Handle a matched RTS: for remote senders build the CTS reply (the
    /// caller queues it after dropping `match_state`); for self-sends copy
    /// directly out of the pending send window.
    fn match_rts(
        &self,
        ms: &mut MatchState,
        env: Envelope,
        ptr: *mut u8,
        cap: usize,
        req: &Request,
    ) -> Option<(usize, Vec<u8>)> {
        if env.gsrc as usize == self.rank {
            let ps = ms
                .pending_sends
                .remove(&env.sreq)
                .expect("self rendezvous with vanished pending send");
            let n = ps.len.min(cap);
            // SAFETY: both windows caller-guaranteed within this process.
            unsafe {
                std::ptr::copy_nonoverlapping(ps.ptr as *const u8, ptr, n);
            }
            if ps.len > cap {
                req.mark_truncated();
            }
            self.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            req.complete_with(env.src, env.tag, n);
            ps.req.complete();
            return None;
        }
        if env.len as usize > cap {
            req.mark_truncated();
        }
        ms.active_recvs.insert(
            req.id(),
            ActiveRecv {
                ptr: ptr as usize,
                cap,
                env,
                req: Arc::clone(req),
            },
        );
        self.metrics.event3(
            EventKind::RndvCts,
            env.sreq,
            env.len,
            rndv_ctl(env.gsrc as usize, true),
        );
        Some((env.gsrc as usize, packet::encode_cts(env.sreq, req.id())))
    }

    // ------------------------------------------------------------------
    // Probe
    // ------------------------------------------------------------------

    /// Non-blocking probe: status of the first matching unexpected message,
    /// without consuming it.
    pub fn iprobe(&self, src: i32, tag: i32, context: u32) -> MpcResult<Option<Status>> {
        self.progress()?;
        let ms = self.match_state.lock();
        self.metrics
            .add(Metric::MatchAttempts, ms.unexpected.len() as u64);
        Ok(ms
            .unexpected
            .iter()
            .find(|u| envelope_matches(u.envelope(), src, tag, context))
            .map(|u| {
                let e = u.envelope();
                Status {
                    source: e.src,
                    tag: e.tag,
                    count: e.len as usize,
                    truncated: false,
                }
            }))
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// One pump pass over every link. `nonblocking` skips links whose
    /// mutex is held (their owner is already pumping them) — the steal
    /// path, which must never serialize thief and owner on one link.
    /// Returns `(anything_moved, requests_completed)`.
    fn pass_inner(&self, nonblocking: bool) -> MpcResult<(bool, u64)> {
        let mut moved = false;
        let mut completions = 0u64;
        let mut deferred: Vec<Deferred> = Vec::new();
        let mut poke: Vec<usize> = Vec::new();
        let nlinks = self.links.read().len();
        for i in 0..nlinks {
            // Rule 1: transient table guard — clone the Arc, drop the
            // guard, then lock the link.
            let link_arc = match self.link_arc(i) {
                Some(l) => l,
                None => continue,
            };
            let mut link = if nonblocking {
                match link_arc.try_lock() {
                    Some(guard) => guard,
                    None => continue, // owner is pumping it; skip
                }
            } else {
                link_arc.lock()
            };
            let out = link.pump_out();
            let mut sink = DeviceSink {
                dev: self,
                deferred: &mut deferred,
                completions: &mut completions,
            };
            let inn = link.pump_in(&mut sink);
            match (out, inn) {
                (Ok(a), Ok(b)) => {
                    moved |= a | b;
                    if a {
                        // Bytes went onto the wire to peer `i`: poke its
                        // parked engine/waiter (outside the link lock).
                        poke.push(i);
                    }
                }
                (Err(MpcError::Transport(_)), _) | (_, Err(MpcError::Transport(_))) => {
                    // Peer gone: drop the link and fail every in-flight
                    // operation bound to it so waiters surface
                    // `MpcError::PeerClosed` instead of spinning forever.
                    // That includes requests bound to windows still queued
                    // on this link (post-CTS rendezvous data): they left
                    // `pending_sends` when the CTS arrived, so only the
                    // channel queue still knows them.
                    for req in link.take_undelivered_reqs() {
                        req.fail(i);
                    }
                    drop(link);
                    self.drop_link(i);
                    let mut ms = self.match_state.lock();
                    self.fail_peer_ops(&mut ms, i);
                    moved = true;
                }
                (Err(e), _) | (_, Err(e)) => return Err(e),
            }
        }
        // Send frames generated by the handlers.
        for d in deferred {
            match d {
                Deferred::Frame { dst, bytes } => {
                    let _ = self.queue_frame_on_link(dst, bytes);
                }
                Deferred::RawWindow {
                    dst,
                    header,
                    ptr,
                    len,
                    done,
                } => {
                    if let Some(link) = self.link_arc(dst) {
                        let mut link = link.lock();
                        link.queue_bytes(header);
                        link.queue_raw(ptr as *const u8, len, Some(done));
                    } else {
                        // The CTS arrived but the peer died before the
                        // data window could be queued: fail rather than
                        // silently dropping the request into a hang.
                        done.fail(dst);
                    }
                }
            }
            moved = true;
        }
        for peer in poke {
            self.poke_peer(peer);
        }
        Ok((moved, completions))
    }

    /// Pump every link once: flush outgoing queues, parse incoming bytes,
    /// run protocol handlers. Returns `true` if anything moved.
    pub fn progress(&self) -> MpcResult<bool> {
        self.metrics.bump(Metric::ProgressPolls);
        let (moved, _) = self.pass_inner(false)?;
        if moved {
            self.metrics.note_progress();
            self.waker.notify();
        }
        Ok(moved)
    }

    /// Batched progress: chain up to `max_passes` pump passes so frames
    /// generated by pass *n* (CTS replies, rendezvous data windows,
    /// sync-acks) flush in pass *n+1* of the *same* poll instead of
    /// waiting for the next. Engine threads set `engine_thread` so the
    /// time spent is attributed to [`Metric::ProgressEngineNanos`] — the
    /// off-rank-thread share of the `progress` bucket.
    pub fn progress_batched(&self, max_passes: usize, engine_thread: bool) -> MpcResult<bool> {
        let t0 = if engine_thread {
            Some(self.metrics.now_nanos())
        } else {
            None
        };
        let mut moved_any = false;
        let mut total_completions = 0u64;
        for _ in 0..max_passes.max(1) {
            self.metrics.bump(Metric::ProgressPolls);
            let (moved, completions) = self.pass_inner(false)?;
            total_completions += completions;
            if !moved {
                break;
            }
            moved_any = true;
        }
        if moved_any {
            self.metrics.note_progress();
            self.waker.notify();
        }
        if total_completions > 0 {
            self.metrics
                .add(Metric::ProgressOpsCompleted, total_completions);
            self.metrics.record(Hist::ProgressBatch, total_completions);
        }
        if let Some(t0) = t0 {
            let spent = self.metrics.now_nanos().saturating_sub(t0);
            self.metrics.add(Metric::ProgressEngineNanos, spent);
        }
        Ok(moved_any)
    }

    /// Non-blocking progress pass: skips any link whose mutex is held.
    /// Safe to call from *any* thread at any time — the entry point for
    /// stolen progress.
    pub fn try_progress(&self) -> MpcResult<bool> {
        self.metrics.bump(Metric::ProgressPolls);
        let (moved, completions) = self.pass_inner(true)?;
        if moved {
            if completions > 0 {
                self.metrics.add(Metric::ProgressOpsCompleted, completions);
            }
            self.metrics.note_progress();
            self.waker.notify();
        }
        Ok(moved)
    }

    /// A steal sweep entry: one non-blocking pass, counted.
    pub(crate) fn steal_pass(&self) -> MpcResult<bool> {
        let moved = self.try_progress()?;
        if moved {
            self.metrics.bump(Metric::ProgressSteals);
        }
        Ok(moved)
    }

    /// Run one steal sweep over the installed steal set, if any.
    fn steal_once(&self) -> bool {
        let set = self.steal_set.lock().clone();
        match set {
            Some(s) => s.steal(self.rank),
            None => false,
        }
    }

    /// Tear down everything that depended on the now-dead link to `peer`:
    /// mark the peer dead and fail every in-flight operation bound to it.
    /// Posted receives are failed only for context 0 (the world
    /// communicator), where comm rank equals the global rank indexing the
    /// dead-peer table; wildcard receives stay posted — another peer may
    /// still satisfy them.
    fn fail_peer_ops(&self, ms: &mut MatchState, peer: usize) {
        if ms.dead.len() <= peer {
            ms.dead.resize(peer + 1, false);
        }
        if !ms.dead[peer] {
            ms.dead[peer] = true;
            self.metrics.bump(Metric::LinksDropped);
        }
        ms.pending_sends.retain(|_, ps| {
            if ps.dst_global == peer {
                ps.req.fail(peer);
                false
            } else {
                true
            }
        });
        ms.active_recvs.retain(|_, ar| {
            if ar.env.gsrc as usize == peer {
                ar.req.fail(peer);
                false
            } else {
                true
            }
        });
        ms.posted.retain(|p| {
            if p.context == 0 && p.src == peer as i32 {
                p.req.fail(peer);
                false
            } else {
                true
            }
        });
    }

    /// Drive progress until `req` completes, invoking `yield_poll` each
    /// lap — the hook where Motor parks for pending collections and where
    /// the native baseline does nothing.
    ///
    /// When the backoff ladder reaches its sleep tier the wait parks on
    /// the device waker instead of blind-sleeping, so a completion driven
    /// by *any* thread (a progress engine, a stealing sibling) cuts the
    /// sleep short instead of costing up to a full quantum of latency.
    /// Once past the spin tier, the waiter also lends its cycles to
    /// sibling devices when a steal set is installed.
    pub fn wait_with(&self, req: &Request, mut yield_poll: impl FnMut()) -> MpcResult<Status> {
        let start = self.metrics.now_nanos();
        self.metrics.event(EventKind::OpBegin, req.id(), 0);
        let inflight = self.metrics.op_begin(SpanKind::DeviceWait, req.id());
        let mut backoff = motor_pal::Backoff::with_config(self.config.wait_backoff);
        loop {
            yield_poll();
            if req.is_complete() {
                let waited = self.metrics.now_nanos().saturating_sub(start);
                self.metrics.op_end(inflight);
                self.metrics.record(Hist::WaitNanos, waited);
                self.metrics.event(EventKind::OpEnd, req.id(), waited);
                return Ok(req.status());
            }
            if let Some(peer) = req.failed_peer() {
                self.metrics.op_end(inflight);
                return Err(MpcError::PeerClosed(peer));
            }
            // Generation snapshot *before* the pass: progress made by
            // another thread after this line bumps the generation, so the
            // park below returns immediately rather than missing it.
            let gen = self.waker.generation();
            let moved = match self.progress() {
                Ok(m) => m,
                Err(e) => {
                    self.metrics.op_end(inflight);
                    return Err(e);
                }
            };
            if moved {
                self.metrics.op_beat(inflight);
                backoff.reset();
                continue;
            }
            if backoff.is_yielding() && self.steal_once() {
                self.metrics.op_beat(inflight);
                backoff.reset();
                continue;
            }
            if backoff.is_sleeping() {
                let quantum = self
                    .config
                    .wait_backoff
                    .sleep
                    .unwrap_or(Duration::from_micros(100));
                self.waker.wait_next(gen, quantum);
            } else {
                backoff.snooze();
            }
        }
    }

    /// Flush until a full pass moves nothing — the `MPI_Finalize`-style
    /// drain a rank performs when its body returns. Buffered eager sends
    /// complete as soon as the copy is queued on the channel, so frames
    /// can still sit in an outgoing queue when the caller stops driving
    /// progress; over transports that accept only partial writes (real
    /// sockets under backpressure, fault-injected simulation links) those
    /// frames would otherwise never reach the peer.
    pub fn drain(&self) -> MpcResult<()> {
        while self.progress()? {}
        Ok(())
    }

    /// Test without blocking; returns the status if complete.
    pub fn test(&self, req: &Request) -> MpcResult<Option<Status>> {
        if req.is_complete() {
            return Ok(Some(req.status()));
        }
        if let Some(peer) = req.failed_peer() {
            return Err(MpcError::PeerClosed(peer));
        }
        self.progress()?;
        if let Some(peer) = req.failed_peer() {
            return Err(MpcError::PeerClosed(peer));
        }
        Ok(if req.is_complete() {
            Some(req.status())
        } else {
            None
        })
    }

    /// Diagnostics: lengths of the device queues
    /// `(posted, unexpected, pending_sends, active_recvs)`.
    pub fn queue_depths(&self) -> (usize, usize, usize, usize) {
        let ms = self.match_state.lock();
        (
            ms.posted.len(),
            ms.unexpected.len(),
            ms.pending_sends.len(),
            ms.active_recvs.len(),
        )
    }
}

/// The packet handler wired into each link pump. Called with one link
/// mutex held; takes `match_state` internally per callback (lock order
/// rule 2: link → match_state).
struct DeviceSink<'a> {
    dev: &'a Device,
    deferred: &'a mut Vec<Deferred>,
    /// Requests completed by this pump pass (the engine's throughput
    /// gauge and batch-size sample).
    completions: &'a mut u64,
}

impl PacketSink for DeviceSink<'_> {
    fn on_eager(&mut self, env: Envelope, data: &[u8]) {
        let mut ms = self.dev.match_state.lock();
        let pos = ms
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.dev.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(ms.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = ms.posted.remove(pos).unwrap();
            let n = data.len().min(p.cap);
            // SAFETY: posted window is caller-guaranteed stable until the
            // request completes.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), p.ptr as *mut u8, n);
            }
            if data.len() > p.cap {
                p.req.mark_truncated();
            }
            if env.is_sync() {
                self.deferred.push(Deferred::Frame {
                    dst: env.gsrc as usize,
                    bytes: packet::encode_sync_ack(env.sreq),
                });
            }
            self.dev.metrics.event3(
                EventKind::MsgRecv,
                env.gsrc as u64,
                env.tag as i64 as u64,
                n as u64,
            );
            p.req.complete_with(env.src, env.tag, n);
            *self.completions += 1;
        } else {
            ms.unexpected.push_back(Unexpected::Eager {
                env,
                data: data.to_vec(),
            });
            self.dev
                .metrics
                .record_max(Metric::UnexpectedQueuePeak, ms.unexpected.len() as u64);
        }
    }

    fn on_rts(&mut self, env: Envelope) {
        self.dev.metrics.bump(Metric::RndvRtsIn);
        self.dev.metrics.event3(
            EventKind::RndvRts,
            env.sreq,
            env.len,
            rndv_ctl(env.gsrc as usize, false),
        );
        let mut ms = self.dev.match_state.lock();
        let pos = ms
            .posted
            .iter()
            .position(|p| envelope_matches(&env, p.src, p.tag, p.context));
        self.dev.metrics.add(
            Metric::MatchAttempts,
            pos.map_or(ms.posted.len(), |p| p + 1) as u64,
        );
        if let Some(pos) = pos {
            let p = ms.posted.remove(pos).unwrap();
            if env.len as usize > p.cap {
                p.req.mark_truncated();
            }
            let rreq_id = p.req.id();
            ms.active_recvs.insert(
                rreq_id,
                ActiveRecv {
                    ptr: p.ptr,
                    cap: p.cap,
                    env,
                    req: p.req,
                },
            );
            self.dev.metrics.event3(
                EventKind::RndvCts,
                env.sreq,
                env.len,
                rndv_ctl(env.gsrc as usize, true),
            );
            self.deferred.push(Deferred::Frame {
                dst: env.gsrc as usize,
                bytes: packet::encode_cts(env.sreq, rreq_id),
            });
        } else {
            ms.unexpected.push_back(Unexpected::Rts { env });
            self.dev
                .metrics
                .record_max(Metric::UnexpectedQueuePeak, ms.unexpected.len() as u64);
        }
    }

    fn on_cts(&mut self, sreq: u64, rreq: u64) {
        self.dev.metrics.bump(Metric::RndvCtsIn);
        let ps = match self.dev.match_state.lock().pending_sends.remove(&sreq) {
            Some(p) => p,
            None => return, // duplicate CTS; ignore
        };
        self.dev.metrics.event3(
            EventKind::RndvCts,
            sreq,
            ps.len as u64,
            rndv_ctl(ps.dst_global, false),
        );
        debug_assert_ne!(ps.dst_global, self.dev.rank, "self-sends bypass the wire");
        self.deferred.push(Deferred::RawWindow {
            dst: ps.dst_global,
            header: packet::encode_rndv_data_header(rreq, ps.len),
            ptr: ps.ptr,
            len: ps.len,
            done: ps.req,
        });
    }

    fn on_sync_ack(&mut self, sreq: u64) {
        if let Some(ps) = self.dev.match_state.lock().pending_sends.remove(&sreq) {
            ps.req.complete();
            *self.completions += 1;
        }
    }

    fn rndv_dest(&mut self, rreq: u64, _total: usize) -> RndvDest {
        match self.dev.match_state.lock().active_recvs.get(&rreq) {
            Some(ar) => RndvDest::Raw(ar.ptr as *mut u8, ar.cap),
            None => RndvDest::Discard,
        }
    }

    fn on_rndv_complete(&mut self, rreq: u64, total: usize) {
        if let Some(ar) = self.dev.match_state.lock().active_recvs.remove(&rreq) {
            let n = total.min(ar.cap);
            self.dev.metrics.bump(Metric::RndvDone);
            self.dev.metrics.event3(
                EventKind::RndvDone,
                ar.env.sreq,
                total as u64,
                rndv_ctl(ar.env.gsrc as usize, false),
            );
            self.dev.metrics.event3(
                EventKind::MsgRecv,
                ar.env.gsrc as u64,
                ar.env.tag as i64 as u64,
                n as u64 | MSG_RNDV_FLAG,
            );
            ar.req.complete_with(ar.env.src, ar.env.tag, n);
            *self.completions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LinkState;
    use motor_pal::link::shm_pair;

    /// Two connected devices over an in-process pair.
    fn duo() -> (Arc<Device>, Arc<Device>) {
        duo_with(DeviceConfig::default())
    }

    fn duo_with(config: DeviceConfig) -> (Arc<Device>, Arc<Device>) {
        let d0 = Device::new(0, config.clone());
        let d1 = Device::new(1, config);
        let (a, b) = shm_pair(64 * 1024);
        d0.set_link(1, LinkState::new(Box::new(a)));
        d1.set_link(0, LinkState::new(Box::new(b)));
        (d0, d1)
    }

    fn env(src: u32, gsrc: u32, tag: i32) -> Envelope {
        Envelope {
            src,
            gsrc,
            tag,
            context: 0,
            len: 0,
            sreq: 0,
            flags: 0,
        }
    }

    /// Test wrapper: the slice window outlives every drive loop below.
    fn send(d: &Device, dst: usize, e: Envelope, data: &[u8], sync: bool) -> MpcResult<Request> {
        // SAFETY: test buffers are plain slices that outlive the request.
        unsafe { d.isend_raw(dst, e, data.as_ptr(), data.len(), sync) }
    }

    /// Test wrapper for receives.
    fn recv(d: &Device, src: i32, tag: i32, ctx: u32, buf: &mut [u8]) -> MpcResult<Request> {
        // SAFETY: as in `send`.
        unsafe { d.irecv_raw(src, tag, ctx, buf.as_mut_ptr(), buf.len()) }
    }

    fn drive(d0: &Device, d1: &Device) {
        for _ in 0..10_000 {
            let a = d0.progress().unwrap();
            let b = d1.progress().unwrap();
            if !a && !b {
                return;
            }
        }
        panic!("devices did not quiesce");
    }

    #[test]
    fn eager_send_recv() {
        let (d0, d1) = duo();
        let data = [7u8; 100];
        let sreq = send(&d0, 1, env(0, 0, 5), &data, false).unwrap();
        let mut buf = [0u8; 100];
        let rreq = recv(&d1, ANY_SOURCE, 5, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete());
        assert!(rreq.is_complete());
        let s = rreq.status();
        assert_eq!(s.source, 0);
        assert_eq!(s.tag, 5);
        assert_eq!(s.count, 100);
        assert!(!s.truncated);
        assert_eq!(buf, [7u8; 100]);
    }

    #[test]
    fn recv_posted_before_send() {
        let (d0, d1) = duo();
        let mut buf = [0u8; 16];
        let rreq = recv(&d1, 0, 1, 0, &mut buf).unwrap();
        assert!(!rreq.is_complete());
        let data = [3u8; 16];
        let _s = send(&d0, 1, env(0, 0, 1), &data[..16], false).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        assert_eq!(buf, [3u8; 16]);
    }

    #[test]
    fn rendezvous_large_message() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 1024,
            ..DeviceConfig::default()
        });
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        let sreq = send(&d0, 1, env(0, 0, 9), &data, false).unwrap();
        assert!(
            !sreq.is_complete(),
            "rendezvous send cannot complete before CTS"
        );
        let mut buf = vec![0u8; data.len()];
        let rreq = recv(&d1, 0, 9, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete());
        assert!(rreq.is_complete());
        assert_eq!(rreq.status().count, data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn rendezvous_unexpected_rts_then_recv() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 64,
            ..DeviceConfig::default()
        });
        let data = vec![0xA5u8; 4096];
        let sreq = send(&d0, 1, env(0, 0, 2), &data, false).unwrap();
        // Let the RTS land unexpected.
        drive(&d0, &d1);
        assert_eq!(d1.queue_depths().1, 1, "RTS queued unexpected");
        let mut buf = vec![0u8; 4096];
        let rreq = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf).unwrap();
        drive(&d0, &d1);
        assert!(sreq.is_complete() && rreq.is_complete());
        assert_eq!(buf, data);
    }

    #[test]
    fn tag_and_source_matching_with_wildcards() {
        let (d0, d1) = duo();
        let a = [1u8; 4];
        let b = [2u8; 4];
        send(&d0, 1, env(0, 0, 10), &a[..4], false).unwrap();
        send(&d0, 1, env(0, 0, 20), &b[..4], false).unwrap();
        drive(&d0, &d1);
        // Receive tag 20 first even though tag 10 arrived first.
        let mut buf = [0u8; 4];
        let r = recv(&d1, ANY_SOURCE, 20, 0, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r.is_complete());
        assert_eq!(buf, [2u8; 4]);
        // Wildcard then picks up the remaining tag-10 message.
        let mut buf2 = [0u8; 4];
        let r2 = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf2[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r2.is_complete());
        assert_eq!(r2.status().tag, 10);
        assert_eq!(buf2, [1u8; 4]);
    }

    #[test]
    fn non_overtaking_order_same_envelope() {
        let (d0, d1) = duo();
        for i in 0..5u8 {
            let data = [i; 8];
            send(&d0, 1, env(0, 0, 1), &data[..8], false).unwrap();
        }
        drive(&d0, &d1);
        for i in 0..5u8 {
            let mut buf = [0u8; 8];
            let r = recv(&d1, 0, 1, 0, &mut buf[..8]).unwrap();
            drive(&d0, &d1);
            assert!(r.is_complete());
            assert_eq!(
                buf, [i; 8],
                "messages with equal envelopes must not overtake"
            );
        }
    }

    #[test]
    fn synchronous_send_completes_only_after_match() {
        let (d0, d1) = duo();
        let data = [9u8; 32];
        let sreq = send(&d0, 1, env(0, 0, 7), &data[..32], true).unwrap();
        drive(&d0, &d1);
        assert!(
            !sreq.is_complete(),
            "ssend must wait for the receiver to match"
        );
        let mut buf = [0u8; 32];
        let rreq = recv(&d1, 0, 7, 0, &mut buf[..32]).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        assert!(sreq.is_complete(), "matched ⇒ acknowledged ⇒ complete");
    }

    #[test]
    fn truncation_is_flagged() {
        let (d0, d1) = duo();
        let data = [1u8; 100];
        send(&d0, 1, env(0, 0, 3), &data[..100], false).unwrap();
        let mut small = [0u8; 10];
        let rreq = recv(&d1, 0, 3, 0, &mut small[..10]).unwrap();
        drive(&d0, &d1);
        assert!(rreq.is_complete());
        let s = rreq.status();
        assert!(s.truncated);
        assert_eq!(s.count, 10);
        assert_eq!(small, [1u8; 10]);
    }

    #[test]
    fn self_send_and_recv() {
        let (d0, _d1) = duo();
        let data = [5u8; 64];
        let s = send(&d0, 0, env(0, 0, 4), &data[..64], false).unwrap();
        let mut buf = [0u8; 64];
        let r = recv(&d0, 0, 4, 0, &mut buf[..64]).unwrap();
        d0.progress().unwrap();
        assert!(s.is_complete() && r.is_complete());
        assert_eq!(buf, [5u8; 64]);
    }

    #[test]
    fn contexts_isolate_messages() {
        let (d0, d1) = duo();
        let a = [1u8; 4];
        let mut e = env(0, 0, 1);
        e.context = 77;
        send(&d0, 1, e, &a, false).unwrap();
        drive(&d0, &d1);
        // A receive on context 0 must not see the context-77 message.
        let mut buf = [0u8; 4];
        let r = recv(&d1, ANY_SOURCE, ANY_TAG, 0, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(!r.is_complete());
        // The right context matches.
        let r2 = recv(&d1, ANY_SOURCE, ANY_TAG, 77, &mut buf[..4]).unwrap();
        drive(&d0, &d1);
        assert!(r2.is_complete());
    }

    #[test]
    fn iprobe_reports_without_consuming() {
        let (d0, d1) = duo();
        let data = [8u8; 24];
        send(&d0, 1, env(0, 0, 6), &data[..24], false).unwrap();
        drive(&d0, &d1);
        let st = d1
            .iprobe(ANY_SOURCE, ANY_TAG, 0)
            .unwrap()
            .expect("message probed");
        assert_eq!(st.count, 24);
        assert_eq!(st.tag, 6);
        // Still there.
        assert!(d1.iprobe(0, 6, 0).unwrap().is_some());
        let mut buf = [0u8; 24];
        let r = recv(&d1, 0, 6, 0, &mut buf[..24]).unwrap();
        drive(&d0, &d1);
        assert!(r.is_complete());
        assert!(
            d1.iprobe(0, 6, 0).unwrap().is_none(),
            "consumed by the receive"
        );
    }

    #[test]
    fn wait_with_drives_progress() {
        let (d0, d1) = duo();
        let data = [2u8; 50];
        let mut buf = [0u8; 50];
        let rreq = recv(&d1, 0, 1, 0, &mut buf[..50]).unwrap();
        send(&d0, 1, env(0, 0, 1), &data[..50], false).unwrap();
        // d1 drives both sides here because shm links need no peer pump —
        // but the sender must flush; pump it once.
        d0.progress().unwrap();
        let mut polls = 0;
        let st = d1
            .wait_with(&rreq, || {
                polls += 1;
            })
            .unwrap();
        assert!(polls >= 1, "yield hook invoked");
        assert_eq!(st.count, 50);
        assert_eq!(buf, [2u8; 50]);
    }

    #[test]
    fn send_to_unknown_rank_is_invalid() {
        let (d0, _d1) = duo();
        let data = [0u8; 4];
        assert!(matches!(
            send(&d0, 9, env(0, 0, 1), &data[..4], false),
            Err(MpcError::InvalidRank(9))
        ));
    }

    // --------------------------------------------------------------
    // Asynchronous progress
    // --------------------------------------------------------------

    /// A wait parked in the backoff sleep tier must be woken by progress
    /// another thread makes — not wait out the sleep quantum. The quantum
    /// here is absurdly long so a missed wakeup fails loudly (hangs the
    /// test harness timeout) rather than passing slowly.
    #[test]
    fn parked_wait_is_woken_by_external_progress() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 64,
            wait_backoff: motor_pal::BackoffConfig {
                spin_limit: 1,
                yield_limit: 1,
                sleep: Some(Duration::from_secs(3600)),
            },
            ..DeviceConfig::default()
        });
        let data = vec![0x42u8; 4096];
        let sreq = send(&d0, 1, env(0, 0, 1), &data, false).unwrap();

        let d0c = Arc::clone(&d0);
        let d1c = Arc::clone(&d1);
        let driver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let mut buf = vec![0u8; 4096];
            let rreq = recv(&d1c, 0, 1, 0, &mut buf).unwrap();
            for _ in 0..10_000 {
                if rreq.is_complete() {
                    break;
                }
                d1c.progress_batched(4, true).unwrap();
                d0c.progress_batched(4, true).unwrap();
            }
            assert!(rreq.is_complete());
            assert_eq!(buf, vec![0x42u8; 4096]);
        });

        let start = std::time::Instant::now();
        let _st = d0.wait_with(&sreq, || {}).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(600),
            "woken by notification, not the timer"
        );
        driver.join().unwrap();
    }

    /// Stealable progress: a third party driving the steal set completes
    /// a rendezvous between two devices neither of which pumps itself.
    #[test]
    fn stealable_progress_completes_compute_bound_peer() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 64,
            ..DeviceConfig::default()
        });
        let set = ProgressSet::new();
        set.register(&d0);
        set.register(&d1);
        d0.install_steal_set(Arc::clone(&set));
        d1.install_steal_set(Arc::clone(&set));

        let data = vec![0x5Au8; 8192];
        let sreq = send(&d0, 1, env(0, 0, 3), &data, false).unwrap();
        let mut buf = vec![0u8; 8192];
        let rreq = recv(&d1, 0, 3, 0, &mut buf).unwrap();
        // "Rank 2" steals on behalf of both compute-bound ranks.
        for _ in 0..10_000 {
            if sreq.is_complete() && rreq.is_complete() {
                break;
            }
            set.steal(2);
        }
        assert!(sreq.is_complete() && rreq.is_complete());
        assert_eq!(buf, data);
        let snap = d0.metrics().snapshot();
        assert!(
            snap.get(Metric::ProgressSteals) > 0,
            "steal sweeps were counted"
        );
    }

    /// Completion batching: one batched poll on each side finishes a full
    /// rendezvous (RTS→CTS→data→done), where single passes would need a
    /// poll per protocol leg.
    #[test]
    fn progress_batched_completes_rendezvous_in_one_poll() {
        let (d0, d1) = duo_with(DeviceConfig {
            eager_threshold: 64,
            ..DeviceConfig::default()
        });
        let data = vec![9u8; 4096];
        let sreq = send(&d0, 1, env(0, 0, 8), &data, false).unwrap();
        let mut buf = vec![0u8; 4096];
        let rreq = recv(&d1, 0, 8, 0, &mut buf).unwrap();
        // RTS flushed by the send's own pass; one batched poll per side:
        // d1 matches + sends CTS, d0 streams the window, d1 completes.
        d1.progress_batched(4, false).unwrap();
        d0.progress_batched(4, false).unwrap();
        d1.progress_batched(4, false).unwrap();
        assert!(sreq.is_complete(), "sender done after its batched poll");
        assert!(rreq.is_complete(), "receiver drained data in-batch");
        assert_eq!(buf, data);
        let snap = d1.metrics().snapshot();
        assert!(
            snap.get(Metric::ProgressOpsCompleted) >= 1,
            "batched completions are counted"
        );
    }

    /// Lock-split smoke (the TSan target): two threads send from the same
    /// device to different peers while an engine-style thread pumps all
    /// three devices concurrently.
    #[test]
    fn concurrent_senders_with_engine_thread() {
        let d0 = Device::new(0, DeviceConfig::default());
        let d1 = Device::new(1, DeviceConfig::default());
        let d2 = Device::new(2, DeviceConfig::default());
        let (a, b) = shm_pair(64 * 1024);
        d0.set_link(1, LinkState::new(Box::new(a)));
        d1.set_link(0, LinkState::new(Box::new(b)));
        let (c, d) = shm_pair(64 * 1024);
        d0.set_link(2, LinkState::new(Box::new(c)));
        d2.set_link(0, LinkState::new(Box::new(d)));

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let engine = {
            let (d0, d1, d2) = (Arc::clone(&d0), Arc::clone(&d1), Arc::clone(&d2));
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    d0.progress_batched(4, true).unwrap();
                    d1.progress_batched(4, true).unwrap();
                    d2.progress_batched(4, true).unwrap();
                }
            })
        };

        const N: usize = 64;
        let senders: Vec<_> = [1usize, 2usize]
            .into_iter()
            .map(|peer| {
                let d0 = Arc::clone(&d0);
                std::thread::spawn(move || {
                    for i in 0..N {
                        let data = [peer as u8; 128];
                        let r = send(&d0, peer, env(0, 0, i as i32), &data, false).unwrap();
                        d0.wait_with(&r, || {}).unwrap();
                    }
                })
            })
            .collect();

        for (peer, dev) in [(1usize, &d1), (2usize, &d2)] {
            for i in 0..N {
                let mut buf = [0u8; 128];
                let r = recv(dev, 0, i as i32, 0, &mut buf).unwrap();
                dev.wait_with(&r, || {}).unwrap();
                assert_eq!(buf, [peer as u8; 128]);
            }
        }
        for s in senders {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        engine.join().unwrap();
    }
}
