//! Typed message tags.
//!
//! Point-to-point and probe operations historically took a bare `i32` tag
//! with `-1` meaning "any tag" (the `MPI_ANY_TAG` sentinel) — the same
//! two-encodings problem [`crate::Source`] solved for ranks in PR 1.
//! [`Tag`] replaces the bare integer across the public `Comm`/`Mp`/`Oomp`
//! surfaces: a concrete tag or the explicit [`Tag::ANY`] wildcard. Plain
//! `i32` tags convert implicitly, so `comm.recv_bytes(&mut buf, 3, 7)`
//! still reads naturally while wildcard receives say what they mean:
//! `mp.probe(Source::Any, Tag::ANY)`.

use std::fmt;

/// A message tag: a concrete application tag or the receive-side wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(i32);

impl Tag {
    /// Match any tag on the receive/probe side (`MPI_ANY_TAG`).
    pub const ANY: Tag = Tag(crate::device::ANY_TAG);

    /// A concrete tag.
    pub const fn new(tag: i32) -> Tag {
        Tag(tag)
    }

    /// The device-layer wire encoding (`-1` wildcard, tag otherwise).
    pub const fn to_device(self) -> i32 {
        self.0
    }

    /// The concrete tag value, if this is not the wildcard.
    pub const fn value(self) -> Option<i32> {
        if self.0 == crate::device::ANY_TAG {
            None
        } else {
            Some(self.0)
        }
    }

    /// Whether this is the wildcard.
    pub const fn is_any(self) -> bool {
        self.0 == crate::device::ANY_TAG
    }
}

impl From<i32> for Tag {
    fn from(tag: i32) -> Tag {
        Tag(tag)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            f.write_str("any tag")
        } else {
            write!(f, "tag {}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Tag::from(4), Tag::new(4));
        assert_eq!(Tag::new(4).to_device(), 4);
        assert_eq!(Tag::ANY.to_device(), crate::device::ANY_TAG);
        assert_eq!(Tag::new(7).value(), Some(7));
        assert_eq!(Tag::ANY.value(), None);
        assert!(Tag::ANY.is_any());
        assert!(!Tag::new(0).is_any());
        // The legacy sentinel converts to the wildcard, so call sites
        // passing the old `ANY_TAG` constant keep their meaning.
        assert!(Tag::from(crate::ANY_TAG).is_any());
    }

    #[test]
    fn display() {
        assert_eq!(Tag::new(9).to_string(), "tag 9");
        assert_eq!(Tag::ANY.to_string(), "any tag");
    }
}
