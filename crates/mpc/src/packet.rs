//! Wire packet format of the CH3-style device.
//!
//! Every frame on a link is `[frame_len: u32][kind: u8][body ...]` where
//! `frame_len` counts the bytes after the length field itself (kind +
//! body). The packet kinds implement MPICH2's eager and rendezvous
//! protocols plus the synchronous-send acknowledgement:
//!
//! | kind | name      | body |
//! |------|-----------|------|
//! | 0    | Eager     | [`Envelope`] + message data inline |
//! | 1    | RndvRts   | [`Envelope`] (request-to-send; no data) |
//! | 2    | RndvCts   | `sreq: u64, rreq: u64` (clear-to-send) |
//! | 3    | RndvData  | `rreq: u64` + message data |
//! | 4    | SyncAck   | `sreq: u64` (synchronous send matched) |

use crate::error::{MpcError, MpcResult};

/// Frame header length on the wire: 4-byte length + 1-byte kind.
pub const FRAME_HEADER: usize = 5;

/// Packet kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Message data carried inline (small messages).
    Eager = 0,
    /// Rendezvous request-to-send.
    RndvRts = 1,
    /// Rendezvous clear-to-send.
    RndvCts = 2,
    /// Rendezvous data transfer.
    RndvData = 3,
    /// Synchronous-send matched acknowledgement.
    SyncAck = 4,
}

impl PacketKind {
    /// Decode a kind byte.
    pub fn from_u8(b: u8) -> MpcResult<PacketKind> {
        Ok(match b {
            0 => PacketKind::Eager,
            1 => PacketKind::RndvRts,
            2 => PacketKind::RndvCts,
            3 => PacketKind::RndvData,
            4 => PacketKind::SyncAck,
            other => return Err(MpcError::Protocol(format!("unknown packet kind {other}"))),
        })
    }
}

/// Envelope flags.
pub mod env_flags {
    /// Synchronous send: receiver must acknowledge the match.
    pub const SYNC: u8 = 1 << 0;
}

/// The match envelope carried by Eager and RndvRts packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sender's rank *within the communicator* (what the receiver matches
    /// and reports in `Status`).
    pub src: u32,
    /// Sender's *global* rank (routing key for CTS / SyncAck replies).
    pub gsrc: u32,
    /// Message tag.
    pub tag: i32,
    /// Communicator context id.
    pub context: u32,
    /// Full message data length in bytes.
    pub len: u64,
    /// Sender-side request id (for CTS / SyncAck correlation).
    pub sreq: u64,
    /// Flag bits; see [`env_flags`].
    pub flags: u8,
}

/// Encoded envelope size.
pub const ENVELOPE_LEN: usize = 4 + 4 + 4 + 4 + 8 + 8 + 1;

impl Envelope {
    /// Append the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.gsrc.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.context.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.sreq.to_le_bytes());
        out.push(self.flags);
    }

    /// Decode from the start of `b`.
    pub fn decode(b: &[u8]) -> MpcResult<Envelope> {
        if b.len() < ENVELOPE_LEN {
            return Err(MpcError::Protocol(format!(
                "short envelope: {} bytes",
                b.len()
            )));
        }
        Ok(Envelope {
            src: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            gsrc: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            tag: i32::from_le_bytes(b[8..12].try_into().unwrap()),
            context: u32::from_le_bytes(b[12..16].try_into().unwrap()),
            len: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            sreq: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            flags: b[32],
        })
    }

    /// Whether the sender requested a synchronous-send acknowledgement.
    pub fn is_sync(&self) -> bool {
        self.flags & env_flags::SYNC != 0
    }
}

/// Build an Eager frame: header + envelope + data.
pub fn encode_eager(env: &Envelope, data: &[u8]) -> Vec<u8> {
    debug_assert_eq!(env.len as usize, data.len());
    let body_len = 1 + ENVELOPE_LEN + data.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PacketKind::Eager as u8);
    env.encode(&mut out);
    out.extend_from_slice(data);
    out
}

/// Build a RndvRts frame.
pub fn encode_rts(env: &Envelope) -> Vec<u8> {
    let body_len = 1 + ENVELOPE_LEN;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PacketKind::RndvRts as u8);
    env.encode(&mut out);
    out
}

/// Build a RndvCts frame.
pub fn encode_cts(sreq: u64, rreq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 16);
    out.extend_from_slice(&(17u32).to_le_bytes());
    out.push(PacketKind::RndvCts as u8);
    out.extend_from_slice(&sreq.to_le_bytes());
    out.extend_from_slice(&rreq.to_le_bytes());
    out
}

/// Build the *header* of a RndvData frame (the data itself is streamed
/// separately, possibly zero-copy from a pinned managed buffer).
pub fn encode_rndv_data_header(rreq: u64, data_len: usize) -> Vec<u8> {
    let body_len = 1 + 8 + data_len;
    let mut out = Vec::with_capacity(4 + 1 + 8);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(PacketKind::RndvData as u8);
    out.extend_from_slice(&rreq.to_le_bytes());
    out
}

/// Build a SyncAck frame.
pub fn encode_sync_ack(sreq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8);
    out.extend_from_slice(&(9u32).to_le_bytes());
    out.push(PacketKind::SyncAck as u8);
    out.extend_from_slice(&sreq.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope {
            src: 3,
            gsrc: 3,
            tag: -7,
            context: 11,
            len: 5,
            sreq: 0xDEAD_BEEF,
            flags: env_flags::SYNC,
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = env();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), ENVELOPE_LEN);
        let d = Envelope::decode(&buf).unwrap();
        assert_eq!(d, e);
        assert!(d.is_sync());
    }

    #[test]
    fn short_envelope_is_protocol_error() {
        assert!(matches!(
            Envelope::decode(&[0u8; 5]),
            Err(MpcError::Protocol(_))
        ));
    }

    #[test]
    fn eager_frame_layout() {
        let e = env();
        let frame = encode_eager(&e, b"hello");
        let body_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, frame.len() - 4);
        assert_eq!(PacketKind::from_u8(frame[4]).unwrap(), PacketKind::Eager);
        let de = Envelope::decode(&frame[5..]).unwrap();
        assert_eq!(de, e);
        assert_eq!(&frame[5 + ENVELOPE_LEN..], b"hello");
    }

    #[test]
    fn control_frames() {
        let cts = encode_cts(1, 2);
        assert_eq!(PacketKind::from_u8(cts[4]).unwrap(), PacketKind::RndvCts);
        assert_eq!(u64::from_le_bytes(cts[5..13].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(cts[13..21].try_into().unwrap()), 2);

        let ack = encode_sync_ack(77);
        assert_eq!(PacketKind::from_u8(ack[4]).unwrap(), PacketKind::SyncAck);
        assert_eq!(u64::from_le_bytes(ack[5..13].try_into().unwrap()), 77);
    }

    #[test]
    fn rndv_data_header_accounts_for_streamed_data() {
        let h = encode_rndv_data_header(42, 1000);
        let body_len = u32::from_le_bytes(h[0..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, 1 + 8 + 1000);
        assert_eq!(h.len(), 4 + 1 + 8, "header only; data streamed separately");
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(PacketKind::from_u8(99).is_err());
    }
}
