//! The channel layer: per-link framing, parsing and send queues.
//!
//! MPICH2's channel layer "is specifically responsible for data transfer"
//! (paper §6). A [`LinkState`] wraps one PAL byte link (shared-memory ring
//! or TCP socket) and implements:
//!
//! * **Outgoing**: a queue of pending frames. Control and eager frames are
//!   owned byte vectors; rendezvous payloads are *raw windows* into the
//!   sender's buffer — the zero-copy path that makes pinning necessary in
//!   a managed environment (paper §2.3).
//! * **Incoming**: an incremental parser that buffers control/eager frames
//!   whole but streams rendezvous data directly into the posted receive
//!   buffer (zero-copy on the receive side), asking the device for the
//!   destination window via the [`PacketSink`] callback interface.

use std::collections::VecDeque;
use std::sync::Arc;

use motor_obs::trace::rndv_ctl;
use motor_obs::{EventKind, Metric, MetricsRegistry};
use motor_pal::{BoxedLink, PalError};

use crate::error::{MpcError, MpcResult};
use crate::packet::{Envelope, PacketKind, ENVELOPE_LEN};
use crate::request::Request;

/// Where a rendezvous stream should land.
pub enum RndvDest {
    /// Write into this raw window (pointer stability is the caller's
    /// pinning obligation). `(ptr, capacity)`.
    Raw(*mut u8, usize),
    /// No matching receive (protocol error recovery): discard the bytes.
    Discard,
}

/// Device-side packet handler invoked by the link parser.
pub trait PacketSink {
    /// A complete eager message arrived.
    fn on_eager(&mut self, env: Envelope, data: &[u8]);
    /// A rendezvous request-to-send arrived.
    fn on_rts(&mut self, env: Envelope);
    /// A clear-to-send arrived for our send request `sreq`.
    fn on_cts(&mut self, sreq: u64, rreq: u64);
    /// A synchronous-send acknowledgement arrived for `sreq`.
    fn on_sync_ack(&mut self, sreq: u64);
    /// A rendezvous data stream for receive request `rreq` is starting;
    /// return its destination window.
    fn rndv_dest(&mut self, rreq: u64, total: usize) -> RndvDest;
    /// The rendezvous stream for `rreq` finished.
    fn on_rndv_complete(&mut self, rreq: u64, total: usize);
}

/// One queued outgoing item.
enum OutItem {
    /// An owned frame (header + control/eager body).
    Bytes { buf: Vec<u8>, off: usize },
    /// A raw zero-copy window (rendezvous payload). The pointer is stored
    /// as `usize` and must remain valid until fully flushed — the sender's
    /// pin guarantees this.
    Raw {
        ptr: usize,
        len: usize,
        off: usize,
        done: Option<Request>,
    },
}

enum InState {
    /// Reading the 5-byte frame header.
    Header { buf: [u8; 5], got: usize },
    /// Buffering a whole control/eager body.
    Body {
        kind: PacketKind,
        need: usize,
        buf: Vec<u8>,
    },
    /// Reading the 8-byte rreq prefix of a RndvData frame.
    RndvPrefix {
        buf: [u8; 8],
        got: usize,
        data_len: usize,
    },
    /// Streaming rendezvous payload into the destination window.
    Stream {
        rreq: u64,
        dest: RndvDest,
        total: usize,
        written: usize,
    },
}

/// Framing and queueing state for one peer link.
pub struct LinkState {
    link: BoxedLink,
    outq: VecDeque<OutItem>,
    in_state: InState,
    /// Scratch buffer for discarded streams.
    scratch: Vec<u8>,
    /// Per-rank registry for frame/byte accounting (attached by the device
    /// that owns this link; standalone links go unmetered).
    metrics: Option<Arc<MetricsRegistry>>,
    /// Global rank at the far end (set by the device at wiring time; used
    /// to stamp sender-side rendezvous completion events).
    peer: Option<usize>,
}

// SAFETY: the raw pointers held in `OutItem::Raw` and `InState::Stream`
// refer to buffers whose stability (pinning) and liveness the device layer
// guarantees for the duration of the operation; the struct itself is only
// accessed under its per-link mutex in the device's link table (the lock
// that replaced the old whole-device progress lock), so at most one
// thread — rank, progress engine, or stealing sibling — touches it at a
// time.
unsafe impl Send for LinkState {}

impl LinkState {
    /// Wrap a connected link.
    pub fn new(link: BoxedLink) -> Self {
        LinkState {
            link,
            outq: VecDeque::new(),
            in_state: InState::Header {
                buf: [0; 5],
                got: 0,
            },
            scratch: vec![0u8; 16 * 1024],
            metrics: None,
            peer: None,
        }
    }

    /// Report frame/byte traffic into `registry` from now on.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Record which global rank this link reaches.
    pub fn set_peer(&mut self, peer: usize) {
        self.peer = Some(peer);
    }

    #[inline]
    fn meter(&self, m: Metric, n: u64) {
        if n != 0 {
            if let Some(r) = &self.metrics {
                r.add(m, n);
            }
        }
    }

    /// Queue an owned frame.
    pub fn queue_bytes(&mut self, buf: Vec<u8>) {
        self.outq.push_back(OutItem::Bytes { buf, off: 0 });
    }

    /// Queue a raw zero-copy window; `done` (if any) completes when the
    /// window has been fully handed to the transport (MPI send-completion
    /// semantics: the buffer is then reusable).
    pub fn queue_raw(&mut self, ptr: *const u8, len: usize, done: Option<Request>) {
        self.outq.push_back(OutItem::Raw {
            ptr: ptr as usize,
            len,
            off: 0,
            done,
        });
    }

    /// Whether any outgoing data is still queued.
    pub fn has_pending_out(&self) -> bool {
        !self.outq.is_empty()
    }

    /// Drop everything still queued and return the requests bound to
    /// zero-copy windows. Called when the link dies: those requests can
    /// never complete and their waiters must fail over to `PeerClosed`
    /// instead of spinning on a queue nobody will ever flush again.
    pub fn take_undelivered_reqs(&mut self) -> Vec<Request> {
        self.outq
            .drain(..)
            .filter_map(|item| match item {
                OutItem::Raw { done, .. } => done,
                OutItem::Bytes { .. } => None,
            })
            .collect()
    }

    /// Flush as much outgoing data as the link accepts. Returns `true` if
    /// any bytes moved.
    pub fn pump_out(&mut self) -> MpcResult<bool> {
        let mut progressed = false;
        let (mut bytes_out, mut frames_out) = (0u64, 0u64);
        while let Some(front) = self.outq.front_mut() {
            let wrote = match front {
                OutItem::Bytes { buf, off } => {
                    let n = self.link.try_write(&buf[*off..])?;
                    *off += n;
                    let finished = *off == buf.len();
                    if finished {
                        self.outq.pop_front();
                    }
                    (n, finished)
                }
                OutItem::Raw {
                    ptr,
                    len,
                    off,
                    done,
                } => {
                    // SAFETY: the sender pinned (or owns) this window until
                    // `done` completes; see `queue_raw`.
                    let slice = unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) };
                    let n = self.link.try_write(&slice[*off..])?;
                    *off += n;
                    let finished = *off == *len;
                    if finished {
                        if let Some(req) = done.take() {
                            // Sender-side rendezvous completion: the whole
                            // window has been handed to the transport.
                            if let (Some(r), Some(peer)) = (&self.metrics, self.peer) {
                                r.event3(
                                    EventKind::RndvDone,
                                    req.id(),
                                    *len as u64,
                                    rndv_ctl(peer, true),
                                );
                            }
                            req.complete();
                        }
                        self.outq.pop_front();
                    }
                    (n, finished)
                }
            };
            progressed |= wrote.0 > 0;
            bytes_out += wrote.0 as u64;
            frames_out += wrote.1 as u64;
            if !wrote.1 {
                break; // link is full
            }
        }
        self.meter(Metric::ChanBytesOut, bytes_out);
        self.meter(Metric::ChanFramesOut, frames_out);
        Ok(progressed)
    }

    /// Parse as much incoming data as available, dispatching complete
    /// packets to `sink`. Returns `true` if any bytes moved.
    pub fn pump_in(&mut self, sink: &mut dyn PacketSink) -> MpcResult<bool> {
        let (mut bytes_in, mut frames_in) = (0u64, 0u64);
        let res = self.pump_in_inner(sink, &mut bytes_in, &mut frames_in);
        self.meter(Metric::ChanBytesIn, bytes_in);
        self.meter(Metric::ChanFramesIn, frames_in);
        res
    }

    fn pump_in_inner(
        &mut self,
        sink: &mut dyn PacketSink,
        bytes_in: &mut u64,
        frames_in: &mut u64,
    ) -> MpcResult<bool> {
        let mut progressed = false;
        loop {
            match &mut self.in_state {
                InState::Header { buf, got } => {
                    let n = match self.link.try_read(&mut buf[*got..]) {
                        Ok(n) => n,
                        Err(PalError::Disconnected) if *got == 0 && !progressed => {
                            return Err(MpcError::Transport(PalError::Disconnected))
                        }
                        Err(e) => return Err(e.into()),
                    };
                    if n == 0 {
                        return Ok(progressed);
                    }
                    progressed = true;
                    *bytes_in += n as u64;
                    *got += n;
                    if *got < 5 {
                        continue;
                    }
                    let frame_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
                    let kind = PacketKind::from_u8(buf[4])?;
                    if frame_len == 0 {
                        return Err(MpcError::Protocol("zero-length frame".into()));
                    }
                    let body = frame_len - 1;
                    self.in_state = match kind {
                        PacketKind::RndvData => {
                            if body < 8 {
                                return Err(MpcError::Protocol("short rndv frame".into()));
                            }
                            InState::RndvPrefix {
                                buf: [0; 8],
                                got: 0,
                                data_len: body - 8,
                            }
                        }
                        k => InState::Body {
                            kind: k,
                            need: body,
                            buf: Vec::with_capacity(body),
                        },
                    };
                }
                InState::Body { kind, need, buf } => {
                    let missing = *need - buf.len();
                    if missing > 0 {
                        let start = buf.len();
                        buf.resize(*need, 0);
                        let n = self.link.try_read(&mut buf[start..])?;
                        buf.truncate(start + n);
                        if n == 0 {
                            return Ok(progressed);
                        }
                        progressed = true;
                        *bytes_in += n as u64;
                        if buf.len() < *need {
                            continue;
                        }
                    }
                    let kind = *kind;
                    let body = std::mem::take(buf);
                    self.in_state = InState::Header {
                        buf: [0; 5],
                        got: 0,
                    };
                    *frames_in += 1;
                    match kind {
                        PacketKind::Eager => {
                            let env = Envelope::decode(&body)?;
                            sink.on_eager(env, &body[ENVELOPE_LEN..]);
                        }
                        PacketKind::RndvRts => {
                            let env = Envelope::decode(&body)?;
                            sink.on_rts(env);
                        }
                        PacketKind::RndvCts => {
                            if body.len() != 16 {
                                return Err(MpcError::Protocol("bad CTS".into()));
                            }
                            let sreq = u64::from_le_bytes(body[0..8].try_into().unwrap());
                            let rreq = u64::from_le_bytes(body[8..16].try_into().unwrap());
                            sink.on_cts(sreq, rreq);
                        }
                        PacketKind::SyncAck => {
                            if body.len() != 8 {
                                return Err(MpcError::Protocol("bad SyncAck".into()));
                            }
                            sink.on_sync_ack(u64::from_le_bytes(body[0..8].try_into().unwrap()));
                        }
                        PacketKind::RndvData => unreachable!("handled in Header state"),
                    }
                }
                InState::RndvPrefix { buf, got, data_len } => {
                    let n = self.link.try_read(&mut buf[*got..])?;
                    if n == 0 {
                        return Ok(progressed);
                    }
                    progressed = true;
                    *bytes_in += n as u64;
                    *got += n;
                    if *got < 8 {
                        continue;
                    }
                    let rreq = u64::from_le_bytes(*buf);
                    let total = *data_len;
                    let dest = sink.rndv_dest(rreq, total);
                    if total == 0 {
                        sink.on_rndv_complete(rreq, 0);
                        self.in_state = InState::Header {
                            buf: [0; 5],
                            got: 0,
                        };
                        *frames_in += 1;
                    } else {
                        self.in_state = InState::Stream {
                            rreq,
                            dest,
                            total,
                            written: 0,
                        };
                    }
                }
                InState::Stream {
                    rreq,
                    dest,
                    total,
                    written,
                } => {
                    let remaining = *total - *written;
                    let n = match dest {
                        RndvDest::Raw(ptr, cap) => {
                            let take = remaining.min(*cap - *written);
                            if take == 0 {
                                // Buffer exhausted but stream continues:
                                // drain the overflow into scratch.
                                let take = remaining.min(self.scratch.len());
                                self.link.try_read(&mut self.scratch[..take])?
                            } else {
                                // SAFETY: window provided by the device;
                                // receiver pinned/owns it for the stream.
                                let slice = unsafe {
                                    std::slice::from_raw_parts_mut(ptr.add(*written), take)
                                };
                                self.link.try_read(slice)?
                            }
                        }
                        RndvDest::Discard => {
                            let take = remaining.min(self.scratch.len());
                            self.link.try_read(&mut self.scratch[..take])?
                        }
                    };
                    if n == 0 {
                        return Ok(progressed);
                    }
                    progressed = true;
                    *bytes_in += n as u64;
                    *written += n;
                    if *written == *total {
                        let rreq = *rreq;
                        let total = *total;
                        self.in_state = InState::Header {
                            buf: [0; 5],
                            got: 0,
                        };
                        *frames_in += 1;
                        sink.on_rndv_complete(rreq, total);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet;
    use crate::request::RequestState;
    use motor_pal::link::shm_pair;

    #[derive(Default)]
    struct RecordingSink {
        eager: Vec<(Envelope, Vec<u8>)>,
        rts: Vec<Envelope>,
        cts: Vec<(u64, u64)>,
        acks: Vec<u64>,
        rndv_buf: Vec<u8>,
        rndv_done: Vec<(u64, usize)>,
    }

    impl PacketSink for RecordingSink {
        fn on_eager(&mut self, env: Envelope, data: &[u8]) {
            self.eager.push((env, data.to_vec()));
        }
        fn on_rts(&mut self, env: Envelope) {
            self.rts.push(env);
        }
        fn on_cts(&mut self, sreq: u64, rreq: u64) {
            self.cts.push((sreq, rreq));
        }
        fn on_sync_ack(&mut self, sreq: u64) {
            self.acks.push(sreq);
        }
        fn rndv_dest(&mut self, _rreq: u64, total: usize) -> RndvDest {
            self.rndv_buf = vec![0u8; total];
            RndvDest::Raw(self.rndv_buf.as_mut_ptr(), total)
        }
        fn on_rndv_complete(&mut self, rreq: u64, total: usize) {
            self.rndv_done.push((rreq, total));
        }
    }

    fn env(len: u64) -> Envelope {
        Envelope {
            src: 1,
            gsrc: 1,
            tag: 5,
            context: 0,
            len,
            sreq: 9,
            flags: 0,
        }
    }

    fn pump_until_idle(tx: &mut LinkState, rx: &mut LinkState, sink: &mut RecordingSink) {
        for _ in 0..10_000 {
            let a = tx.pump_out().unwrap();
            let b = rx.pump_in(sink).unwrap();
            if !a && !b && !tx.has_pending_out() {
                break;
            }
        }
    }

    fn pair() -> (LinkState, LinkState) {
        let (a, b) = shm_pair(4096);
        (LinkState::new(Box::new(a)), LinkState::new(Box::new(b)))
    }

    #[test]
    fn eager_roundtrip() {
        let (mut tx, mut rx) = pair();
        let data = b"payload".to_vec();
        tx.queue_bytes(packet::encode_eager(&env(7), &data));
        let mut sink = RecordingSink::default();
        pump_until_idle(&mut tx, &mut rx, &mut sink);
        assert_eq!(sink.eager.len(), 1);
        assert_eq!(sink.eager[0].1, data);
        assert_eq!(sink.eager[0].0.tag, 5);
    }

    #[test]
    fn control_frames_roundtrip() {
        let (mut tx, mut rx) = pair();
        tx.queue_bytes(packet::encode_rts(&env(100)));
        tx.queue_bytes(packet::encode_cts(11, 22));
        tx.queue_bytes(packet::encode_sync_ack(33));
        let mut sink = RecordingSink::default();
        pump_until_idle(&mut tx, &mut rx, &mut sink);
        assert_eq!(sink.rts.len(), 1);
        assert_eq!(sink.cts, vec![(11, 22)]);
        assert_eq!(sink.acks, vec![33]);
    }

    #[test]
    fn rndv_stream_larger_than_ring() {
        // 64 KiB payload through a 4 KiB ring: exercises streaming.
        let (mut tx, mut rx) = pair();
        let data: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
        let req = RequestState::new(1);
        tx.queue_bytes(packet::encode_rndv_data_header(42, data.len()));
        tx.queue_raw(data.as_ptr(), data.len(), Some(std::sync::Arc::clone(&req)));
        let mut sink = RecordingSink::default();
        pump_until_idle(&mut tx, &mut rx, &mut sink);
        assert!(
            req.is_complete(),
            "send request completed when fully flushed"
        );
        assert_eq!(sink.rndv_done, vec![(42, 65536)]);
        assert_eq!(sink.rndv_buf, data);
    }

    #[test]
    fn interleaved_frames_parse_in_order() {
        let (mut tx, mut rx) = pair();
        for i in 0..20u8 {
            tx.queue_bytes(packet::encode_eager(&env(3), &[i, i, i]));
        }
        let mut sink = RecordingSink::default();
        pump_until_idle(&mut tx, &mut rx, &mut sink);
        assert_eq!(sink.eager.len(), 20);
        for (i, (_, d)) in sink.eager.iter().enumerate() {
            assert_eq!(d, &vec![i as u8; 3], "frames arrive in order");
        }
    }

    #[test]
    fn zero_length_eager_message() {
        let (mut tx, mut rx) = pair();
        tx.queue_bytes(packet::encode_eager(&env(0), &[]));
        let mut sink = RecordingSink::default();
        pump_until_idle(&mut tx, &mut rx, &mut sink);
        assert_eq!(sink.eager.len(), 1);
        assert!(sink.eager[0].1.is_empty());
    }

    #[test]
    fn disconnect_surfaces_as_transport_error() {
        let (tx, mut rx) = pair();
        drop(tx);
        let mut sink = RecordingSink::default();
        assert!(matches!(rx.pump_in(&mut sink), Err(MpcError::Transport(_))));
    }
}
