//! MPI process groups — the `MPI::Group` object of the MPI-2 C++ object
//! model the Motor bindings are based on (paper §7: "The object model is
//! based on the official MPI-2 C++ bindings").
//!
//! A group is an ordered set of global ranks; set operations produce new
//! groups, and a communicator can be created over a group collectively.

use std::sync::Arc;

use crate::comm::Comm;
use crate::error::{MpcError, MpcResult};

/// An ordered set of processes (by global rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Arc<Vec<usize>>,
}

impl Group {
    /// Group over explicit global ranks (order significant; duplicates
    /// rejected).
    pub fn new(members: Vec<usize>) -> MpcResult<Group> {
        let mut seen = members.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(MpcError::Protocol("duplicate rank in group".into()));
        }
        Ok(Group {
            members: Arc::new(members),
        })
    }

    /// The group of a communicator (`MPI_Comm_group`).
    pub fn of(comm: &Comm) -> Group {
        Group {
            members: Arc::clone(comm.group()),
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// This process's rank within the group, if a member
    /// (`MPI_Group_rank`).
    pub fn rank_of_global(&self, global: usize) -> Option<usize> {
        self.members.iter().position(|&g| g == global)
    }

    /// Global rank of group rank `r` (`MPI_Group_translate_ranks`).
    pub fn global_of(&self, r: usize) -> MpcResult<usize> {
        self.members
            .get(r)
            .copied()
            .ok_or(MpcError::InvalidRank(r as i32))
    }

    /// Members in group order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Subset by group ranks, in the given order (`MPI_Group_incl`).
    pub fn include(&self, ranks: &[usize]) -> MpcResult<Group> {
        let mut m = Vec::with_capacity(ranks.len());
        for &r in ranks {
            m.push(self.global_of(r)?);
        }
        Group::new(m)
    }

    /// Remove the given group ranks, preserving order
    /// (`MPI_Group_excl`).
    pub fn exclude(&self, ranks: &[usize]) -> MpcResult<Group> {
        for &r in ranks {
            if r >= self.size() {
                return Err(MpcError::InvalidRank(r as i32));
            }
        }
        let m = self
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !ranks.contains(i))
            .map(|(_, &g)| g)
            .collect();
        Group::new(m)
    }

    /// Union: members of `self`, then members of `other` not in `self`
    /// (`MPI_Group_union` ordering).
    pub fn union(&self, other: &Group) -> Group {
        let mut m: Vec<usize> = self.members.as_ref().clone();
        for &g in other.members.iter() {
            if !m.contains(&g) {
                m.push(g);
            }
        }
        Group {
            members: Arc::new(m),
        }
    }

    /// Intersection, ordered as in `self` (`MPI_Group_intersection`).
    pub fn intersection(&self, other: &Group) -> Group {
        let m = self
            .members
            .iter()
            .copied()
            .filter(|g| other.members.contains(g))
            .collect();
        Group {
            members: Arc::new(m),
        }
    }

    /// Difference: members of `self` not in `other`
    /// (`MPI_Group_difference`).
    pub fn difference(&self, other: &Group) -> Group {
        let m = self
            .members
            .iter()
            .copied()
            .filter(|g| !other.members.contains(g))
            .collect();
        Group {
            members: Arc::new(m),
        }
    }
}

impl Comm {
    /// Create a communicator over a subgroup (`MPI_Comm_create`).
    /// Collective over the *parent* communicator; members of the group get
    /// the new communicator, others get `None`.
    pub fn create_from_group(&self, group: &Group) -> MpcResult<Option<Comm>> {
        // Validate: every group member must belong to the parent.
        for &g in group.members() {
            if !self.group().contains(&g) {
                return Err(MpcError::InvalidRank(g as i32));
            }
        }
        // Rank 0 of the parent allocates the context pair for everyone.
        let mut ctx = [0u32; 1];
        if self.rank() == 0 {
            ctx[0] = self
                .ctx_alloc()
                .fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        }
        self.bcast_slice(&mut ctx, 0)?;
        let me = self.global_rank(self.rank())?;
        match group.rank_of_global(me) {
            Some(new_rank) => Ok(Some(Comm::assemble(
                Arc::clone(self.device()),
                ctx[0],
                Arc::new(group.members().to_vec()),
                new_rank,
                Arc::clone(self.ctx_alloc()),
            ))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn construction_and_translation() {
        let g = Group::new(vec![4, 2, 7]).unwrap();
        assert_eq!(g.size(), 3);
        assert_eq!(g.global_of(1).unwrap(), 2);
        assert_eq!(g.rank_of_global(7), Some(2));
        assert_eq!(g.rank_of_global(9), None);
        assert!(Group::new(vec![1, 1]).is_err(), "duplicates rejected");
    }

    #[test]
    fn include_exclude() {
        let g = Group::new(vec![10, 20, 30, 40]).unwrap();
        let inc = g.include(&[3, 0]).unwrap();
        assert_eq!(inc.members(), &[40, 10]);
        let exc = g.exclude(&[1, 2]).unwrap();
        assert_eq!(exc.members(), &[10, 40]);
        assert!(g.include(&[9]).is_err());
        assert!(g.exclude(&[9]).is_err());
    }

    #[test]
    fn set_operations() {
        let a = Group::new(vec![1, 2, 3]).unwrap();
        let b = Group::new(vec![3, 4]).unwrap();
        assert_eq!(a.union(&b).members(), &[1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).members(), &[3]);
        assert_eq!(a.difference(&b).members(), &[1, 2]);
        assert!(a.intersection(&Group::new(vec![]).unwrap()).is_empty());
    }

    #[test]
    fn comm_create_from_subgroup() {
        Universe::run(4, |proc| {
            let world = proc.world();
            // The odd ranks form their own communicator.
            let odd = Group::of(world).include(&[1, 3]).unwrap();
            let sub = world.create_from_group(&odd).unwrap();
            match world.rank() {
                1 | 3 => {
                    let sub = sub.expect("member gets the communicator");
                    assert_eq!(sub.size(), 2);
                    let mut sum = [0i32];
                    sub.allreduce_slice(
                        &[world.rank() as i32],
                        &mut sum,
                        crate::dtype::ReduceOp::Sum,
                    )
                    .unwrap();
                    assert_eq!(sum[0], 4);
                }
                _ => assert!(sub.is_none(), "non-members get None"),
            }
        })
        .unwrap();
    }

    #[test]
    fn subgroup_traffic_does_not_leak_to_world() {
        Universe::run(3, |proc| {
            let world = proc.world();
            let pair = Group::of(world).include(&[0, 1]).unwrap();
            let sub = world.create_from_group(&pair).unwrap();
            if let Some(sub) = sub {
                if sub.rank() == 0 {
                    sub.send_slice(&[5i32], 1, 0).unwrap();
                } else {
                    let mut v = [0i32];
                    sub.recv_slice(&mut v, 0, 0).unwrap();
                    assert_eq!(v[0], 5);
                }
            }
            // A world-context probe on rank 2 must see nothing.
            if world.rank() == 2 {
                assert!(world
                    .iprobe(crate::Source::Any, crate::ANY_TAG)
                    .unwrap()
                    .is_none());
            }
            world.barrier().unwrap();
        })
        .unwrap();
    }
}
