//! The asynchronous progress engine.
//!
//! The base runtime only makes communication progress when *some* thread
//! calls into the device — posting an operation, testing, or blocking in
//! [`Device::wait_with`]. A rank that computes while transfers are in
//! flight therefore leaves its device idle, which is exactly why the
//! measured comm/compute overlap sits far below 1.0 (EXPERIMENTS.md).
//! Following *MPI Progress For All* and *Examining MPI and its Extensions
//! for Asynchronous Multithreaded Communication*, this module adds two
//! asynchronous progress models on top of the lock-split device:
//!
//! * **`thread`** — a dedicated progress thread per device
//!   ([`ProgressEngine`]). Each thread runs batched pump passes
//!   ([`Device::progress_batched`]) while work moves and parks on the
//!   device's completion [`Waker`] when idle, so an idle engine costs a
//!   parked thread, not a spinning core.
//! * **`steal`** — `poke`-style stealable progress ([`ProgressSet`]): any
//!   rank thread parked in a wait drives its *siblings'* devices with
//!   non-blocking passes ([`Device::try_progress`]), so one blocked rank
//!   lends its cycles to ranks that are busy computing.
//!
//! Both models are **off by default**: mode `off` takes the exact legacy
//! code path, which the progress-conformance suite pins bit-for-bit.
//! Every engine entry point is also callable inline, which is how
//! `SimNet` runs the whole engine under its seeded single-threaded
//! scheduler — deterministic interleavings, no real threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::device::Device;

/// How communication progress is driven while rank threads compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// No asynchronous progress: the device moves only when a rank thread
    /// calls into it (post/test/wait). The legacy behavior, bit-for-bit.
    #[default]
    Off,
    /// One dedicated progress thread per device.
    Thread,
    /// Stealable progress: threads parked in waits pump sibling devices.
    Steal,
}

/// Progress-engine tuning. Build with [`ProgressConfig::thread`] /
/// [`ProgressConfig::steal`] or parse the `MOTOR_PROGRESS` environment
/// variable with [`ProgressConfig::from_env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressConfig {
    /// The progress model.
    pub mode: ProgressMode,
    /// Maximum pump passes one batched engine poll chains together
    /// (completion batching: a CTS reply queued by pass *n* is flushed by
    /// pass *n+1* in the same poll instead of waiting for the next one).
    pub max_batch_passes: usize,
    /// How long an idle engine thread parks on the device waker before
    /// re-polling. New local work notifies the waker, so this bounds only
    /// the latency of *remotely* originated traffic reaching an idle
    /// device.
    pub idle_park: Duration,
}

/// Default batched passes per engine poll.
pub const DEFAULT_BATCH_PASSES: usize = 4;

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig::off()
    }
}

impl ProgressConfig {
    /// Asynchronous progress disabled (the default).
    pub const fn off() -> Self {
        ProgressConfig {
            mode: ProgressMode::Off,
            max_batch_passes: DEFAULT_BATCH_PASSES,
            idle_park: Duration::from_micros(50),
        }
    }

    /// A dedicated progress thread per device.
    pub const fn thread() -> Self {
        let mut cfg = Self::off();
        cfg.mode = ProgressMode::Thread;
        cfg
    }

    /// Stealable progress from threads parked in waits.
    pub const fn steal() -> Self {
        let mut cfg = Self::off();
        cfg.mode = ProgressMode::Steal;
        cfg
    }

    /// Parse `MOTOR_PROGRESS` (`thread`, `steal`, `off`; anything else is
    /// rejected loudly rather than silently ignored). Returns `None` when
    /// the variable is unset or empty.
    pub fn from_env() -> Option<ProgressConfig> {
        let v = std::env::var("MOTOR_PROGRESS").ok()?;
        let v = v.trim();
        if v.is_empty() {
            return None;
        }
        match v.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Self::off()),
            "thread" | "1" => Some(Self::thread()),
            "steal" => Some(Self::steal()),
            other => panic!("MOTOR_PROGRESS: unknown mode {other:?} (use thread|steal|off)"),
        }
    }
}

/// The device's completion notifier: a generation counter bumped (and
/// broadcast) whenever *any* thread makes progress on the device. Waiters
/// park here instead of sleeping a blind backoff quantum, so a completion
/// driven by a progress thread — or any other thread — wakes them
/// immediately rather than after up to one full sleep interval.
#[derive(Default)]
pub(crate) struct Waker {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Waker {
    /// Current generation; pass it to [`Waker::wait_next`].
    pub fn generation(&self) -> u64 {
        *self.gen.lock()
    }

    /// Progress happened: advance the generation and wake every waiter.
    pub fn notify(&self) {
        let mut g = self.gen.lock();
        *g = g.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }

    /// Park until the generation moves past `seen` or `timeout` elapses.
    /// Progress between reading `seen` and parking is never missed: the
    /// generation is re-checked under the lock. Returns the generation
    /// observed on wakeup.
    pub fn wait_next(&self, seen: u64, timeout: Duration) -> u64 {
        let mut g = self.gen.lock();
        if *g == seen {
            let _ = self.cv.wait_for(&mut g, timeout);
        }
        *g
    }
}

/// The steal registry: every device in a universe, so a thread parked in
/// one rank's wait can drive the others' pending operations.
#[derive(Default)]
pub struct ProgressSet {
    devices: Mutex<Vec<Weak<Device>>>,
}

impl ProgressSet {
    /// An empty set.
    pub fn new() -> Arc<ProgressSet> {
        Arc::new(ProgressSet::default())
    }

    /// Add a device to the steal pool.
    pub fn register(&self, device: &Arc<Device>) {
        self.devices.lock().push(Arc::downgrade(device));
    }

    /// One steal sweep on behalf of rank `thief`: a single non-blocking
    /// pump pass over every *other* live device, skipping any link whose
    /// lock its owner already holds (the owner is pumping it — blocking
    /// here would serialize thief and owner on exactly the lock the split
    /// removed). Returns whether anything moved anywhere.
    pub fn steal(&self, thief: usize) -> bool {
        let victims: Vec<Arc<Device>> = {
            let devices = self.devices.lock();
            devices.iter().filter_map(Weak::upgrade).collect()
        };
        let mut moved = false;
        for victim in victims {
            if victim.rank() == thief {
                continue;
            }
            if victim.steal_pass().unwrap_or(false) {
                moved = true;
            }
        }
        moved
    }
}

/// Dedicated progress threads, one per attached device. Threads run
/// batched pump passes while work moves and park on the device waker when
/// the device goes quiet; [`ProgressEngine::stop`] parks them permanently
/// and joins.
pub struct ProgressEngine {
    config: ProgressConfig,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    devices: Mutex<Vec<Arc<Device>>>,
}

impl ProgressEngine {
    /// An engine with no threads yet; [`attach`](Self::attach) devices.
    pub fn new(config: ProgressConfig) -> ProgressEngine {
        ProgressEngine {
            config,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            devices: Mutex::new(Vec::new()),
        }
    }

    /// Spawn the progress thread for `device`.
    pub fn attach(&self, device: Arc<Device>) {
        let stop = Arc::clone(&self.stop);
        let cfg = self.config;
        self.devices.lock().push(Arc::clone(&device));
        let handle = std::thread::Builder::new()
            .name(format!("motor-progress-{}", device.rank()))
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let gen = device.progress_generation();
                    let moved = device
                        .progress_batched(cfg.max_batch_passes, true)
                        .unwrap_or(false);
                    if !moved {
                        // Quiet device: park until local activity (a post,
                        // a pump that moved) notifies, or the idle-park
                        // interval elapses — the poll cadence for traffic
                        // that originates at a remote peer.
                        device.park_until_progress(gen, cfg.idle_park);
                    }
                }
            })
            .expect("spawn progress thread");
        self.threads.lock().push(handle);
    }

    /// Stop and join every progress thread. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Parked threads re-check the flag as soon as their waker fires.
        for d in self.devices.lock().iter() {
            d.notify_progress();
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_generation_advances_and_wakes() {
        let w = Arc::new(Waker::default());
        let g0 = w.generation();
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.notify();
        });
        // A long timeout that the notify must cut short.
        let g1 = w.wait_next(g0, Duration::from_secs(30));
        t.join().unwrap();
        assert_eq!(g1, g0 + 1);
    }

    #[test]
    fn waker_never_misses_a_pre_wait_notify() {
        let w = Waker::default();
        let g0 = w.generation();
        w.notify();
        // Generation already moved: returns immediately, no timeout burn.
        let start = std::time::Instant::now();
        let g1 = w.wait_next(g0, Duration::from_secs(30));
        assert!(g1 > g0);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn from_env_parses_all_modes() {
        // Serialized via env guard: these tests run in one process.
        std::env::set_var("MOTOR_PROGRESS", "thread");
        assert_eq!(
            ProgressConfig::from_env().unwrap().mode,
            ProgressMode::Thread
        );
        std::env::set_var("MOTOR_PROGRESS", "STEAL");
        assert_eq!(
            ProgressConfig::from_env().unwrap().mode,
            ProgressMode::Steal
        );
        std::env::set_var("MOTOR_PROGRESS", "off");
        assert_eq!(ProgressConfig::from_env().unwrap().mode, ProgressMode::Off);
        std::env::set_var("MOTOR_PROGRESS", "");
        assert!(ProgressConfig::from_env().is_none());
        std::env::remove_var("MOTOR_PROGRESS");
        assert!(ProgressConfig::from_env().is_none());
    }
}
