//! Typed source addressing for receive-side operations.
//!
//! Receive, probe and object-receive operations historically took a raw
//! `i32` rank with `-1` meaning "any source" (the `MPI_ANY_SOURCE`
//! sentinel), while typed variants took `usize` — two encodings for the
//! same concept. [`Source`] replaces both: a concrete rank or an explicit
//! wildcard. Plain `usize` ranks convert implicitly, so
//! `comm.recv_bytes(&mut buf, 3, tag)` still reads naturally while
//! wildcard receives say what they mean: `comm.recv_bytes(&mut buf,
//! Source::Any, tag)`.

use std::fmt;

/// Which rank a receive or probe should match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Match messages from this communicator rank only.
    Rank(usize),
    /// Match messages from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Source {
    /// The device-layer wire encoding (`-1` wildcard, rank otherwise).
    pub fn to_device(self) -> i32 {
        match self {
            Source::Rank(r) => r as i32,
            Source::Any => crate::device::ANY_SOURCE,
        }
    }

    /// The concrete rank, if any.
    pub fn rank(self) -> Option<usize> {
        match self {
            Source::Rank(r) => Some(r),
            Source::Any => None,
        }
    }
}

impl From<usize> for Source {
    fn from(rank: usize) -> Source {
        Source::Rank(rank)
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Rank(r) => write!(f, "rank {r}"),
            Source::Any => f.write_str("any source"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Source::from(4), Source::Rank(4));
        assert_eq!(Source::Rank(4).to_device(), 4);
        assert_eq!(Source::Any.to_device(), crate::device::ANY_SOURCE);
        assert_eq!(Source::Rank(7).rank(), Some(7));
        assert_eq!(Source::Any.rank(), None);
    }
}
