//! The `profile` section of a benchmark artifact: per-rank time-bucket
//! totals, overlap accounting, sample counts, and (for interpreted
//! workloads) IL hotness — serializable to the JSON fragment embedded in
//! `BENCH_<workload>.json` and parseable back for `motor-trace profile`.

use motor_obs::export::json::{self, Value};
use motor_obs::{FuncHotness, IlHot, Metric, MetricsSnapshot, TimeBucket, N_BUCKETS};

/// How many hottest functions / opcodes a section keeps per rank.
const TOP_N: usize = 16;

/// One rank's profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// The rank.
    pub rank: usize,
    /// Measured wall clock of the rank body (nanoseconds), as timed by
    /// the harness that built the section — the denominator for
    /// [`coverage`](Self::coverage).
    pub wall_nanos: u64,
    /// Nanoseconds accrued per time bucket, [`TimeBucket::ALL`] order.
    pub bucket_nanos: [u64; N_BUCKETS],
    /// Union of in-flight non-blocking op intervals (nanoseconds).
    pub inflight_nanos: u64,
    /// Portion of `inflight_nanos` that overlapped computation.
    pub overlap_nanos: u64,
    /// Profiler samples taken on this rank.
    pub samples: u64,
    /// Hottest functions (back-edge order), when IL hotness was on.
    pub top_functions: Vec<FuncHotness>,
    /// Sampled opcode mix `(opcode, count)`, hottest first, when on.
    pub op_mix: Vec<(String, u64)>,
}

impl RankProfile {
    /// Build from a rank's metrics snapshot plus its measured wall time.
    pub fn from_snapshot(rank: usize, wall_nanos: u64, snap: &MetricsSnapshot) -> RankProfile {
        RankProfile {
            rank,
            wall_nanos,
            bucket_nanos: snap.bucket_nanos(),
            inflight_nanos: snap.get(Metric::ProfInflightNanos),
            overlap_nanos: snap.get(Metric::ProfOverlapNanos),
            samples: snap.get(Metric::ProfSamples),
            top_functions: Vec::new(),
            op_mix: Vec::new(),
        }
    }

    /// Attach IL hotness (top functions and opcode mix, truncated to the
    /// hottest [`TOP_N`]); zero-count entries are dropped.
    pub fn with_hot(mut self, hot: &IlHot) -> RankProfile {
        self.top_functions = hot
            .top_functions()
            .into_iter()
            .filter(|f| f.calls > 0 || f.backedges > 0)
            .take(TOP_N)
            .collect();
        let mut mix: Vec<(String, u64)> = hot
            .op_names()
            .iter()
            .zip(hot.op_counts())
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| (name.to_string(), n))
            .collect();
        mix.sort_by(|a, b| (b.1, &a.0).cmp(&(a.1, &b.0)));
        mix.truncate(TOP_N);
        self.op_mix = mix;
        self
    }

    /// Accounted wall clock: sum of the buckets (nanoseconds).
    pub fn accounted_nanos(&self) -> u64 {
        self.bucket_nanos.iter().sum()
    }

    /// Fraction of the measured wall clock the buckets account for
    /// (1.0 when no wall time was measured — nothing to miss).
    pub fn coverage(&self) -> f64 {
        if self.wall_nanos == 0 {
            1.0
        } else {
            self.accounted_nanos() as f64 / self.wall_nanos as f64
        }
    }

    /// Comm/compute overlap ratio; `None` when nothing was in flight.
    pub fn overlap_ratio(&self) -> Option<f64> {
        if self.inflight_nanos == 0 {
            None
        } else {
            Some(self.overlap_nanos as f64 / self.inflight_nanos as f64)
        }
    }
}

/// The whole-cluster profile section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSection {
    /// Per-rank profiles, rank order.
    pub ranks: Vec<RankProfile>,
}

impl ProfileSection {
    /// Aggregate overlap ratio: all in-flight time vs. all overlapped
    /// time across ranks. `None` when no rank had anything in flight.
    pub fn overlap_ratio(&self) -> Option<f64> {
        let inflight: u64 = self.ranks.iter().map(|r| r.inflight_nanos).sum();
        if inflight == 0 {
            return None;
        }
        let overlap: u64 = self.ranks.iter().map(|r| r.overlap_nanos).sum();
        Some(overlap as f64 / inflight as f64)
    }

    /// The worst per-rank [`RankProfile::coverage`] (1.0 for an empty
    /// section).
    pub fn min_coverage(&self) -> f64 {
        self.ranks
            .iter()
            .map(RankProfile::coverage)
            .fold(1.0, f64::min)
    }

    /// Cluster-wide bucket totals, [`TimeBucket::ALL`] order.
    pub fn bucket_totals(&self) -> [u64; N_BUCKETS] {
        let mut out = [0u64; N_BUCKETS];
        for r in &self.ranks {
            for (slot, n) in out.iter_mut().zip(r.bucket_nanos) {
                *slot += n;
            }
        }
        out
    }

    /// Serialize as the `profile` JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"wallNanos\":{},\"buckets\":{{",
                r.rank, r.wall_nanos
            ));
            for (j, (bucket, n)) in TimeBucket::ALL.iter().zip(r.bucket_nanos).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", bucket.name(), n));
            }
            out.push_str(&format!(
                "}},\"inflightNanos\":{},\"overlapNanos\":{},\"samples\":{},\"topFunctions\":[",
                r.inflight_nanos, r.overlap_nanos, r.samples
            ));
            for (j, f) in r.top_functions.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"calls\":{},\"backedges\":{}}}",
                    esc(&f.name),
                    f.calls,
                    f.backedges
                ));
            }
            out.push_str("],\"opMix\":[");
            for (j, (op, n)) in r.op_mix.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"op\":{},\"count\":{}}}", esc(op), n));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a `profile` JSON object (inverse of
    /// [`to_json`](Self::to_json)).
    pub fn from_json(text: &str) -> Result<ProfileSection, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse from an already-parsed JSON value (e.g. the `profile` member
    /// of a benchmark artifact).
    pub fn from_value(v: &Value) -> Result<ProfileSection, String> {
        let ranks = v
            .get("ranks")
            .and_then(Value::as_array)
            .ok_or("profile: missing ranks array")?;
        let mut out = ProfileSection::default();
        for r in ranks {
            let field =
                |k: &str| -> Result<u64, String> { num(r, k).ok_or(format!("profile: bad {k}")) };
            let mut bucket_nanos = [0u64; N_BUCKETS];
            let buckets = r.get("buckets").ok_or("profile: missing buckets")?;
            for (slot, bucket) in bucket_nanos.iter_mut().zip(TimeBucket::ALL) {
                *slot = num(buckets, bucket.name())
                    .ok_or_else(|| format!("profile: missing bucket {}", bucket.name()))?;
            }
            let mut top_functions = Vec::new();
            for f in r
                .get("topFunctions")
                .and_then(Value::as_array)
                .unwrap_or(&[])
            {
                top_functions.push(FuncHotness {
                    name: f
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("profile: function without name")?
                        .to_string(),
                    calls: num(f, "calls").unwrap_or(0),
                    backedges: num(f, "backedges").unwrap_or(0),
                });
            }
            let mut op_mix = Vec::new();
            for m in r.get("opMix").and_then(Value::as_array).unwrap_or(&[]) {
                op_mix.push((
                    m.get("op")
                        .and_then(Value::as_str)
                        .ok_or("profile: opMix entry without op")?
                        .to_string(),
                    num(m, "count").unwrap_or(0),
                ));
            }
            out.ranks.push(RankProfile {
                rank: field("rank")? as usize,
                wall_nanos: field("wallNanos")?,
                bucket_nanos,
                inflight_nanos: field("inflightNanos")?,
                overlap_nanos: field("overlapNanos")?,
                samples: field("samples")?,
                top_functions,
                op_mix,
            });
        }
        Ok(out)
    }
}

fn num(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

/// Minimal JSON string escaping (names are identifiers, but stay honest).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_section() -> ProfileSection {
        ProfileSection {
            ranks: vec![
                RankProfile {
                    rank: 0,
                    wall_nanos: 1_000,
                    bucket_nanos: [600, 250, 50, 75, 25],
                    inflight_nanos: 400,
                    overlap_nanos: 300,
                    samples: 17,
                    top_functions: vec![FuncHotness {
                        name: "spmv".into(),
                        calls: 100,
                        backedges: 50_000,
                    }],
                    op_mix: vec![("fmul".into(), 900), ("br_true".into(), 450)],
                },
                RankProfile {
                    rank: 1,
                    wall_nanos: 1_000,
                    bucket_nanos: [500, 400, 0, 50, 0],
                    inflight_nanos: 0,
                    overlap_nanos: 0,
                    samples: 16,
                    top_functions: vec![],
                    op_mix: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sample_section();
        let text = s.to_json();
        let back = ProfileSection::from_json(&text).unwrap();
        assert_eq!(back, s);
        // And through a generic parse, as the bench artifact reader does.
        let v = json::parse(&text).unwrap();
        assert_eq!(ProfileSection::from_value(&v).unwrap(), s);
    }

    #[test]
    fn derived_ratios() {
        let s = sample_section();
        assert_eq!(s.ranks[0].accounted_nanos(), 1_000);
        assert!((s.ranks[0].coverage() - 1.0).abs() < 1e-9);
        assert!((s.ranks[1].coverage() - 0.95).abs() < 1e-9);
        assert!((s.min_coverage() - 0.95).abs() < 1e-9);
        assert_eq!(s.ranks[0].overlap_ratio(), Some(0.75));
        assert_eq!(s.ranks[1].overlap_ratio(), None);
        assert_eq!(s.overlap_ratio(), Some(0.75));
        assert_eq!(s.bucket_totals(), [1_100, 650, 50, 125, 25]);
    }

    #[test]
    fn escaped_names_survive() {
        let mut s = sample_section();
        s.ranks[0].top_functions[0].name = "weird\"\\name\n".into();
        let back = ProfileSection::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(ProfileSection::from_json("{}").is_err());
        assert!(ProfileSection::from_json("{\"ranks\":[{}]}").is_err());
    }
}
