//! Plain-text report formatters for `motor-trace profile`: tables over a
//! parsed [`ProfileSection`]. All output is stable (no timestamps, no
//! map iteration order) so reports diff cleanly across runs.

use std::collections::BTreeMap;

use motor_obs::TimeBucket;

use crate::section::ProfileSection;

/// Per-rank wall-clock partition: one row per rank, nanoseconds and
/// percentage per bucket, plus coverage of the measured wall clock.
pub fn report_time_buckets(s: &ProfileSection) -> String {
    let mut out = String::from("time buckets (per rank)\n");
    out.push_str(&format!("{:>5} {:>10}", "rank", "wall_ms"));
    for b in TimeBucket::ALL {
        out.push_str(&format!(" {:>11}", b.name()));
    }
    out.push_str(&format!(" {:>9}\n", "coverage"));
    for r in &s.ranks {
        out.push_str(&format!(
            "{:>5} {:>10.2}",
            r.rank,
            r.wall_nanos as f64 / 1e6
        ));
        let accounted = r.accounted_nanos().max(1);
        for n in r.bucket_nanos {
            out.push_str(&format!(" {:>10.1}%", 100.0 * n as f64 / accounted as f64));
        }
        out.push_str(&format!(" {:>8.1}%\n", 100.0 * r.coverage()));
    }
    out
}

/// Comm/compute overlap: in-flight vs. overlapped time per rank and the
/// aggregate ratio.
pub fn report_overlap(s: &ProfileSection) -> String {
    let mut out = String::from("comm/compute overlap\n");
    out.push_str(&format!(
        "{:>5} {:>12} {:>12} {:>8}\n",
        "rank", "inflight_ms", "overlap_ms", "ratio"
    ));
    for r in &s.ranks {
        let ratio = r
            .overlap_ratio()
            .map_or("-".to_string(), |x| format!("{x:.3}"));
        out.push_str(&format!(
            "{:>5} {:>12.2} {:>12.2} {:>8}\n",
            r.rank,
            r.inflight_nanos as f64 / 1e6,
            r.overlap_nanos as f64 / 1e6,
            ratio
        ));
    }
    let agg = s
        .overlap_ratio()
        .map_or("-".to_string(), |x| format!("{x:.3}"));
    out.push_str(&format!("aggregate overlap ratio: {agg}\n"));
    out
}

/// Hottest IL functions cluster-wide (calls and back-edges summed across
/// ranks, back-edge order), up to `top`.
pub fn report_top_functions(s: &ProfileSection, top: usize) -> String {
    let mut merged: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in &s.ranks {
        for f in &r.top_functions {
            let e = merged.entry(f.name.as_str()).or_insert((0, 0));
            e.0 += f.calls;
            e.1 += f.backedges;
        }
    }
    let mut rows: Vec<(&str, u64, u64)> = merged
        .into_iter()
        .map(|(name, (calls, backedges))| (name, calls, backedges))
        .collect();
    rows.sort_by(|a, b| (b.2, b.1, a.0).cmp(&(a.2, a.1, b.0)));
    rows.truncate(top);
    let mut out = String::from("top IL functions (all ranks)\n");
    if rows.is_empty() {
        out.push_str("  (no IL hotness data — run with the interpreter's `profile` feature)\n");
        return out;
    }
    out.push_str(&format!(
        "{:>12} {:>12}  {}\n",
        "backedges", "calls", "function"
    ));
    for (name, calls, backedges) in rows {
        out.push_str(&format!("{backedges:>12} {calls:>12}  {name}\n"));
    }
    out
}

/// Sampled opcode mix cluster-wide, hottest first, up to `top`.
pub fn report_opcode_mix(s: &ProfileSection, top: usize) -> String {
    let mut merged: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &s.ranks {
        for (op, n) in &r.op_mix {
            *merged.entry(op.as_str()).or_insert(0) += n;
        }
    }
    let total: u64 = merged.values().sum();
    let mut rows: Vec<(&str, u64)> = merged.into_iter().collect();
    rows.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
    rows.truncate(top);
    let mut out = String::from("sampled opcode mix (all ranks)\n");
    if rows.is_empty() {
        out.push_str("  (no opcode samples — run with the interpreter's `profile` feature)\n");
        return out;
    }
    out.push_str(&format!("{:>12} {:>7}  {}\n", "samples", "share", "opcode"));
    for (op, n) in rows {
        out.push_str(&format!(
            "{n:>12} {:>6.1}%  {op}\n",
            100.0 * n as f64 / total as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::RankProfile;
    use motor_obs::FuncHotness;

    fn section() -> ProfileSection {
        ProfileSection {
            ranks: vec![
                RankProfile {
                    rank: 0,
                    wall_nanos: 2_000_000,
                    bucket_nanos: [1_200_000, 600_000, 50_000, 100_000, 50_000],
                    inflight_nanos: 700_000,
                    overlap_nanos: 350_000,
                    samples: 20,
                    top_functions: vec![
                        FuncHotness {
                            name: "spmv".into(),
                            calls: 10,
                            backedges: 9_000,
                        },
                        FuncHotness {
                            name: "dot".into(),
                            calls: 20,
                            backedges: 4_000,
                        },
                    ],
                    op_mix: vec![("fmul".into(), 500), ("br_true".into(), 250)],
                },
                RankProfile {
                    rank: 1,
                    wall_nanos: 2_000_000,
                    bucket_nanos: [900_000, 1_000_000, 0, 100_000, 0],
                    inflight_nanos: 0,
                    overlap_nanos: 0,
                    samples: 20,
                    top_functions: vec![FuncHotness {
                        name: "spmv".into(),
                        calls: 10,
                        backedges: 9_500,
                    }],
                    op_mix: vec![("fmul".into(), 400)],
                },
            ],
        }
    }

    #[test]
    fn bucket_report_has_rank_rows_and_coverage() {
        let text = report_time_buckets(&section());
        assert!(text.contains("comm_wait"));
        assert!(text.lines().count() >= 4, "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn overlap_report_shows_ratio_and_dash() {
        let text = report_overlap(&section());
        assert!(text.contains("0.500"), "{text}");
        assert!(text.contains(" -\n"), "{text}");
        assert!(text.contains("aggregate overlap ratio: 0.500"), "{text}");
    }

    #[test]
    fn function_report_merges_ranks() {
        let text = report_top_functions(&section(), 10);
        let spmv = text.lines().find(|l| l.contains("spmv")).unwrap();
        assert!(spmv.contains("18500"), "{text}");
        // spmv (18.5k backedges) ranks above dot (4k).
        let spmv_at = text.find("spmv").unwrap();
        let dot_at = text.find("dot").unwrap();
        assert!(spmv_at < dot_at);
    }

    #[test]
    fn opcode_report_merges_and_caps() {
        let text = report_opcode_mix(&section(), 1);
        assert!(text.contains("fmul"), "{text}");
        assert!(!text.contains("br_true"), "{text}");
        assert!(text.contains("900"), "{text}");
    }

    #[test]
    fn empty_section_reports_hint_not_panic() {
        let empty = ProfileSection::default();
        assert!(report_top_functions(&empty, 5).contains("no IL hotness"));
        assert!(report_opcode_mix(&empty, 5).contains("no opcode samples"));
        report_time_buckets(&empty);
        report_overlap(&empty);
    }
}
