//! Folded stack accumulation in the `flamegraph.pl` / inferno text
//! format: one line per distinct stack, frames separated by `;`
//! (outermost first), a space, then the sample count.

use std::collections::BTreeMap;

/// A multiset of sampled stacks, keyed by their folded representation.
///
/// The map is ordered so [`render`](Self::render) output is canonical:
/// two runs that observe the same samples render byte-identical text
/// (the determinism tests rely on this).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FoldedStacks {
    counts: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// An empty accumulator.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Record `n` samples of the stack `key` (already `;`-joined,
    /// outermost frame first).
    pub fn add(&mut self, key: String, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Record one sample of the stack given as frames, prefixed with a
    /// `rankN` root frame so multi-rank profiles fold into one graph.
    pub fn add_frames(&mut self, rank: usize, frames: &[&str]) {
        let mut key = format!("rank{rank}");
        for f in frames {
            key.push(';');
            key.push_str(f);
        }
        self.add(key, 1);
    }

    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &FoldedStacks) {
        for (k, n) in &other.counts {
            self.add(k.clone(), *n);
        }
    }

    /// Total samples across all stacks.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The `(stack, count)` pairs in canonical (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Render as folded text: `stack count\n` per line, canonical order.
    /// Feed this to `inferno-flamegraph` / `flamegraph.pl` directly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, n) in &self.counts {
            out.push_str(k);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse folded text back (inverse of [`render`](Self::render);
    /// blank lines are skipped). Errors name the offending line.
    pub fn parse(text: &str) -> Result<FoldedStacks, String> {
        let mut out = FoldedStacks::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no count field: {line:?}", i + 1))?;
            let n: u64 = count
                .parse()
                .map_err(|_| format!("line {}: bad count {count:?}", i + 1))?;
            if key.is_empty() {
                return Err(format!("line {}: empty stack", i + 1));
            }
            out.add(key.to_string(), n);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let mut f = FoldedStacks::new();
        f.add_frames(0, &["main", "cg_iter", "spmv"]);
        f.add_frames(0, &["main", "cg_iter", "spmv"]);
        f.add_frames(1, &["main", "cg_iter", "dot"]);
        f.add("rank0;main 3".rsplit_once(' ').unwrap().0.to_string(), 3);
        let text = f.render();
        assert!(text.contains("rank0;main;cg_iter;spmv 2\n"));
        assert!(text.contains("rank1;main;cg_iter;dot 1\n"));
        let back = FoldedStacks::parse(&text).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.total(), 6);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FoldedStacks::new();
        a.add("rank0;f".into(), 2);
        let mut b = FoldedStacks::new();
        b.add("rank0;f".into(), 3);
        b.add("rank1;g".into(), 1);
        a.merge(&b);
        assert_eq!(a.render(), "rank0;f 5\nrank1;g 1\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FoldedStacks::parse("justonefield").is_err());
        assert!(FoldedStacks::parse("stack notanumber").is_err());
        assert!(FoldedStacks::parse(" 5").is_err());
        assert!(FoldedStacks::parse("ok 5\n\n").unwrap().total() == 5);
    }
}
