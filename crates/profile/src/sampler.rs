//! The sampling profiler: a low-frequency observer thread that
//! periodically reads each target rank's lock-free profiling state and
//! turns it into trace events and folded stacks.
//!
//! The sampler never touches the rank being profiled: everything it
//! reads ([`PhaseStats::current_bucket`], [`IlHot::current`],
//! [`IlHot::stack_snapshot`]) is racy-tolerant published state, so a
//! sample costs the profiled rank nothing. Torn reads at worst misplace
//! a single sample.
//!
//! [`PhaseStats::current_bucket`]: motor_obs::PhaseStats::current_bucket
//! [`IlHot::current`]: motor_obs::IlHot::current
//! [`IlHot::stack_snapshot`]: motor_obs::IlHot::stack_snapshot

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use motor_obs::{EventKind, IlHot, Metric, MetricsRegistry};

use crate::folded::FoldedStacks;

/// One rank to be sampled.
pub struct ProfTarget {
    /// The rank number (used as the folded-stack root frame).
    pub rank: usize,
    /// The rank's VM-side metrics registry (the one that received
    /// `profile_start`, so its phase machine is live).
    pub registry: Arc<MetricsRegistry>,
    /// The rank's IL hotness table, if the rank runs interpreted code
    /// with the interpreter's `profile` feature on. `None` for native
    /// ranks — samples then fold to the rank's current time bucket.
    pub hot: Option<Arc<IlHot>>,
}

/// The clock-free core of the sampler: each [`sample_once`]
/// (Self::sample_once) reads every target exactly once. Driving this
/// from a thread gives the wall-clock profiler; driving it from a test
/// gives a deterministic one — the core itself never consults time.
pub struct SamplerCore {
    targets: Vec<ProfTarget>,
    folded: FoldedStacks,
    rounds: u64,
}

impl SamplerCore {
    /// A core over a fixed set of targets.
    pub fn new(targets: Vec<ProfTarget>) -> SamplerCore {
        SamplerCore {
            targets,
            folded: FoldedStacks::new(),
            rounds: 0,
        }
    }

    /// Sample every target once: stamp a `prof_sample` event into each
    /// rank's trace ring (`a` = packed current `(function+1)<<32 | pc`
    /// or 0 when idle, `b` = current time bucket, `c` = IL stack depth),
    /// bump its `prof_samples` counter, and accumulate a folded stack.
    pub fn sample_once(&mut self) {
        for t in &self.targets {
            let bucket = t.registry.phases().current_bucket();
            let (packed, depth, frames) = match &t.hot {
                Some(hot) => {
                    let cur = hot.current();
                    let stack = hot.stack_snapshot();
                    let mut frames: Vec<&str> = stack
                        .iter()
                        .filter_map(|&f| hot.names().get(f as usize))
                        .map(String::as_str)
                        .collect();
                    if frames.is_empty() {
                        if let Some((f, _)) = cur {
                            if let Some(name) = hot.names().get(f as usize) {
                                frames.push(name.as_str());
                            }
                        }
                    }
                    let packed = cur.map_or(0, |(f, pc)| ((f as u64 + 1) << 32) | pc as u64);
                    (packed, stack.len() as u64, frames)
                }
                None => (0, 0, Vec::new()),
            };
            t.registry
                .event3(EventKind::ProfSample, packed, bucket as u64, depth);
            t.registry.bump(Metric::ProfSamples);

            // Fold: IL frames outermost-first under a rankN root. Ranks
            // with no IL state (or an idle interpreter) fold to their
            // native phase tag; waiting ranks get the bucket appended as
            // a leaf so the flamegraph shows *where* time is lost.
            let bucket_tag = format!("[{}]", bucket.name());
            let mut owned: Vec<&str> = frames;
            if owned.is_empty() || bucket != motor_obs::TimeBucket::Compute {
                owned.push(&bucket_tag);
            }
            self.folded.add_frames(t.rank, &owned);
        }
        self.rounds += 1;
    }

    /// Sampling rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The folded stacks accumulated so far.
    pub fn folded(&self) -> &FoldedStacks {
        &self.folded
    }

    /// Consume the core, yielding `(folded stacks, rounds)`.
    pub fn finish(self) -> (FoldedStacks, u64) {
        (self.folded, self.rounds)
    }
}

/// A wall-clock sampler thread around [`SamplerCore`].
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<(FoldedStacks, u64)>>,
}

impl Sampler {
    /// Spawn a sampler over `targets`, sampling every `period` until
    /// [`stop`](Self::stop). A final sample is taken on the way out so
    /// short-lived runs still profile.
    pub fn spawn(targets: Vec<ProfTarget>, period: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("motor-profile".into())
            .spawn(move || {
                let mut core = SamplerCore::new(targets);
                while !flag.load(Ordering::Acquire) {
                    core.sample_once();
                    std::thread::sleep(period);
                }
                core.sample_once();
                core.finish()
            })
            .expect("spawn motor-profile sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the thread and collect `(folded stacks, rounds)`.
    pub fn stop(mut self) -> (FoldedStacks, u64) {
        self.stop.store(true, Ordering::Release);
        let handle = self.handle.take().expect("sampler already stopped");
        handle.join().expect("motor-profile sampler panicked")
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_obs::TimeBucket;

    fn target_with_hot() -> (ProfTarget, Arc<IlHot>) {
        let registry = Arc::new(MetricsRegistry::new());
        registry.profile_start();
        let hot = Arc::new(IlHot::new(
            vec!["main".into(), "kernel".into()],
            vec!["add", "br"],
        ));
        (
            ProfTarget {
                rank: 0,
                registry,
                hot: Some(Arc::clone(&hot)),
            },
            hot,
        )
    }

    #[test]
    fn sample_stamps_event_counter_and_folds_stack() {
        let (t, hot) = target_with_hot();
        let registry = Arc::clone(&t.registry);
        hot.on_call(0);
        hot.on_call(1);
        hot.sample_op(0, 1, 7);
        let mut core = SamplerCore::new(vec![t]);
        core.sample_once();
        let (folded, rounds) = core.finish();
        assert_eq!(rounds, 1);
        assert_eq!(folded.render(), "rank0;main;kernel 1\n");

        let snap = registry.snapshot();
        assert_eq!(snap.get(Metric::ProfSamples), 1);
        let ev = snap
            .events()
            .iter()
            .find(|e| e.kind == EventKind::ProfSample)
            .expect("prof_sample event");
        assert_eq!(ev.a, (2u64 << 32) | 7); // function 1 (+1) at pc 7
        assert_eq!(ev.b, TimeBucket::Compute as u64);
        assert_eq!(ev.c, 2); // two live frames
    }

    #[test]
    fn idle_and_waiting_samples_fold_to_bucket_tags() {
        let (t, hot) = target_with_hot();
        let registry = Arc::clone(&t.registry);
        let mut core = SamplerCore::new(vec![t]);
        // Idle interpreter: folds to the native bucket tag.
        core.sample_once();
        // In a comm-wait phase with live IL frames: bucket tag as leaf.
        hot.on_call(0);
        let scope = registry.phase_scope(TimeBucket::CommWait);
        core.sample_once();
        drop(scope);
        let (folded, _) = core.finish();
        assert_eq!(
            folded.render(),
            "rank0;[compute] 1\nrank0;main;[comm_wait] 1\n"
        );
    }

    #[test]
    fn sampler_thread_runs_and_stops() {
        let (t, hot) = target_with_hot();
        hot.on_call(0);
        let s = Sampler::spawn(vec![t], Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let (folded, rounds) = s.stop();
        assert!(rounds >= 2, "expected multiple rounds, got {rounds}");
        assert!(folded.total() >= 2);
        assert!(folded.render().starts_with("rank0;main"));
    }
}
