//! # motor-profile — continuous profiling for the Motor VM
//!
//! Ties together the three profiling signals the observability layer
//! produces into rank-level profiles and human-readable reports:
//!
//! * **IL hotness** — per-function call/back-edge counters and a sampled
//!   opcode mix, maintained by the interpreter's `profile` feature in a
//!   [`motor_obs::IlHot`] table.
//! * **Time buckets** — per-rank wall-clock partition into
//!   compute / comm-wait / progress / GC / serialize, accrued online by
//!   the span layer ([`motor_obs::PhaseStats`]) and exported as `prof_*`
//!   counters.
//! * **Sampled stacks** — a [`Sampler`] thread periodically snapshots
//!   each rank's interpreter state (current function, shadow call stack,
//!   current time bucket), stamps a `prof_sample` event into the trace
//!   ring, and accumulates inferno-compatible folded stack lines
//!   (`rank0;caller;leaf 12`) renderable as a flamegraph.
//!
//! The pieces compose into a [`ProfileSection`] — the `profile` object
//! embedded in every `BENCH_<workload>.json` artifact — and the report
//! formatters behind `motor-trace profile`.
//!
//! Everything here is pull-based and allocation-light: the sampler reads
//! lock-free state published by the rank threads; nothing blocks or locks
//! on the hot path being profiled.

mod folded;
mod report;
mod sampler;
mod section;

pub use folded::FoldedStacks;
pub use report::{report_opcode_mix, report_overlap, report_time_buckets, report_top_functions};
pub use sampler::{ProfTarget, Sampler, SamplerCore};
pub use section::{ProfileSection, RankProfile};
