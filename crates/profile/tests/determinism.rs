//! Satellite: the sampler and the time-bucket accounting are exactly
//! reproducible under a virtual clock. Two runs with the same seed must
//! produce byte-identical folded stacks and identical bucket totals —
//! the profiling pipeline introduces no hidden nondeterminism of its
//! own (every `PhaseStats` transition takes an explicit timestamp, the
//! sampler core never consults a clock, and folded rendering is
//! canonical).

use std::sync::Arc;

use motor_obs::{IlHot, MetricsRegistry, PhaseSnapshot, TimeBucket};
use motor_pal::clock::{TickSource, VirtualClock};
use motor_profile::{ProfTarget, SamplerCore};

/// The splitmix64 step — a tiny deterministic RNG for the event script.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Drive one full profiled "run" from a seed on a virtual clock and
/// return everything observable: folded text, sample rounds, and the
/// final phase snapshot.
fn run(seed: u64) -> (String, u64, PhaseSnapshot) {
    let clock = VirtualClock::new();
    let registry = Arc::new(MetricsRegistry::new());
    let hot = Arc::new(IlHot::new(
        vec!["main".into(), "cg_iter".into(), "spmv".into(), "dot".into()],
        vec!["add", "fmul", "br_true", "call"],
    ));
    let phases = registry.phases();
    phases.start_at(clock.now_ticks());

    let mut core = SamplerCore::new(vec![ProfTarget {
        rank: 0,
        registry: Arc::clone(&registry),
        hot: Some(Arc::clone(&hot)),
    }]);

    let mut rng = Rng(seed);
    let mut depth = 0u32;
    let mut pushed = 0u32;
    for step in 0..4_000 {
        // Advance virtual time by a seed-dependent amount, then apply a
        // seed-chosen action to the phase machine and the IL state.
        let now = clock.advance(1 + rng.below(997));
        match rng.below(10) {
            0 | 1 => {
                let bucket = TimeBucket::ALL[rng.below(5) as usize];
                if phases.push_at(bucket, now) {
                    pushed += 1;
                }
            }
            2 if pushed > 0 => {
                phases.pop_at(now);
                pushed -= 1;
            }
            3 => phases.async_begin_at(now),
            4 => phases.async_end_at(now),
            5 if depth < 4 => {
                hot.on_call(depth);
                depth += 1;
            }
            6 if depth > 0 => {
                hot.on_return();
                depth -= 1;
            }
            7 if depth > 0 => hot.on_backedge(depth - 1, rng.below(64) as u32),
            8 if depth > 0 => hot.sample_op(rng.below(4) as usize, depth - 1, rng.below(64) as u32),
            _ => {} // compute: time passes, nothing transitions
        }
        if step % 17 == 0 {
            core.sample_once();
        }
    }
    let snapshot = phases.read_at(clock.now_ticks());
    let (folded, rounds) = core.finish();
    (folded.render(), rounds, snapshot)
}

#[test]
fn same_seed_reproduces_exactly() {
    let (folded_a, rounds_a, snap_a) = run(0xC0FFEE);
    let (folded_b, rounds_b, snap_b) = run(0xC0FFEE);
    assert_eq!(folded_a, folded_b, "folded stacks must be byte-identical");
    assert_eq!(rounds_a, rounds_b);
    assert_eq!(snap_a, snap_b, "bucket totals must be identical");
    // The run actually exercised the machinery.
    assert!(rounds_a > 100);
    assert!(!folded_a.is_empty());
    assert!(snap_a.wall_nanos() > 0);
    assert!(snap_a.bucket_nanos.iter().filter(|&&n| n > 0).count() >= 3);
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the script actually depends on the seed (a
    // constant-output harness would make the test above vacuous).
    let (folded_a, _, snap_a) = run(1);
    let (folded_b, _, snap_b) = run(2);
    assert!(folded_a != folded_b || snap_a != snap_b);
}
