//! The mpiJava bindings analog (JNI-wrapped MPI for Java).
//!
//! Paper §2.1: "mpiJava is a Java wrapper to an underlying native MPI
//! implementation ... Both mpiJava and JavaMPI use the Java Native
//! Interface (JNI), which provides a Java mechanism to call native code."
//! §2.3: "The JNI interface automatically pins and unpins objects."
//!
//! Each operation pays: the JNI call transition (method-ID resolution +
//! marshalling + mode flip), automatic pin/unpin, and **copy-based array
//! access** (`Get/Set<Type>ArrayRegion` staging copies — the conservative
//! JNI path a JVM falls back to when it cannot hand out a direct pointer).
//! Object transport uses the Java serialization analog, whose recursive
//! walk overflows on long lists (Figure 10).

use motor_core::{CoreError, CoreResult, MpStatus};
use motor_mpc::Comm;
use motor_runtime::{Handle, MotorThread, TypeKind};
use parking_lot::Mutex;

use crate::callconv::JniEnv;
use crate::javaser::{JavaSerError, JavaSerializer};

/// The mpiJava wrapper bound to a thread and communicator.
pub struct MpiJava<'t> {
    thread: &'t MotorThread,
    comm: Comm,
    env: JniEnv,
    staging: Mutex<Vec<u8>>,
    /// Checksum sink keeping the transition work observable.
    pub checksum: std::cell::Cell<u64>,
}

impl<'t> MpiJava<'t> {
    /// Bind the wrapper.
    pub fn new(thread: &'t MotorThread, comm: Comm) -> MpiJava<'t> {
        MpiJava {
            thread,
            comm,
            env: JniEnv::new(),
            staging: Mutex::new(Vec::new()),
            checksum: std::cell::Cell::new(0),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    fn jni(&self, name: &str, sig: &str, args: &[u64]) {
        let c = self.env.transition("mpi/Comm", name, sig, args);
        self.checksum.set(self.checksum.get() ^ c);
    }

    fn window(&self, obj: Handle) -> CoreResult<(*mut u8, usize)> {
        if self.thread.is_null(obj) {
            return Err(CoreError::NullBuffer);
        }
        let vm = self.thread.vm();
        let reg = vm.registry();
        let class = self.thread.class_of(obj);
        match reg.table(class).kind {
            TypeKind::PrimArray(_) => {}
            _ => {
                // Java has neither structs nor true md arrays to pass here.
                return Err(CoreError::ObjectModelIntegrity(
                    reg.table(class).name.clone(),
                ));
            }
        }
        drop(reg);
        Ok(self.thread.raw_data_window(obj))
    }

    /// Blocking send: JNI transition, automatic pin, staged copy out of
    /// the managed array, native send from the staging buffer, unpin.
    pub fn send(&self, obj: Handle, dest: usize, tag: i32) -> CoreResult<()> {
        let (ptr, len) = self.window(obj)?;
        self.jni(
            "send",
            "(Ljava/lang/Object;IIII)V",
            &[len as u64, dest as u64, tag as u64],
        );
        let pin = self.thread.pin(obj);
        let res = (|| -> CoreResult<()> {
            let mut staging = self.staging.lock();
            // SAFETY: pinned; GetArrayRegion copy.
            let src = unsafe { std::slice::from_raw_parts(ptr, len) };
            self.env.get_array_region(src, &mut staging);
            // The native MPI sends from the staging buffer.
            self.comm.send_bytes(&staging, dest, tag)?;
            Ok(())
        })();
        self.thread.unpin(pin);
        res
    }

    /// Blocking receive: native receive into staging, then copy into the
    /// managed array.
    pub fn recv(
        &self,
        obj: Handle,
        src: impl Into<motor_mpc::Source>,
        tag: i32,
    ) -> CoreResult<MpStatus> {
        let src = src.into();
        let (ptr, len) = self.window(obj)?;
        self.jni(
            "recv",
            "(Ljava/lang/Object;IIII)Lmpi/Status;",
            &[len as u64, src.to_device() as u64],
        );
        let pin = self.thread.pin(obj);
        let res = (|| -> CoreResult<MpStatus> {
            let mut staging = self.staging.lock();
            staging.resize(len, 0);
            let st = self.comm.recv_bytes(&mut staging, src, tag)?;
            // SAFETY: pinned; SetArrayRegion copy.
            let dst = unsafe { std::slice::from_raw_parts_mut(ptr, st.count) };
            self.env.set_array_region(&staging[..st.count], dst);
            Ok(MpStatus {
                source: st.source as usize,
                tag: st.tag,
                bytes: st.count,
            })
        })();
        self.thread.unpin(pin);
        res
    }

    /// Object transport with the `MPI.OBJECT` datatype: Java-serialize,
    /// send length then stream (mpiJava sends the size first, as Motor
    /// does — paper §7.5 cites this).
    pub fn send_object(&self, obj: Handle, dest: usize, tag: i32) -> CoreResult<()> {
        let stream = JavaSerializer::new(self.thread)
            .serialize(obj)
            .map_err(|e| match e {
                JavaSerError::StackOverflow { depth } => CoreError::Serialization(format!(
                    "java.lang.StackOverflowError (depth {depth})"
                )),
                JavaSerError::Stream(s) => CoreError::Serialization(s),
            })?;
        self.jni(
            "send",
            "(Ljava/lang/Object;IIII)V",
            &[stream.len() as u64, dest as u64],
        );
        let size = (stream.len() as u64).to_le_bytes();
        self.comm.send_bytes(&size, dest, tag)?;
        self.comm.send_bytes(&stream, dest, tag)?;
        Ok(())
    }

    /// Receive an object shipped by [`MpiJava::send_object`].
    pub fn recv_object(&self, src: impl Into<motor_mpc::Source>, tag: i32) -> CoreResult<Handle> {
        let src = src.into();
        self.jni(
            "recv",
            "(Ljava/lang/Object;IIII)Lmpi/Status;",
            &[src.to_device() as u64, tag as u64],
        );
        let mut size = [0u8; 8];
        let st = self.comm.recv_bytes(&mut size, src, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut stream = vec![0u8; len];
        self.comm
            .recv_bytes(&mut stream, st.source as usize, st.tag)?;
        JavaSerializer::new(self.thread).deserialize(&stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::ElemKind;

    #[test]
    fn jni_pingpong_roundtrip() {
        motor_core::cluster::run_cluster_default(
            2,
            |_reg| {},
            |proc| {
                let j = MpiJava::new(proc.thread(), proc.comm().clone());
                let t = proc.thread();
                let buf = t.alloc_prim_array(ElemKind::U8, 128);
                if j.rank() == 0 {
                    t.prim_write(buf, 0, &[0xC3u8; 128]);
                    j.send(buf, 1, 0).unwrap();
                    j.recv(buf, 1, 0).unwrap();
                    let mut out = vec![0u8; 128];
                    t.prim_read(buf, 0, &mut out);
                    assert_eq!(out, vec![0xC4u8; 128]);
                } else {
                    j.recv(buf, 0, 0).unwrap();
                    let mut data = vec![0u8; 128];
                    t.prim_read(buf, 0, &mut data);
                    for b in data.iter_mut() {
                        *b = b.wrapping_add(1);
                    }
                    t.prim_write(buf, 0, &data);
                    j.send(buf, 0, 0).unwrap();
                }
            },
        )
        .unwrap();
    }

    #[test]
    fn jni_object_transport_roundtrip() {
        motor_core::cluster::run_cluster_default(
            2,
            |reg| {
                let arr = reg.prim_array(ElemKind::I32);
                let next = motor_runtime::ClassId(reg.len() as u32);
                reg.define_class("LinkedArray")
                    .prim("tag", ElemKind::I32)
                    .transportable("array", arr)
                    .transportable("next", next)
                    .reference("next2", next)
                    .build();
            },
            |proc| {
                let j = MpiJava::new(proc.thread(), proc.comm().clone());
                let t = proc.thread();
                let node = t.vm().registry().by_name("LinkedArray").unwrap();
                let (ftag, fnext) = (t.field_index(node, "tag"), t.field_index(node, "next"));
                if j.rank() == 0 {
                    // Three-element list.
                    let mut head = t.null_handle();
                    for i in (0..3).rev() {
                        let n = t.alloc_instance(node);
                        t.set_prim::<i32>(n, ftag, i);
                        t.set_ref(n, fnext, head);
                        t.release(head);
                        head = n;
                    }
                    j.send_object(head, 1, 5).unwrap();
                } else {
                    let h = j.recv_object(0, 5).unwrap();
                    let mut cur = t.clone_handle(h);
                    for i in 0..3 {
                        assert_eq!(t.get_prim::<i32>(cur, ftag), i);
                        let nx = t.get_ref(cur, fnext);
                        t.release(cur);
                        cur = nx;
                    }
                    assert!(t.is_null(cur));
                }
            },
        )
        .unwrap();
    }

    #[test]
    fn long_object_graphs_fail_like_java() {
        motor_core::cluster::run_cluster_default(
            1,
            |reg| {
                let arr = reg.prim_array(ElemKind::I32);
                let next = motor_runtime::ClassId(reg.len() as u32);
                reg.define_class("LinkedArray")
                    .prim("tag", ElemKind::I32)
                    .transportable("array", arr)
                    .transportable("next", next)
                    .reference("next2", next)
                    .build();
            },
            |proc| {
                let j = MpiJava::new(proc.thread(), proc.comm().clone());
                let t = proc.thread();
                let node = t.vm().registry().by_name("LinkedArray").unwrap();
                let fnext = t.field_index(node, "next");
                let mut head = t.null_handle();
                for _ in 0..1500 {
                    let n = t.alloc_instance(node);
                    t.set_ref(n, fnext, head);
                    t.release(head);
                    head = n;
                }
                let err = j.send_object(head, 0, 0).unwrap_err();
                assert!(err.to_string().contains("StackOverflowError"));
            },
        )
        .unwrap();
    }
}
