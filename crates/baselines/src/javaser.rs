//! Java object serialization analog (`ObjectOutputStream`).
//!
//! The mpiJava baseline of Figure 10: "the mpiJava `MPI.Object` datatype,
//! which uses the standard Java serialization mechanism to transport
//! objects." Two measured behaviours of that mechanism are reproduced
//! (see DESIGN.md for the substitution argument):
//!
//! * **Recursion**: Java serialization walks the graph recursively; the
//!   paper reports "mpiJava results stop at 1024 objects because longer
//!   linked lists caused a stack overflow exception in the Java
//!   serialization mechanism." This implementation recurses with a
//!   configurable depth budget (default 1024 frames, two frames per
//!   object: `writeObject0` → `defaultWriteFields`) and returns
//!   [`JavaSerError::StackOverflow`] beyond it — which places the failure
//!   just past 1024 transported objects for the Figure 10 linked lists,
//!   where the paper's mpiJava line stops.
//! * **The bump**: "The bump in mpiJava is consistent and might suggest
//!   Java employs different serialization algorithms or data structures to
//!   serialize small or large numbers of objects." Our handle table starts
//!   as a linearly scanned list and rebuilds itself into a hash table when
//!   it crosses a threshold — a one-off rebuild cost at a fixed object
//!   count.
//!
//! Class descriptors (name + per-field JVM type signatures like `[I` and
//! `LLinkedArray;`) are written on first encounter, as the real stream
//! protocol does.

use std::collections::HashMap;
use std::fmt;

use motor_core::{CoreError, CoreResult};
use motor_runtime::object::ObjectRef;
use motor_runtime::{ClassId, ElemKind, FieldType, Handle, MotorThread, TypeKind};

/// Java-serializer failures.
#[derive(Debug)]
pub enum JavaSerError {
    /// The recursive graph walk exceeded its stack budget — the
    /// `java.lang.StackOverflowError` of the paper's Figure 10.
    StackOverflow {
        /// Frames at which the walk aborted.
        depth: usize,
    },
    /// Decoding error.
    Stream(String),
}

impl fmt::Display for JavaSerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JavaSerError::StackOverflow { depth } => {
                write!(
                    f,
                    "java.lang.StackOverflowError at serialization depth {depth}"
                )
            }
            JavaSerError::Stream(s) => write!(f, "stream corrupted: {s}"),
        }
    }
}

impl std::error::Error for JavaSerError {}

/// Threshold at which the handle table rebuilds from a linear list into a
/// hash table (the "bump").
pub const HANDLE_REHASH_THRESHOLD: usize = 256;

/// Default recursion budget (the JVM default thread stack fits roughly
/// this many `writeObject0` frames in the paper's setup).
pub const DEFAULT_STACK_BUDGET: usize = 1024;

const REC_CLASS_DESC: u8 = 0x72; // TC_CLASSDESC
const REC_OBJECT: u8 = 0x73; // TC_OBJECT
const REC_ARRAY: u8 = 0x75; // TC_ARRAY
const REC_REFERENCE: u8 = 0x71; // TC_REFERENCE
const REC_NULL: u8 = 0x70; // TC_NULL

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// The handle table with the linear→hash rebuild behaviour.
struct HandleTable {
    linear: Vec<(usize, u32)>,
    hashed: Option<HashMap<usize, u32>>,
    /// Number of rebuilds performed (test/diagnostic).
    rebuilds: usize,
}

impl HandleTable {
    fn new() -> Self {
        HandleTable {
            linear: Vec::new(),
            hashed: None,
            rebuilds: 0,
        }
    }

    fn len(&self) -> usize {
        match &self.hashed {
            Some(m) => m.len(),
            None => self.linear.len(),
        }
    }

    fn get(&self, addr: usize) -> Option<u32> {
        match &self.hashed {
            Some(m) => m.get(&addr).copied(),
            None => self
                .linear
                .iter()
                .find(|&&(a, _)| a == addr)
                .map(|&(_, i)| i),
        }
    }

    fn insert(&mut self, addr: usize) -> u32 {
        let idx = self.len() as u32;
        match &mut self.hashed {
            Some(m) => {
                m.insert(addr, idx);
            }
            None => {
                self.linear.push((addr, idx));
                if self.linear.len() >= HANDLE_REHASH_THRESHOLD {
                    // The bump: a full rebuild pass over every entry.
                    let mut m = HashMap::with_capacity(self.linear.len() * 2);
                    for &(a, i) in &self.linear {
                        m.insert(a, i);
                    }
                    self.hashed = Some(m);
                    self.rebuilds += 1;
                }
            }
        }
        idx
    }
}

/// The Java-style serializer bound to a managed thread.
pub struct JavaSerializer<'t> {
    thread: &'t MotorThread,
    stack_budget: usize,
}

impl<'t> JavaSerializer<'t> {
    /// Create with the default stack budget.
    pub fn new(thread: &'t MotorThread) -> Self {
        JavaSerializer {
            thread,
            stack_budget: DEFAULT_STACK_BUDGET,
        }
    }

    /// Override the recursion budget (tests).
    pub fn with_stack_budget(mut self, frames: usize) -> Self {
        self.stack_budget = frames;
        self
    }

    /// JVM type signature of a field.
    fn signature(reg: &motor_runtime::TypeRegistry, ty: FieldType) -> String {
        match ty {
            FieldType::Prim(k) => match k {
                ElemKind::Bool => "Z".into(),
                ElemKind::U8 | ElemKind::I8 => "B".into(),
                ElemKind::I16 | ElemKind::U16 => "S".into(),
                ElemKind::Char => "C".into(),
                ElemKind::I32 | ElemKind::U32 => "I".into(),
                ElemKind::I64 | ElemKind::U64 => "J".into(),
                ElemKind::F32 => "F".into(),
                ElemKind::F64 => "D".into(),
            },
            FieldType::Ref(c) => format!("L{};", reg.table(c).name),
        }
    }

    /// Serialize the object graph (recursively, with the stack budget).
    pub fn serialize(&self, root: Handle) -> Result<Vec<u8>, JavaSerError> {
        if self.thread.is_null(root) {
            return Err(JavaSerError::Stream("null root".into()));
        }
        let vm = self.thread.vm();
        let reg = vm.registry();
        let addr = vm.handle_addr(root);
        let mut out = Vec::new();
        let mut handles = HandleTable::new();
        let mut class_descs: HashMap<u32, u32> = HashMap::new();
        self.write_object(&reg, addr, 0, &mut out, &mut handles, &mut class_descs)?;
        Ok(out)
    }

    /// `writeObject0` — genuinely recursive.
    fn write_object(
        &self,
        reg: &motor_runtime::TypeRegistry,
        addr: usize,
        depth: usize,
        out: &mut Vec<u8>,
        handles: &mut HandleTable,
        class_descs: &mut HashMap<u32, u32>,
    ) -> Result<(), JavaSerError> {
        if depth > self.stack_budget {
            return Err(JavaSerError::StackOverflow { depth });
        }
        if addr == 0 {
            out.push(REC_NULL);
            return Ok(());
        }
        if let Some(idx) = handles.get(addr) {
            out.push(REC_REFERENCE);
            put_u32(out, idx);
            return Ok(());
        }
        handles.insert(addr);
        let obj = ObjectRef(addr);
        // SAFETY: cooperative non-polling context.
        let (mt_id, extra) = unsafe {
            let h = obj.header();
            (h.mt, h.extra as usize)
        };
        let mt = reg.table(ClassId(mt_id));
        match mt.kind.clone() {
            TypeKind::Class => {
                // Class descriptor on first encounter.
                let desc = match class_descs.get(&mt_id) {
                    Some(&d) => d,
                    None => {
                        let d = class_descs.len() as u32;
                        class_descs.insert(mt_id, d);
                        out.push(REC_CLASS_DESC);
                        put_u32(out, d);
                        put_str(out, &mt.name);
                        put_u16(out, mt.fields.len() as u16);
                        for f in &mt.fields {
                            put_str(out, &f.name);
                            put_str(out, &Self::signature(reg, f.ty));
                        }
                        d
                    }
                };
                out.push(REC_OBJECT);
                put_u32(out, desc);
                // Primitive fields first (as defaultWriteFields does):
                // values are fetched reflectively (boxed, one allocation
                // per field — `Field.get` returns `Object`), gathered into
                // the per-object block-data buffer, then flushed to the
                // stream, as `BlockDataOutputStream` does.
                let mut block: Vec<u8> = Vec::with_capacity(32);
                for f in &mt.fields {
                    if let FieldType::Prim(k) = f.ty {
                        // SAFETY: method-table offsets.
                        unsafe {
                            let p = obj.payload_ptr().add(f.offset as usize);
                            let mut boxed = Box::new([0u8; 8]);
                            std::ptr::copy_nonoverlapping(p, boxed.as_mut_ptr(), k.size());
                            std::hint::black_box(boxed.as_ptr());
                            block.extend_from_slice(&boxed[..k.size()]);
                        }
                    }
                }
                out.extend_from_slice(&block);
                for f in &mt.fields {
                    if let FieldType::Ref(_) = f.ty {
                        // SAFETY: as above.
                        let v = unsafe { obj.read_ref_at(f.offset as usize) };
                        // Two frames per nested object, as the JVM's
                        // writeObject0 → defaultWriteFields pair costs.
                        self.write_object(reg, v.0, depth + 2, out, handles, class_descs)?;
                    }
                }
            }
            TypeKind::PrimArray(k) => {
                out.push(REC_ARRAY);
                out.push(0); // prim array
                out.push(k.tag());
                put_u32(out, extra as u32);
                // SAFETY: array data window.
                unsafe {
                    let (p, bytes) = obj.prim_array_data(k.size());
                    out.extend_from_slice(std::slice::from_raw_parts(p, bytes));
                }
            }
            TypeKind::ObjArray(elem) => {
                out.push(REC_ARRAY);
                out.push(1); // object array
                put_str(out, &reg.table(elem).name);
                put_u32(out, extra as u32);
                for i in 0..extra {
                    // SAFETY: i < len.
                    let e = unsafe { *obj.obj_array_slot(i) };
                    self.write_object(reg, e, depth + 2, out, handles, class_descs)?;
                }
            }
            TypeKind::MdArray { .. } => {
                return Err(JavaSerError::Stream(
                    "Java has no true multidimensional arrays".into(),
                ))
            }
        }
        Ok(())
    }

    /// Deserialize a stream produced by [`JavaSerializer::serialize`];
    /// returns the root handle.
    pub fn deserialize(&self, data: &[u8]) -> CoreResult<Handle> {
        let mut d = Decoder {
            thread: self.thread,
            data,
            pos: 0,
            descs: Vec::new(),
            objects: Vec::new(),
            patches: Vec::new(),
        };
        let root = d.read_object()?;
        // Apply reference patches.
        for (src, site, target) in d.patches.drain(..) {
            let th = d.objects[target as usize];
            match site {
                Site::Field(fi) => self.thread.set_ref(d.objects[src], fi, th),
                Site::Element(ei) => self.thread.obj_array_set(d.objects[src], ei, th),
            }
        }
        let root_handle = match root {
            Val::Obj(i) => d.objects[i],
            Val::Null => return Err(CoreError::Serialization("null root".into())),
        };
        for (i, h) in d.objects.iter().enumerate() {
            if Val::Obj(i) != root {
                self.thread.release(*h);
            } else {
                let _ = h;
            }
        }
        Ok(root_handle)
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Val {
    Null,
    Obj(usize),
}

enum Site {
    Field(usize),
    Element(usize),
}

struct Decoder<'a, 't> {
    thread: &'t MotorThread,
    data: &'a [u8],
    pos: usize,
    descs: Vec<(ClassId, Vec<Option<ElemKind>>)>,
    objects: Vec<Handle>,
    patches: Vec<(usize, Site, u32)>,
}

impl Decoder<'_, '_> {
    fn take(&mut self, n: usize) -> CoreResult<&[u8]> {
        if self.pos + n > self.data.len() {
            return Err(CoreError::Serialization("truncated java stream".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> CoreResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> CoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn string(&mut self) -> CoreResult<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| CoreError::Serialization("bad utf8".into()))
    }

    /// Recursive `readObject0`.
    fn read_object(&mut self) -> CoreResult<Val> {
        loop {
            match self.u8()? {
                REC_NULL => return Ok(Val::Null),
                REC_REFERENCE => {
                    let idx = self.u32()? as usize;
                    if idx >= self.objects.len() {
                        return Err(CoreError::Serialization("bad back reference".into()));
                    }
                    return Ok(Val::Obj(idx));
                }
                REC_CLASS_DESC => {
                    let _d = self.u32()?;
                    let name = self.string()?;
                    let nf = self.u16()? as usize;
                    let mut fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        let _fname = self.string()?;
                        let sig = self.string()?;
                        fields.push(match sig.as_str() {
                            "Z" | "B" => Some(ElemKind::U8),
                            "S" => Some(ElemKind::I16),
                            "C" => Some(ElemKind::Char),
                            "I" => Some(ElemKind::I32),
                            "J" => Some(ElemKind::I64),
                            "F" => Some(ElemKind::F32),
                            "D" => Some(ElemKind::F64),
                            _ => None,
                        });
                    }
                    let class = {
                        let vm = self.thread.vm();
                        let reg = vm.registry();
                        reg.by_name(&name)
                            .ok_or(CoreError::UnknownType(name.clone()))?
                    };
                    // Field-kind fidelity: use the receiver's actual kinds
                    // for primitive widths (signatures collapse sign).
                    let actual: Vec<Option<ElemKind>> = {
                        let vm = self.thread.vm();
                        let reg = vm.registry();
                        let mt = reg.table(class);
                        if mt.fields.len() != nf {
                            return Err(CoreError::Serialization(format!(
                                "class `{name}` shape mismatch"
                            )));
                        }
                        mt.fields
                            .iter()
                            .zip(fields.iter())
                            .map(|(lf, wf)| match (lf.ty, wf) {
                                (FieldType::Prim(k), Some(_)) => Some(k),
                                (FieldType::Ref(_), None) => None,
                                _ => Some(ElemKind::U8), // mismatch caught below
                            })
                            .collect()
                    };
                    self.descs.push((class, actual));
                    // Loop: the next record is the object itself.
                }
                REC_OBJECT => {
                    let desc = self.u32()? as usize;
                    let (class, fields) = self
                        .descs
                        .get(desc)
                        .cloned()
                        .ok_or_else(|| CoreError::Serialization("bad class desc".into()))?;
                    let h = self.thread.alloc_instance(class);
                    let oi = self.objects.len();
                    self.objects.push(h);
                    // Primitive fields (in declaration order), then refs.
                    for (fi, f) in fields.iter().enumerate() {
                        if let Some(k) = f {
                            let raw = self.take(k.size())?.to_vec();
                            write_prim(self.thread, h, fi, *k, &raw);
                        }
                    }
                    for (fi, f) in fields.iter().enumerate() {
                        if f.is_none() {
                            match self.read_object()? {
                                Val::Null => {}
                                Val::Obj(t) => self.patches.push((oi, Site::Field(fi), t as u32)),
                            }
                        }
                    }
                    return Ok(Val::Obj(oi));
                }
                REC_ARRAY => {
                    let is_obj = self.u8()? == 1;
                    if is_obj {
                        let elem_name = self.string()?;
                        let elem = {
                            let vm = self.thread.vm();
                            let reg = vm.registry();
                            reg.by_name(&elem_name)
                                .ok_or(CoreError::UnknownType(elem_name))?
                        };
                        let len = self.u32()? as usize;
                        let h = self.thread.alloc_obj_array(elem, len);
                        let oi = self.objects.len();
                        self.objects.push(h);
                        for ei in 0..len {
                            match self.read_object()? {
                                Val::Null => {}
                                Val::Obj(t) => self.patches.push((oi, Site::Element(ei), t as u32)),
                            }
                        }
                        return Ok(Val::Obj(oi));
                    } else {
                        let k = ElemKind::from_tag(self.u8()?)
                            .ok_or_else(|| CoreError::Serialization("bad tag".into()))?;
                        let len = self.u32()? as usize;
                        let raw = self.take(len * k.size())?.to_vec();
                        let h = self.thread.alloc_prim_array(k, len);
                        let (p, plen) = self.thread.raw_data_window(h);
                        assert_eq!(plen, raw.len());
                        // SAFETY: fresh array, cooperative gap.
                        unsafe { std::ptr::copy_nonoverlapping(raw.as_ptr(), p, raw.len()) };
                        let oi = self.objects.len();
                        self.objects.push(h);
                        return Ok(Val::Obj(oi));
                    }
                }
                other => {
                    return Err(CoreError::Serialization(format!(
                        "bad java record {other:#x}"
                    )))
                }
            }
        }
    }
}

fn write_prim(t: &MotorThread, h: Handle, fi: usize, k: ElemKind, raw: &[u8]) {
    macro_rules! w {
        ($ty:ty) => {
            t.set_prim::<$ty>(h, fi, <$ty>::from_le_bytes(raw.try_into().unwrap()))
        };
    }
    match k {
        ElemKind::Bool | ElemKind::U8 => w!(u8),
        ElemKind::I8 => w!(i8),
        ElemKind::I16 => w!(i16),
        ElemKind::U16 | ElemKind::Char => w!(u16),
        ElemKind::I32 => w!(i32),
        ElemKind::U32 => w!(u32),
        ElemKind::I64 => w!(i64),
        ElemKind::U64 => w!(u64),
        ElemKind::F32 => w!(f32),
        ElemKind::F64 => w!(f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    fn fixture() -> (Arc<Vm>, ClassId) {
        let vm = Vm::new(VmConfig::default());
        let node = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            let next_id = ClassId(reg.len() as u32);
            reg.define_class("LinkedArray")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .reference("next2", next_id)
                .build()
        };
        (vm, node)
    }

    fn build_list(t: &MotorThread, node: ClassId, n: usize) -> Handle {
        let (ftag, farr, fnext) = (
            t.field_index(node, "tag"),
            t.field_index(node, "array"),
            t.field_index(node, "next"),
        );
        let mut head = t.null_handle();
        for i in (0..n).rev() {
            let h = t.alloc_instance(node);
            t.set_prim::<i32>(h, ftag, i as i32);
            let a = t.alloc_prim_array(ElemKind::I32, 4);
            t.prim_write(a, 0, &[i as i32; 4]);
            t.set_ref(h, farr, a);
            t.set_ref(h, fnext, head);
            t.release(a);
            t.release(head);
            head = h;
        }
        head
    }

    #[test]
    fn roundtrip_short_list() {
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let head = build_list(&t, node, 12);
        let ser = JavaSerializer::new(&t);
        let stream = ser.serialize(head).unwrap();
        let copy = ser.deserialize(&stream).unwrap();
        let (ftag, farr, fnext) = (
            t.field_index(node, "tag"),
            t.field_index(node, "array"),
            t.field_index(node, "next"),
        );
        let mut cur = t.clone_handle(copy);
        for i in 0..12 {
            assert_eq!(t.get_prim::<i32>(cur, ftag), i);
            let a = t.get_ref(cur, farr);
            let mut buf = [0i32; 4];
            t.prim_read(a, 0, &mut buf);
            assert_eq!(buf, [i; 4]);
            t.release(a);
            let nx = t.get_ref(cur, fnext);
            t.release(cur);
            cur = nx;
        }
        assert!(t.is_null(cur));
    }

    #[test]
    fn long_lists_overflow_the_stack() {
        // The paper: "longer linked lists caused a stack overflow
        // exception in the Java serialization mechanism" past 1024 objects.
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let long = build_list(&t, node, 2000);
        let ser = JavaSerializer::new(&t);
        match ser.serialize(long) {
            Err(JavaSerError::StackOverflow { depth }) => {
                assert!(depth > DEFAULT_STACK_BUDGET);
            }
            other => panic!("expected stack overflow, got {:?}", other.map(|v| v.len())),
        }
        // A list under the budget is fine. Each list element contributes
        // two frames (node + its array is sibling-depth, node chain is
        // depth), so 500 nodes stay well below 1024 frames.
        let short = build_list(&t, node, 500);
        assert!(ser.serialize(short).is_ok());
    }

    #[test]
    fn handle_table_rebuild_happens_once_past_threshold() {
        let mut ht = HandleTable::new();
        for a in 0..(HANDLE_REHASH_THRESHOLD + 50) {
            ht.insert(a * 8 + 1);
        }
        assert_eq!(ht.rebuilds, 1, "exactly one rebuild (the bump)");
        assert!(ht.hashed.is_some());
        // Lookups still correct across the rebuild.
        assert_eq!(ht.get(1), Some(0));
        assert_eq!(
            ht.get((HANDLE_REHASH_THRESHOLD + 49) * 8 + 1),
            Some((HANDLE_REHASH_THRESHOLD + 49) as u32)
        );
    }

    #[test]
    fn shared_references_use_backrefs() {
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let (farr, fnext) = (t.field_index(node, "array"), t.field_index(node, "next"));
        let shared = t.alloc_prim_array(ElemKind::I32, 2);
        let a = t.alloc_instance(node);
        let b = t.alloc_instance(node);
        t.set_ref(a, farr, shared);
        t.set_ref(b, farr, shared);
        t.set_ref(a, fnext, b);
        let ser = JavaSerializer::new(&t);
        let stream = ser.serialize(a).unwrap();
        let copy = ser.deserialize(&stream).unwrap();
        let ca = t.get_ref(copy, farr);
        let cb = t.get_ref(copy, fnext);
        let cba = t.get_ref(cb, farr);
        assert!(
            t.same_object(ca, cba),
            "sharing preserved through TC_REFERENCE"
        );
    }

    #[test]
    fn streams_carry_jvm_signatures() {
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_instance(node);
        let stream = JavaSerializer::new(&t).serialize(h).unwrap();
        let s = String::from_utf8_lossy(&stream);
        assert!(s.contains("LLinkedArray;"), "reference signature present");
    }
}
