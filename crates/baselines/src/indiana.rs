//! The Indiana University C# bindings analog (managed-wrapper MPI).
//!
//! Paper §2.1: "The Indiana bindings use the CLI P/Invoke (Platform
//! Invoke) interface to invoke the underlying MPI library ... impose a
//! slight overhead over the native MPICH, but suffer due to the overhead
//! of object pinning." And §8: "Pinning is performed for each MPI
//! operation."
//!
//! Architecture (Figure 1, left): the wrapper calls the message-passing
//! library through a managed-to-native interface; the library cannot see
//! runtime services, so every operation must (a) pay the P/Invoke
//! transition and (b) pin the buffer unconditionally — the library cannot
//! ask the collector whether pinning is necessary.

use motor_core::{CoreError, CoreResult, MpStatus};
use motor_mpc::Comm;
use motor_runtime::{Handle, MotorThread, TypeKind};

use crate::callconv::{HostProfile, TransitionState};
use crate::cliser::CliFormatter;

/// The Indiana C# bindings bound to a thread, communicator and host.
pub struct Indiana<'t> {
    thread: &'t MotorThread,
    comm: Comm,
    host: HostProfile,
    transition: TransitionState,
    /// Checksum sink keeping the transition work observable.
    pub checksum: std::cell::Cell<u64>,
}

impl<'t> Indiana<'t> {
    /// Bind the wrapper.
    pub fn new(thread: &'t MotorThread, comm: Comm, host: HostProfile) -> Indiana<'t> {
        Indiana {
            thread,
            comm,
            host,
            transition: TransitionState::new(),
            checksum: std::cell::Cell::new(0),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The host profile.
    pub fn host(&self) -> HostProfile {
        self.host
    }

    fn pinvoke(&self, args: &[u64]) {
        let c = self.transition.pinvoke(self.host, args);
        self.checksum.set(self.checksum.get() ^ c);
    }

    fn window(&self, obj: Handle) -> CoreResult<(*mut u8, usize)> {
        if self.thread.is_null(obj) {
            return Err(CoreError::NullBuffer);
        }
        // The C# bindings do NOT enforce object-model integrity (paper
        // §2.4: "Neither the C# MPI bindings presented in [7], mpiJava nor
        // the MPJ API consider object-model integrity") — but our runtime
        // window API refuses ref-bearing objects outright, so the wrapper
        // can only be driven with primitive buffers, as the benchmark does.
        let vm = self.thread.vm();
        let reg = vm.registry();
        let class = self.thread.class_of(obj);
        match reg.table(class).kind {
            TypeKind::PrimArray(_) | TypeKind::MdArray { .. } => {}
            _ => {
                return Err(CoreError::ObjectModelIntegrity(
                    reg.table(class).name.clone(),
                ))
            }
        }
        drop(reg);
        Ok(self.thread.raw_data_window(obj))
    }

    /// Blocking send: P/Invoke transition, unconditional pin, native call,
    /// unpin.
    pub fn send(&self, obj: Handle, dest: usize, tag: i32) -> CoreResult<()> {
        let (ptr, len) = self.window(obj)?;
        self.pinvoke(&[ptr as u64, len as u64, dest as u64, tag as u64]);
        // "Pinning is performed for each MPI operation."
        let pin = self.thread.pin(obj);
        // SAFETY: pinned for the duration of the operation.
        let res = (|| -> CoreResult<()> {
            let req = unsafe { self.comm.isend_ptr(ptr, len, dest, tag)? };
            self.comm.wait_with(&req, || self.thread.poll())?;
            Ok(())
        })();
        self.thread.unpin(pin);
        res
    }

    /// Blocking receive.
    pub fn recv(
        &self,
        obj: Handle,
        src: impl Into<motor_mpc::Source>,
        tag: i32,
    ) -> CoreResult<MpStatus> {
        let src = src.into();
        let (ptr, len) = self.window(obj)?;
        self.pinvoke(&[ptr as u64, len as u64, src.to_device() as u64, tag as u64]);
        let pin = self.thread.pin(obj);
        let res = (|| -> CoreResult<MpStatus> {
            // SAFETY: pinned for the duration.
            let req = unsafe { self.comm.irecv_ptr(ptr, len, src, tag)? };
            let st = self.comm.wait_with(&req, || self.thread.poll())?;
            Ok(MpStatus {
                source: st.source as usize,
                tag: st.tag,
                bytes: st.count,
            })
        })();
        self.thread.unpin(pin);
        res
    }

    /// Object transport: serialize with the standard CLI binary formatter
    /// and ship the blob with regular MPI routines (paper §8, Figure 10
    /// methodology).
    pub fn send_object(&self, obj: Handle, dest: usize, tag: i32) -> CoreResult<()> {
        let blob = CliFormatter::new(self.thread, self.host).serialize(obj)?;
        self.pinvoke(&[blob.len() as u64, dest as u64, tag as u64]);
        let size = (blob.len() as u64).to_le_bytes();
        self.comm.send_bytes(&size, dest, tag)?;
        self.pinvoke(&[blob.len() as u64, dest as u64, tag as u64]);
        self.comm.send_bytes(&blob, dest, tag)?;
        Ok(())
    }

    /// Receive an object shipped by [`Indiana::send_object`].
    pub fn recv_object(&self, src: impl Into<motor_mpc::Source>, tag: i32) -> CoreResult<Handle> {
        let src = src.into();
        let mut size = [0u8; 8];
        self.pinvoke(&[src.to_device() as u64, tag as u64]);
        let st = self.comm.recv_bytes(&mut size, src, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut blob = vec![0u8; len];
        self.pinvoke(&[len as u64, st.source as u64, st.tag as u64]);
        self.comm
            .recv_bytes(&mut blob, st.source as usize, st.tag)?;
        CliFormatter::new(self.thread, self.host).deserialize(&blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::stats::GcStats;
    use motor_runtime::ElemKind;

    fn pingpong_pair(host: HostProfile, f: impl Fn(&Indiana<'_>, &MotorThread) + Send + Sync) {
        motor_core::cluster::run_cluster_default(
            2,
            |_reg| {},
            move |proc| {
                let b = Indiana::new(proc.thread(), proc.comm().clone(), host);
                f(&b, proc.thread());
            },
        )
        .unwrap();
        let _ = GcStats::new();
    }

    #[test]
    fn wrapper_pingpong_roundtrip() {
        pingpong_pair(HostProfile::Net, |b, t| {
            let buf = t.alloc_prim_array(ElemKind::U8, 64);
            if b.rank() == 0 {
                t.prim_write(buf, 0, &[0x5Au8; 64]);
                b.send(buf, 1, 0).unwrap();
            } else {
                b.recv(buf, 0, 0).unwrap();
                let mut out = vec![0u8; 64];
                t.prim_read(buf, 0, &mut out);
                assert_eq!(out, vec![0x5Au8; 64]);
            }
        });
    }

    #[test]
    fn wrapper_pins_every_operation() {
        motor_core::cluster::run_cluster_default(
            2,
            |_reg| {},
            |proc| {
                let b = Indiana::new(proc.thread(), proc.comm().clone(), HostProfile::Sscli);
                let t = proc.thread();
                let buf = t.alloc_prim_array(ElemKind::U8, 16);
                // Promote: Motor's policy would stop pinning now, but the
                // wrapper cannot know that.
                t.collect_minor();
                assert!(!t.is_young(buf));
                let iters = 5;
                for _ in 0..iters {
                    if b.rank() == 0 {
                        b.send(buf, 1, 0).unwrap();
                        b.recv(buf, 1, 0).unwrap();
                    } else {
                        b.recv(buf, 0, 0).unwrap();
                        b.send(buf, 0, 0).unwrap();
                    }
                }
                let snap = proc.vm().stats_snapshot();
                assert_eq!(snap.pins, 2 * iters, "one pin per operation");
                assert_eq!(snap.unpins, 2 * iters);
            },
        )
        .unwrap();
    }

    #[test]
    fn wrapper_refuses_ref_bearing_objects() {
        motor_core::cluster::run_cluster_default(
            1,
            |reg| {
                let arr = reg.prim_array(ElemKind::I32);
                reg.define_class("Holder").transportable("a", arr).build();
            },
            |proc| {
                let b = Indiana::new(proc.thread(), proc.comm().clone(), HostProfile::Net);
                let t = proc.thread();
                let cls = {
                    let vm = t.vm();
                    let id = vm.registry().by_name("Holder").unwrap();
                    id
                };
                let h = t.alloc_instance(cls);
                assert!(matches!(
                    b.send(h, 0, 0),
                    Err(CoreError::ObjectModelIntegrity(_))
                ));
            },
        )
        .unwrap();
    }

    #[test]
    fn object_transport_roundtrips_on_both_hosts() {
        for host in [HostProfile::Sscli, HostProfile::Net] {
            motor_core::cluster::run_cluster_default(
                2,
                |reg| {
                    let arr = reg.prim_array(ElemKind::I32);
                    let next = motor_runtime::ClassId(reg.len() as u32);
                    reg.define_class("LinkedArray")
                        .prim("tag", ElemKind::I32)
                        .transportable("array", arr)
                        .transportable("next", next)
                        .reference("next2", next)
                        .build();
                },
                move |proc| {
                    let b = Indiana::new(proc.thread(), proc.comm().clone(), host);
                    let t = proc.thread();
                    let node = t.vm().registry().by_name("LinkedArray").unwrap();
                    let ftag = t.field_index(node, "tag");
                    if b.rank() == 0 {
                        let h = t.alloc_instance(node);
                        t.set_prim::<i32>(h, ftag, 321);
                        b.send_object(h, 1, 7).unwrap();
                    } else {
                        let h = b.recv_object(0, 7).unwrap();
                        assert_eq!(t.get_prim::<i32>(h, ftag), 321);
                    }
                },
            )
            .unwrap();
        }
    }
}
