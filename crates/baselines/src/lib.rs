//! # motor-baselines — the managed-wrapper comparison systems
//!
//! Every system the paper's evaluation (§8) compares Motor against, built
//! on the *same* managed runtime and Message Passing Core so the measured
//! differences isolate the binding architecture — exactly the paper's
//! experimental design (single node, "we are only interested in the
//! performance of the MPI implementation, rather than the underlying
//! transport"):
//!
//! * [`callconv`] — the managed-to-native transition machinery: P/Invoke
//!   (argument marshalling + security stack walk + mode flips) and JNI
//!   (method-ID resolution + copy-based array access), with the SSCLI and
//!   .NET host profiles.
//! * [`indiana`] — the Indiana University C# bindings analog: P/Invoke per
//!   call, **unconditional pinning per operation**, CLI binary
//!   serialization for object transport.
//! * [`mpijava`] — the mpiJava analog: JNI per call, automatic pin/unpin,
//!   staging-copy array access, Java serialization for `MPI.OBJECT`.
//! * [`cliser`] — the `BinaryFormatter` analog (opt-out traversal,
//!   assembly-qualified names, reflection cost differing by host profile,
//!   no split capability).
//! * [`javaser`] — the `ObjectOutputStream` analog (genuinely recursive
//!   with a stack budget → overflow on long lists; handle-table rebuild →
//!   the Figure 10 "bump").
//!
//! The native baseline (the paper's "C++ / MPICH2" line) is `motor-mpc`
//! used directly — no VM, no wrapper.

pub mod callconv;
pub mod cliser;
pub mod indiana;
pub mod javaser;
pub mod mpijava;

pub use callconv::{HostProfile, JniEnv, TransitionState};
pub use cliser::CliFormatter;
pub use indiana::Indiana;
pub use javaser::{JavaSerError, JavaSerializer, DEFAULT_STACK_BUDGET};
pub use mpijava::MpiJava;
