//! Managed-to-native call transition machinery: P/Invoke and JNI analogs.
//!
//! Paper §2.2: "using a managed-to-native call mechanism such as JNI or
//! P/Invoke imposes an overhead on each MPI call because both JNI and
//! P/Invoke require marshalling and impose security mechanisms." And §5.1
//! on the contrast: FCalls "do not have parameter marshalling and security
//! checks."
//!
//! These transitions *do the real work* those mechanisms did rather than
//! sleeping: arguments are marshalled into a C-ABI shadow block, a
//! simulated managed stack is walked for a security demand (the CLR's
//! `SecurityPermission` check on P/Invoke), thread-state flags are flipped
//! with fences (cooperative→preemptive→cooperative), and JNI additionally
//! resolves the method through a string-keyed ID table (`GetMethodID`).
//! The absolute cost is not calibrated to any particular CLR or JVM; what
//! matters for the reproduction is that the wrapper baselines pay a
//! per-call cost of this *shape* and the FCall path does not.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

/// Host runtime profile for the Indiana bindings (paper §8 benchmarks the
/// same bindings hosted by the SSCLI and by commercial .NET v1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostProfile {
    /// The Shared Source CLI: deeper helper frames on the transition and
    /// uncached reflection in the serializer.
    Sscli,
    /// Commercial .NET: shallower transition, per-class reflection caches.
    Net,
}

impl HostProfile {
    /// Simulated managed frames walked by the security demand.
    pub fn security_frames(self) -> usize {
        match self {
            HostProfile::Sscli => 48,
            HostProfile::Net => 24,
        }
    }
}

/// Permission sets checked per frame (Code Access Security granted four
/// standard sets to a typical frame: execution, unmanaged-code, the
/// assembly grant and the app-domain grant).
const PERMISSION_SETS_PER_FRAME: usize = 4;

/// A simulated managed stack frame (what the security walk inspects).
#[derive(Debug, Clone, Copy)]
struct Frame {
    method_token: u64,
    permission_sets: [u64; PERMISSION_SETS_PER_FRAME],
}

/// One thread's transition state: the simulated managed stack and the
/// cooperative/preemptive mode flag.
pub struct TransitionState {
    frames: Vec<Frame>,
    mode: AtomicU32,
}

impl Default for TransitionState {
    fn default() -> Self {
        // A plausible call stack: Main → app code → binding → interop.
        let frames = (0..64u64)
            .map(|i| Frame {
                method_token: 0x0600_0000 + i * 7,
                permission_sets: [
                    0xFFFF_FFFF_FFFF_FFFF ^ (i << 1),
                    0xFFFF_FFFF_0000_FFFF | i,
                    0x0000_FFFF_FFFF_0001 | (i << 3),
                    0xFFFF_0001_FFFF_FFFF | (i << 5),
                ],
            })
            .collect();
        TransitionState {
            frames,
            mode: AtomicU32::new(0),
        }
    }
}

impl TransitionState {
    /// Create the per-thread transition state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marshalled argument block of a P/Invoke (the C-ABI shadow copy).
    fn marshal(args: &[u64]) -> u64 {
        #[repr(C)]
        struct Shadow {
            slots: [u64; 8],
            count: u32,
            _pad: u32,
        }
        let mut s = Shadow {
            slots: [0; 8],
            count: args.len() as u32,
            _pad: 0,
        };
        for (i, &a) in args.iter().take(8).enumerate() {
            // Validate + widen each argument as the marshaller does.
            s.slots[i] = a.rotate_left((i as u32) & 7);
        }
        // Fold so the block cannot be optimized away.
        s.slots.iter().fold(s.count as u64, |acc, &v| {
            acc.wrapping_mul(31).wrapping_add(v)
        })
    }

    /// The security demand: walk `frames` of the simulated managed stack,
    /// intersecting every permission set on every frame — the Code Access
    /// Security stack walk that made 2005-era P/Invoke expensive.
    #[inline(never)]
    fn security_demand(&self, frames: usize) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for f in self.frames.iter().take(frames) {
            for &set in &f.permission_sets {
                if set & 0x1 == 0 {
                    // Demand failed — never happens for these stacks, but
                    // the check must be performed per set per frame.
                    return u64::MAX;
                }
                acc = (acc ^ set).wrapping_mul(0x0000_0100_0000_01B3);
            }
            acc = (acc ^ f.method_token).wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    /// Flip the thread into preemptive (native) mode and back — two fenced
    /// state transitions per call.
    fn mode_roundtrip(&self) {
        self.mode.store(1, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
        self.mode.store(0, Ordering::SeqCst);
    }

    /// Perform a full P/Invoke-style transition for a call with the given
    /// argument words. Returns a checksum (keeps the work observable).
    #[inline(never)]
    pub fn pinvoke(&self, host: HostProfile, args: &[u64]) -> u64 {
        let m = Self::marshal(args);
        let s = self.security_demand(host.security_frames());
        self.mode_roundtrip();
        m ^ s
    }
}

/// The JNI method-ID table: `GetMethodID(name, signature)` resolves
/// through a string-keyed map on every call site that has not cached the
/// jmethodID — mpiJava resolves per wrapper entry.
pub struct JniEnv {
    transition: TransitionState,
    method_ids: Mutex<HashMap<String, u64>>,
    next_id: AtomicU32,
}

impl Default for JniEnv {
    fn default() -> Self {
        JniEnv {
            transition: TransitionState::new(),
            method_ids: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(1),
        }
    }
}

impl JniEnv {
    /// Create a JNI environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve a method ID from `(class, name, signature)` — a string key
    /// is built and hashed on every call, as the JNI lookup does.
    pub fn get_method_id(&self, class: &str, name: &str, sig: &str) -> u64 {
        let key = format!("{class}.{name}{sig}");
        let mut ids = self.method_ids.lock();
        let next = &self.next_id;
        *ids.entry(key)
            .or_insert_with(|| next.fetch_add(1, Ordering::Relaxed) as u64)
    }

    /// Full JNI call transition: method resolution + marshalling +
    /// mode flip. Returns a checksum.
    #[inline(never)]
    pub fn transition(&self, class: &str, name: &str, sig: &str, args: &[u64]) -> u64 {
        let id = self.get_method_id(class, name, sig);
        let t = self.transition.pinvoke(HostProfile::Sscli, args);
        id ^ t
    }

    /// JNI `Get<Type>ArrayRegion` semantics: copy the managed array region
    /// into a native staging buffer (the copy-based access path).
    pub fn get_array_region(&self, src: &[u8], staging: &mut Vec<u8>) {
        staging.clear();
        staging.extend_from_slice(src);
    }

    /// JNI `Set<Type>ArrayRegion`: copy native staging back into the
    /// managed array region.
    pub fn set_array_region(&self, staging: &[u8], dst: &mut [u8]) {
        dst.copy_from_slice(staging);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinvoke_checksum_is_deterministic_and_profile_sensitive() {
        let t = TransitionState::new();
        let a = t.pinvoke(HostProfile::Sscli, &[1, 2, 3]);
        let b = t.pinvoke(HostProfile::Sscli, &[1, 2, 3]);
        assert_eq!(a, b);
        let c = t.pinvoke(HostProfile::Net, &[1, 2, 3]);
        assert_ne!(a, c, "frame depth differs between hosts");
    }

    #[test]
    fn security_frames_differ_by_host() {
        assert!(HostProfile::Sscli.security_frames() > HostProfile::Net.security_frames());
    }

    #[test]
    fn jni_method_ids_are_stable() {
        let env = JniEnv::new();
        let a = env.get_method_id("mpi/Comm", "send", "([BIII)V");
        let b = env.get_method_id("mpi/Comm", "send", "([BIII)V");
        let c = env.get_method_id("mpi/Comm", "recv", "([BIII)V");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn array_region_copies_roundtrip() {
        let env = JniEnv::new();
        let src = vec![7u8; 100];
        let mut staging = Vec::new();
        env.get_array_region(&src, &mut staging);
        assert_eq!(staging, src);
        let mut dst = vec![0u8; 100];
        env.set_array_region(&staging, &mut dst);
        assert_eq!(dst, src);
    }
}
