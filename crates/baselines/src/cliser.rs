//! CLI binary serialization analog (the `BinaryFormatter`).
//!
//! The paper's Figure 10 baseline for the Indiana bindings: "we used the
//! standard CLI binary serialization mechanism to produce a buffer to be
//! transported using the standard MPI routines." The figure also shows
//! "the difference in performance of the .Net and SSCLI serialization
//! mechanisms" — the same formatter is markedly slower on the SSCLI.
//!
//! Behavioural model (see DESIGN.md): both host profiles traverse the
//! *full* object graph (`Serializable` is opt-out, unlike Motor's opt-in
//! `Transportable`), write assembly-qualified type names in class records
//! and member names per class, and produce one flat, atomic blob with no
//! split capability. The profiles differ in reflection cost:
//!
//! * `Sscli`: every field of every *object* is resolved by name through
//!   the metadata (a string-compare scan per field per object).
//! * `Net`: field information is resolved once per *class* and cached.
//!
//! This is a substitution of implementation preserving cost structure;
//! we cannot run the closed-source CLRs themselves.

use std::collections::HashMap;

use motor_core::{CoreError, CoreResult};
use motor_runtime::object::ObjectRef;
use motor_runtime::{ClassId, ElemKind, FieldType, Handle, MotorThread, TypeKind};

use crate::callconv::HostProfile;

const NULL_REF: u32 = u32::MAX;

const REC_CLASS_DEF: u8 = 0;
const REC_OBJECT: u8 = 1;
const REC_PRIM_ARRAY: u8 = 2;
const REC_OBJ_ARRAY: u8 = 3;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// The CLI binary formatter bound to a managed thread and host profile.
pub struct CliFormatter<'t> {
    thread: &'t MotorThread,
    profile: HostProfile,
}

impl<'t> CliFormatter<'t> {
    /// Create a formatter for the given host.
    pub fn new(thread: &'t MotorThread, profile: HostProfile) -> Self {
        CliFormatter { thread, profile }
    }

    /// Assembly-qualified name, as BinaryFormatter records it.
    fn qualified_name(name: &str) -> String {
        format!("{name}, MotorApp, Version=1.0.0.0, Culture=neutral, PublicKeyToken=null")
    }

    /// Serialize the full object graph (all references followed).
    pub fn serialize(&self, root: Handle) -> CoreResult<Vec<u8>> {
        if self.thread.is_null(root) {
            return Err(CoreError::NullBuffer);
        }
        let vm = self.thread.vm();
        let reg = vm.registry();
        let root_addr = vm.handle_addr(root);

        let mut out = Vec::new();
        // Object IDs via a hash table (BinaryFormatter's ObjectIDGenerator).
        let mut ids: HashMap<usize, u32> = HashMap::new();
        let mut worklist: Vec<usize> = Vec::new();
        // Class-definition records already emitted.
        let mut class_defs: HashMap<u32, u32> = HashMap::new();
        // The .NET profile's per-class reflection cache.
        let mut field_cache: HashMap<u32, Vec<(u32, FieldType)>> = HashMap::new();

        let assign = |addr: usize, worklist: &mut Vec<usize>, ids: &mut HashMap<usize, u32>| {
            if let Some(&i) = ids.get(&addr) {
                return i;
            }
            let i = ids.len() as u32;
            ids.insert(addr, i);
            worklist.push(addr);
            i
        };
        assign(root_addr, &mut worklist, &mut ids);

        let mut emit = 0usize;
        while emit < worklist.len() {
            let addr = worklist[emit];
            emit += 1;
            let obj = ObjectRef(addr);
            // SAFETY: cooperative non-polling context.
            let (mt_id, extra) = unsafe {
                let h = obj.header();
                (h.mt, h.extra as usize)
            };
            let mt = reg.table(ClassId(mt_id));
            match mt.kind.clone() {
                TypeKind::Class => {
                    // Emit the class-definition record on first sight.
                    let def_id = match class_defs.get(&mt_id) {
                        Some(&d) => d,
                        None => {
                            let d = class_defs.len() as u32;
                            class_defs.insert(mt_id, d);
                            out.push(REC_CLASS_DEF);
                            put_u32(&mut out, d);
                            put_str(&mut out, &Self::qualified_name(&mt.name));
                            put_u16(&mut out, mt.fields.len() as u16);
                            for f in &mt.fields {
                                put_str(&mut out, &f.name);
                                match f.ty {
                                    FieldType::Prim(k) => {
                                        out.push(0);
                                        out.push(k.tag());
                                    }
                                    FieldType::Ref(_) => out.push(1),
                                }
                            }
                            d
                        }
                    };
                    out.push(REC_OBJECT);
                    put_u32(&mut out, def_id);
                    // Member values. Reflection cost differs by host.
                    match self.profile {
                        HostProfile::Net => {
                            let fields = field_cache.entry(mt_id).or_insert_with(|| {
                                mt.fields.iter().map(|f| (f.offset, f.ty)).collect()
                            });
                            for &(off, ty) in fields.iter() {
                                // SAFETY: method-table offsets.
                                unsafe {
                                    emit_field(&mut out, obj, off as usize, ty, |a| {
                                        assign(a, &mut worklist, &mut ids)
                                    });
                                }
                            }
                        }
                        HostProfile::Sscli => {
                            // Per-object, per-field metadata resolution.
                            for f in &mt.fields {
                                let (_, fd) = mt
                                    .field_by_name(&f.name)
                                    .expect("field exists in its own class");
                                // SAFETY: method-table offsets.
                                unsafe {
                                    emit_field(&mut out, obj, fd.offset as usize, fd.ty, |a| {
                                        assign(a, &mut worklist, &mut ids)
                                    });
                                }
                            }
                        }
                    }
                }
                TypeKind::PrimArray(k) => {
                    out.push(REC_PRIM_ARRAY);
                    out.push(k.tag());
                    put_u32(&mut out, extra as u32);
                    // SAFETY: array data window.
                    unsafe {
                        let (p, bytes) = obj.prim_array_data(k.size());
                        out.extend_from_slice(std::slice::from_raw_parts(p, bytes));
                    }
                }
                TypeKind::ObjArray(elem) => {
                    out.push(REC_OBJ_ARRAY);
                    put_str(&mut out, &Self::qualified_name(&reg.table(elem).name));
                    put_u32(&mut out, extra as u32);
                    for i in 0..extra {
                        // SAFETY: i < len.
                        let e = unsafe { *obj.obj_array_slot(i) };
                        if e == 0 {
                            put_u32(&mut out, NULL_REF);
                        } else {
                            put_u32(&mut out, assign(e, &mut worklist, &mut ids));
                        }
                    }
                }
                TypeKind::MdArray { .. } => {
                    return Err(CoreError::Serialization(
                        "BinaryFormatter analog does not support md arrays".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Deserialize a blob produced by [`CliFormatter::serialize`].
    pub fn deserialize(&self, data: &[u8]) -> CoreResult<Handle> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> CoreResult<&[u8]> {
            if *pos + n > data.len() {
                return Err(CoreError::Serialization("truncated blob".into()));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        macro_rules! u8r {
            () => {
                take(&mut pos, 1)?[0]
            };
        }
        macro_rules! u16r {
            () => {
                u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap())
            };
        }
        macro_rules! u32r {
            () => {
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap())
            };
        }
        macro_rules! strr {
            () => {{
                let n = u16r!() as usize;
                String::from_utf8(take(&mut pos, n)?.to_vec())
                    .map_err(|_| CoreError::Serialization("bad string".into()))?
            }};
        }

        struct ClassDef {
            class: ClassId,
            fields: Vec<Option<ElemKind>>,
        }
        let vm = self.thread.vm();
        let mut defs: Vec<ClassDef> = Vec::new();
        enum Rec<'a> {
            Object {
                def: usize,
                prims: Vec<(usize, &'a [u8])>,
                refs: Vec<(usize, u32)>,
            },
            PrimArray {
                kind: ElemKind,
                data: &'a [u8],
            },
            ObjArray {
                elem: ClassId,
                elems: Vec<u32>,
            },
        }
        let mut recs: Vec<Rec> = Vec::new();
        // The .NET-profile field-store cache.
        let mut store_cache: HashMap<u32, ()> = HashMap::new();

        while pos < data.len() {
            match u8r!() {
                REC_CLASS_DEF => {
                    let _d = u32r!();
                    let qname = strr!();
                    let name = qname.split(',').next().unwrap_or("").to_string();
                    let nf = u16r!() as usize;
                    let mut fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        let _fname = strr!();
                        let tag = u8r!();
                        if tag == 0 {
                            let k = ElemKind::from_tag(u8r!())
                                .ok_or_else(|| CoreError::Serialization("bad tag".into()))?;
                            fields.push(Some(k));
                        } else {
                            fields.push(None);
                        }
                    }
                    let class = vm
                        .registry()
                        .by_name(&name)
                        .ok_or(CoreError::UnknownType(name))?;
                    defs.push(ClassDef { class, fields });
                }
                REC_OBJECT => {
                    let def = u32r!() as usize;
                    let d = defs
                        .get(def)
                        .ok_or_else(|| CoreError::Serialization("bad class def".into()))?;
                    let mut prims = Vec::new();
                    let mut refs = Vec::new();
                    for (fi, f) in d.fields.iter().enumerate() {
                        match f {
                            Some(k) => prims.push((fi, take(&mut pos, k.size())?)),
                            None => {
                                let idx = u32r!();
                                if idx != NULL_REF {
                                    refs.push((fi, idx));
                                }
                            }
                        }
                    }
                    recs.push(Rec::Object { def, prims, refs });
                }
                REC_PRIM_ARRAY => {
                    let k = ElemKind::from_tag(u8r!())
                        .ok_or_else(|| CoreError::Serialization("bad tag".into()))?;
                    let len = u32r!() as usize;
                    recs.push(Rec::PrimArray {
                        kind: k,
                        data: take(&mut pos, len * k.size())?,
                    });
                }
                REC_OBJ_ARRAY => {
                    let qname = strr!();
                    let name = qname.split(',').next().unwrap_or("").to_string();
                    let elem = vm
                        .registry()
                        .by_name(&name)
                        .ok_or(CoreError::UnknownType(name))?;
                    let len = u32r!() as usize;
                    let mut elems = Vec::with_capacity(len);
                    for _ in 0..len {
                        elems.push(u32r!());
                    }
                    recs.push(Rec::ObjArray { elem, elems });
                }
                other => return Err(CoreError::Serialization(format!("bad record kind {other}"))),
            }
        }
        if recs.is_empty() {
            return Err(CoreError::Serialization("empty blob".into()));
        }

        // Allocate and fill.
        let mut handles: Vec<Handle> = Vec::with_capacity(recs.len());
        for r in &recs {
            let h = match r {
                Rec::Object { def, prims, .. } => {
                    let d = &defs[*def];
                    let h = self.thread.alloc_instance(d.class);
                    for &(fi, raw) in prims {
                        let k = d.fields[fi].expect("prim field");
                        // Reflection cost on store: the SSCLI profile
                        // resolves the field index by name per store.
                        if self.profile == HostProfile::Sscli {
                            let reg = vm.registry();
                            let mt = reg.table(d.class);
                            let name = mt.fields[fi].name.clone();
                            let _ = mt.field_by_name(&name);
                        } else {
                            store_cache.entry(d.class.0).or_insert(());
                        }
                        write_prim(self.thread, h, fi, k, raw);
                    }
                    h
                }
                Rec::PrimArray { kind, data } => {
                    let h = self
                        .thread
                        .alloc_prim_array(*kind, data.len() / kind.size());
                    let (p, len) = self.thread.raw_data_window(h);
                    assert_eq!(len, data.len());
                    // SAFETY: fresh array; cooperative non-polling gap.
                    unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), p, data.len()) };
                    h
                }
                Rec::ObjArray { elem, elems } => self.thread.alloc_obj_array(*elem, elems.len()),
            };
            handles.push(h);
        }
        // Patch references.
        for (oi, r) in recs.iter().enumerate() {
            match r {
                Rec::Object { refs, .. } => {
                    for &(fi, idx) in refs {
                        let t = *handles
                            .get(idx as usize)
                            .ok_or_else(|| CoreError::Serialization("bad ref".into()))?;
                        self.thread.set_ref(handles[oi], fi, t);
                    }
                }
                Rec::ObjArray { elems, .. } => {
                    for (ei, &idx) in elems.iter().enumerate() {
                        if idx != NULL_REF {
                            let t = *handles
                                .get(idx as usize)
                                .ok_or_else(|| CoreError::Serialization("bad ref".into()))?;
                            self.thread.obj_array_set(handles[oi], ei, t);
                        }
                    }
                }
                Rec::PrimArray { .. } => {}
            }
        }
        let root = handles[0];
        for h in handles.into_iter().skip(1) {
            self.thread.release(h);
        }
        Ok(root)
    }
}

/// Emit one field value; `assign` interns reference targets.
///
/// Every member value goes through a *boxing* step first — the
/// `FormatterServices.GetObjectData` path returns each field as a boxed
/// `object`, and that per-field heap allocation is a large part of why the
/// real BinaryFormatter was slow. The box is a genuine heap allocation
/// here too.
///
/// # Safety
/// `off`/`ty` must come from the object's method table.
unsafe fn emit_field(
    out: &mut Vec<u8>,
    obj: ObjectRef,
    off: usize,
    ty: FieldType,
    mut assign: impl FnMut(usize) -> u32,
) {
    match ty {
        FieldType::Prim(k) => {
            let p = obj.payload_ptr().add(off);
            // Box the value (GetObjectData returns object[]).
            let mut boxed = Box::new([0u8; 8]);
            std::ptr::copy_nonoverlapping(p, boxed.as_mut_ptr(), k.size());
            std::hint::black_box(boxed.as_ptr());
            out.extend_from_slice(&boxed[..k.size()]);
        }
        FieldType::Ref(_) => {
            let v = obj.read_ref_at(off);
            let boxed = Box::new(v.0);
            std::hint::black_box(boxed.as_ref());
            if *boxed == 0 {
                put_u32(out, NULL_REF);
            } else {
                put_u32(out, assign(*boxed));
            }
        }
    }
}

fn write_prim(t: &MotorThread, h: Handle, fi: usize, k: ElemKind, raw: &[u8]) {
    macro_rules! w {
        ($ty:ty) => {
            t.set_prim::<$ty>(h, fi, <$ty>::from_le_bytes(raw.try_into().unwrap()))
        };
    }
    match k {
        ElemKind::Bool | ElemKind::U8 => w!(u8),
        ElemKind::I8 => w!(i8),
        ElemKind::I16 => w!(i16),
        ElemKind::U16 | ElemKind::Char => w!(u16),
        ElemKind::I32 => w!(i32),
        ElemKind::U32 => w!(u32),
        ElemKind::I64 => w!(i64),
        ElemKind::U64 => w!(u64),
        ElemKind::F32 => w!(f32),
        ElemKind::F64 => w!(f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    fn fixture() -> (Arc<Vm>, ClassId) {
        let vm = Vm::new(VmConfig::default());
        let node = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            let next_id = ClassId(reg.len() as u32);
            reg.define_class("LinkedArray")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .reference("next2", next_id)
                .build()
        };
        (vm, node)
    }

    fn build_list(t: &MotorThread, node: ClassId, n: usize) -> Handle {
        let (ftag, farr, fnext) = (
            t.field_index(node, "tag"),
            t.field_index(node, "array"),
            t.field_index(node, "next"),
        );
        let mut head = t.null_handle();
        for i in (0..n).rev() {
            let h = t.alloc_instance(node);
            t.set_prim::<i32>(h, ftag, i as i32);
            let a = t.alloc_prim_array(ElemKind::I32, 4);
            t.prim_write(a, 0, &[i as i32; 4]);
            t.set_ref(h, farr, a);
            t.set_ref(h, fnext, head);
            t.release(a);
            t.release(head);
            head = h;
        }
        head
    }

    #[test]
    fn roundtrip_both_profiles() {
        for profile in [HostProfile::Sscli, HostProfile::Net] {
            let (vm, node) = fixture();
            let t = MotorThread::attach(Arc::clone(&vm));
            let head = build_list(&t, node, 8);
            let f = CliFormatter::new(&t, profile);
            let blob = f.serialize(head).unwrap();
            let copy = f.deserialize(&blob).unwrap();
            let (ftag, fnext) = (t.field_index(node, "tag"), t.field_index(node, "next"));
            let mut cur = t.clone_handle(copy);
            for i in 0..8 {
                assert_eq!(t.get_prim::<i32>(cur, ftag), i, "profile {profile:?}");
                let nx = t.get_ref(cur, fnext);
                t.release(cur);
                cur = nx;
            }
            assert!(t.is_null(cur));
        }
    }

    #[test]
    fn profiles_produce_identical_bytes() {
        // The hosts differ in *speed*, not in format.
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let head = build_list(&t, node, 5);
        let a = CliFormatter::new(&t, HostProfile::Sscli)
            .serialize(head)
            .unwrap();
        let b = CliFormatter::new(&t, HostProfile::Net)
            .serialize(head)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serializable_is_opt_out_all_refs_followed() {
        // Unlike Motor's Transportable, next2 IS serialized.
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let fnext2 = t.field_index(node, "next2");
        let ftag = t.field_index(node, "tag");
        let a = t.alloc_instance(node);
        let b = t.alloc_instance(node);
        t.set_prim::<i32>(b, ftag, 99);
        t.set_ref(a, fnext2, b);
        let f = CliFormatter::new(&t, HostProfile::Net);
        let blob = f.serialize(a).unwrap();
        let copy = f.deserialize(&blob).unwrap();
        let n2 = t.get_ref(copy, fnext2);
        assert!(!t.is_null(n2), "BinaryFormatter follows all references");
        assert_eq!(t.get_prim::<i32>(n2, ftag), 99);
    }

    #[test]
    fn blob_contains_assembly_qualified_names() {
        let (vm, node) = fixture();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_instance(node);
        let blob = CliFormatter::new(&t, HostProfile::Net)
            .serialize(h)
            .unwrap();
        let s = String::from_utf8_lossy(&blob);
        assert!(s.contains("LinkedArray, MotorApp, Version=1.0.0.0"));
    }
}
