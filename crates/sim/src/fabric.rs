//! `SimFabric` — fault-injecting links under a *threaded* cluster.
//!
//! [`SimNet`](crate::net::SimNet) owns the schedule and the clock; that is
//! the fully deterministic mode. But the conformance suite also needs to
//! exercise the real multi-threaded stack — `Universe::run_with` and
//! `motor-core`'s `run_cluster` — with faulty wires underneath. A
//! `SimFabric` packages a seed and a [`FaultPlan`] into the
//! [`LinkFactory`] those entry points accept. Wires run with
//! `advance_on_idle`, so latency steps and stall windows resolve without
//! an external stepper; chunk caps and jitter stay exactly as seeded.

use std::sync::Arc;

use motor_mpc::channel::LinkState;
use motor_mpc::LinkFactory;
use motor_pal::VirtualClock;
use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::link::{sim_pair, LinkControl};
use crate::rng::SimRng;

/// Severance controls for every wired pair, keyed `(lo rank, hi rank)`.
type ControlTable = Arc<Mutex<Vec<((usize, usize), LinkControl)>>>;

/// A seeded source of simulated links for threaded universes/clusters.
pub struct SimFabric {
    seed: u64,
    plan: FaultPlan,
    clock: Arc<VirtualClock>,
    controls: ControlTable,
}

impl SimFabric {
    /// A fabric whose every wire follows `plan`, with jitter streams
    /// forked deterministically from `seed` per rank pair.
    pub fn new(seed: u64, plan: FaultPlan) -> SimFabric {
        SimFabric {
            seed,
            plan,
            clock: VirtualClock::new(),
            controls: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The seed this fabric derives wires from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fabric-wide virtual clock (advanced lazily by idle reads).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Sever the link between global ranks `a` and `b`, wherever the
    /// universe wired it.
    pub fn close_link(&self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        for (k, ctl) in self.controls.lock().iter() {
            if *k == key {
                ctl.close();
            }
        }
    }

    /// The [`LinkFactory`] to hand to `UniverseConfig::link_factory` or
    /// `ClusterConfigBuilder::link_factory`. Each rank pair gets an
    /// independent RNG stream derived from the fabric seed and the pair,
    /// so wiring order cannot change the fault schedule.
    pub fn factory(&self) -> LinkFactory {
        let seed = self.seed;
        let plan = self.plan.clone();
        let clock = Arc::clone(&self.clock);
        let controls = Arc::clone(&self.controls);
        Arc::new(move |a: usize, b: usize| {
            let key = (a.min(b), a.max(b));
            // Pair-keyed seed: independent of the order the universe asks
            // for links in.
            let mut rng = SimRng::new(
                seed ^ (key.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (key.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
            );
            let (la, lb, ctl) = sim_pair(&clock, plan.clone(), plan.clone(), &mut rng, true);
            controls.lock().push((key, ctl));
            Ok((LinkState::new(Box::new(la)), LinkState::new(Box::new(lb))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_mpc::universe::{Universe, UniverseConfig};

    #[test]
    fn threaded_pingpong_over_sim() {
        let fabric = SimFabric::new(2, FaultPlan::trickle(3));
        let cfg = UniverseConfig {
            link_factory: Some(fabric.factory()),
            ..UniverseConfig::default()
        };
        Universe::run_with(2, cfg, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send_bytes(&[9u8; 16], 1, 0).unwrap();
            } else {
                let mut buf = [0u8; 16];
                world.recv_bytes(&mut buf, 0, 0).unwrap();
                assert_eq!(buf, [9u8; 16]);
            }
        })
        .unwrap();
    }

    #[test]
    fn universe_runs_over_simulated_trickle_links() {
        let fabric = SimFabric::new(11, FaultPlan::trickle(3));
        let cfg = UniverseConfig {
            link_factory: Some(fabric.factory()),
            ..UniverseConfig::default()
        };
        Universe::run_with(3, cfg, |proc| {
            let world = proc.world();
            let mine = [world.rank() as u8 + 1; 4];
            let mut all = vec![0u8; 4 * world.size()];
            world.allgather_bytes(&mine, &mut all).unwrap();
            for r in 0..world.size() {
                assert_eq!(&all[4 * r..4 * r + 4], [r as u8 + 1; 4]);
            }
        })
        .unwrap();
    }

    #[test]
    fn fabric_close_link_severs_wires() {
        let fabric = SimFabric::new(3, FaultPlan::clean());
        let fac = fabric.factory();
        let (mut a, _b) = fac(0, 1).unwrap();
        // Rank order must not matter for the lookup.
        fabric.close_link(1, 0);
        a.queue_bytes(vec![0u8; 8]);
        assert!(a.pump_out().is_err(), "severed wire rejects traffic");
    }
}
