//! # motor-sim — deterministic simulation of the Motor transport stack
//!
//! Every existing Motor test runs ranks on real OS threads with wall-clock
//! timing, so the interleavings the progress engine actually faces — and
//! the partial-I/O edge cases beneath it — are explored at the scheduler's
//! whim and never reproducibly. This crate replaces both sources of
//! nondeterminism:
//!
//! * [`link::SimLink`] is a fault-injecting [`motor_pal::ByteLink`]: per-
//!   seed deterministic partial writes/reads (down to a 1-byte trickle),
//!   latency steps, asymmetric stalls and mid-message link closure, all
//!   driven by a [`motor_pal::VirtualClock`] and a forked SplitMix64
//!   stream ([`rng::SimRng`]).
//! * [`net::SimNet`] wires N ranks' devices over simulated links on a
//!   single thread and owns the schedule: each step pumps one device
//!   (round-robin or seeded-random) and advances virtual time one tick.
//!   A hang is a step budget running out — a failure, not a CI timeout.
//! * [`fabric::SimFabric`] packages the same wires as a
//!   [`motor_mpc::LinkFactory`] so the *threaded* stack
//!   (`Universe::run_with`, `motor-core`'s `run_cluster`) runs over faulty
//!   links too.
//!
//! Failures print their seed and the one-line repro command
//! (`MOTOR_SIM_SEEDS=<seed> cargo test --test sim_conformance <name>`) and
//! dump a `motor-doctor` [`motor_obs::FlightRecord`], so the existing
//! diagnosis tooling renders the failing schedule.

pub mod fabric;
pub mod fault;
pub mod link;
pub mod net;
pub mod rng;

pub use fabric::SimFabric;
pub use fault::FaultPlan;
pub use link::{sim_pair, LinkControl, SimLink};
pub use net::{Schedule, SimConfig, SimNet};
pub use rng::SimRng;

/// The fixed seed matrix the CI conformance job runs on every push.
/// Chosen arbitrarily but *frozen*: a mutation caught once is caught on
/// every subsequent run.
pub const FIXED_SEEDS: [u64; 6] = [1, 7, 42, 1234, 0xDEAD_BEEF, 0x5EED_5EED];

/// The seeds a conformance test should run: the comma-separated list in
/// `$MOTOR_SIM_SEEDS` (decimal or `0x`-prefixed hex) when set — the
/// replay path — otherwise [`FIXED_SEEDS`].
pub fn seed_matrix() -> Vec<u64> {
    match std::env::var("MOTOR_SIM_SEEDS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                let parsed = match tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => tok.parse(),
                };
                parsed.unwrap_or_else(|_| panic!("MOTOR_SIM_SEEDS: bad seed {tok:?}"))
            })
            .collect(),
        _ => FIXED_SEEDS.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_is_the_frozen_one() {
        // The test harness may run with MOTOR_SIM_SEEDS set; only check
        // the default path when it isn't.
        if std::env::var("MOTOR_SIM_SEEDS").is_err() {
            assert_eq!(seed_matrix(), FIXED_SEEDS.to_vec());
        }
    }

    #[test]
    fn fixed_seeds_are_distinct() {
        let mut s = FIXED_SEEDS.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), FIXED_SEEDS.len());
    }
}
