//! Seeded deterministic randomness for the simulator.
//!
//! One SplitMix64 stream per consumer: the scheduler, each wire and each
//! generated workload own a [`fork`](SimRng::fork) of the run seed, so
//! adding a consumer never perturbs the draws another one sees — the
//! property that makes seed replay stable across test edits.

/// A SplitMix64 generator (Steele et al., "Fast splittable pseudorandom
/// number generators"). Tiny, full-period over the 2^64 seed space, and
/// trivially forkable.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// An independent child stream. Draws from the child never affect the
    /// parent beyond the single `next_u64` consumed here.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SimRng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn fork_isolates_child_draws() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut child = a.fork();
        // Consume lots from the child; parent must stay in lockstep with a
        // twin that forked but never used its child.
        let _ = b.fork();
        for _ in 0..50 {
            child.next_u64();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
