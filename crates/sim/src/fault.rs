//! The fault catalog: what a simulated wire is allowed to do to traffic.
//!
//! A [`FaultPlan`] configures one *direction* of a simulated link, so
//! asymmetric behaviour (e.g. a stalling forward path over a healthy
//! return path) is expressed by giving the two directions of a pair
//! different plans. All faults are deterministic per seed: a chunk size
//! drawn under jitter comes from the wire's own forked RNG stream.

/// Fault injection parameters for one wire direction.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Maximum bytes accepted per `try_write` (`None` = unlimited). `1`
    /// trickles the stream a byte at a time, the harshest exercise of the
    /// channel layer's partial-I/O resumption.
    pub write_chunk: Option<usize>,
    /// Maximum bytes returned per `try_read` (`None` = unlimited).
    pub read_chunk: Option<usize>,
    /// Randomize each chunk in `1..=cap` instead of always using the cap.
    pub jitter: bool,
    /// Every byte becomes readable only this many virtual ticks after it
    /// was written (a latency step).
    pub latency_ticks: u64,
    /// When nonzero, reads return 0 bytes during alternating windows of
    /// this many ticks (the wire "hiccups": on for one window, stalled for
    /// the next). Writes are unaffected — an asymmetric stall.
    pub stall_period: u64,
    /// Close the wire after this many bytes have been accepted for
    /// transmission; queued-but-undelivered bytes are dropped, so the
    /// reader observes a mid-message disconnect.
    pub close_after: Option<u64>,
}

impl FaultPlan {
    /// A faultless wire: unlimited chunks, zero latency, never closes.
    pub fn clean() -> FaultPlan {
        FaultPlan {
            write_chunk: None,
            read_chunk: None,
            jitter: false,
            latency_ticks: 0,
            stall_period: 0,
            close_after: None,
        }
    }

    /// Byte-trickle: both directions of I/O capped at `max` bytes per
    /// call, with jitter in `1..=max` (pass 1 for strict one-byte I/O).
    pub fn trickle(max: usize) -> FaultPlan {
        FaultPlan {
            write_chunk: Some(max),
            read_chunk: Some(max),
            jitter: max > 1,
            ..FaultPlan::clean()
        }
    }

    /// Add a latency step of `ticks` per byte.
    pub fn with_latency(mut self, ticks: u64) -> FaultPlan {
        self.latency_ticks = ticks;
        self
    }

    /// Add alternating stall windows of `period` ticks on the read side.
    pub fn with_stall(mut self, period: u64) -> FaultPlan {
        self.stall_period = period;
        self
    }

    /// Close the wire after `bytes` accepted bytes.
    pub fn with_close_after(mut self, bytes: u64) -> FaultPlan {
        self.close_after = Some(bytes);
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_compose() {
        let p = FaultPlan::trickle(4).with_latency(3).with_stall(10);
        assert_eq!(p.write_chunk, Some(4));
        assert_eq!(p.read_chunk, Some(4));
        assert!(p.jitter);
        assert_eq!(p.latency_ticks, 3);
        assert_eq!(p.stall_period, 10);
        assert_eq!(p.close_after, None);
        let q = FaultPlan::clean().with_close_after(100);
        assert_eq!(q.close_after, Some(100));
        assert!(!q.jitter);
    }

    #[test]
    fn strict_one_byte_trickle_has_no_jitter() {
        assert!(!FaultPlan::trickle(1).jitter);
    }
}
