//! `SimLink` — a fault-injecting, virtually-clocked [`ByteLink`].
//!
//! Each direction of a simulated pair is a [`Wire`]: an ordered queue of
//! `(ready_tick, byte)` entries governed by a [`FaultPlan`] and a shared
//! [`VirtualClock`]. Chunk caps and jitter model partial I/O, per-byte
//! ready ticks model latency, alternating read windows model asymmetric
//! stalls, and a byte-count fuse models mid-message link closure. All
//! randomness comes from a forked [`SimRng`], so identical seeds replay
//! identical byte schedules.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use motor_pal::{ByteLink, PalError, PalResult, TickSource, VirtualClock};
use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::rng::SimRng;

struct WireState {
    /// Bytes in flight: `(ready_tick, byte)`, ordered by write time.
    queue: VecDeque<(u64, u8)>,
    /// Total bytes ever accepted (drives `close_after`).
    written: u64,
    rng: SimRng,
}

/// One direction of a simulated link.
pub struct Wire {
    clock: Arc<VirtualClock>,
    plan: FaultPlan,
    state: Mutex<WireState>,
    closed: AtomicBool,
    /// Nudge the clock forward when a read finds nothing deliverable.
    /// Off in [`SimNet`](crate::net::SimNet) (the scheduler owns time);
    /// on under threaded fabrics, where nobody else advances it.
    advance_on_idle: bool,
}

impl Wire {
    fn new(
        clock: Arc<VirtualClock>,
        plan: FaultPlan,
        rng: SimRng,
        advance_on_idle: bool,
    ) -> Arc<Wire> {
        Arc::new(Wire {
            clock,
            plan,
            state: Mutex::new(WireState {
                queue: VecDeque::new(),
                written: 0,
                rng,
            }),
            closed: AtomicBool::new(false),
            advance_on_idle,
        })
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.state.lock().queue.clear();
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Whether reads are inside a stall window at `now`.
    fn stalled(&self, now: u64) -> bool {
        self.plan.stall_period > 0 && (now / self.plan.stall_period) % 2 == 1
    }

    fn chunk(cap: Option<usize>, jitter: bool, rng: &mut SimRng, want: usize) -> usize {
        match cap {
            None => want,
            Some(c) => {
                let c = if jitter && c > 1 {
                    rng.range(1, c as u64) as usize
                } else {
                    c
                };
                want.min(c.max(1))
            }
        }
    }

    fn write(&self, src: &[u8]) -> PalResult<usize> {
        if self.is_closed() {
            return Err(PalError::Disconnected);
        }
        if src.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock();
        let mut n = Self::chunk(
            self.plan.write_chunk,
            self.plan.jitter,
            &mut st.rng,
            src.len(),
        );
        if let Some(fuse) = self.plan.close_after {
            let remaining = fuse.saturating_sub(st.written) as usize;
            if remaining == 0 {
                drop(st);
                self.close();
                return Err(PalError::Disconnected);
            }
            n = n.min(remaining);
        }
        let ready = self.clock.now_ticks() + self.plan.latency_ticks;
        for &b in &src[..n] {
            st.queue.push_back((ready, b));
        }
        st.written += n as u64;
        let blown = self.plan.close_after.is_some_and(|fuse| st.written >= fuse);
        drop(st);
        if blown {
            // The fuse byte count is reached: drop everything still queued
            // so the reader sees a mid-message disconnect, not a tidy EOF.
            self.close();
        }
        Ok(n)
    }

    fn read(&self, dst: &mut [u8]) -> PalResult<usize> {
        if self.is_closed() {
            return Err(PalError::Disconnected);
        }
        if dst.is_empty() {
            return Ok(0);
        }
        let now = self.clock.now_ticks();
        if self.stalled(now) {
            if self.advance_on_idle {
                self.clock.advance(1);
            }
            return Ok(0);
        }
        let mut st = self.state.lock();
        let n = Self::chunk(
            self.plan.read_chunk,
            self.plan.jitter,
            &mut st.rng,
            dst.len(),
        );
        let mut got = 0;
        while got < n {
            match st.queue.front() {
                Some(&(ready, b)) if ready <= now => {
                    dst[got] = b;
                    got += 1;
                    st.queue.pop_front();
                }
                _ => break,
            }
        }
        if got == 0 && self.advance_on_idle {
            self.clock.advance(1);
        }
        Ok(got)
    }
}

/// One endpoint of a simulated pair: transmits on one wire, receives on
/// the other.
pub struct SimLink {
    tx: Arc<Wire>,
    rx: Arc<Wire>,
}

impl ByteLink for SimLink {
    fn try_write(&mut self, src: &[u8]) -> PalResult<usize> {
        self.tx.write(src)
    }

    fn try_read(&mut self, dst: &mut [u8]) -> PalResult<usize> {
        self.rx.read(dst)
    }

    fn is_closed(&self) -> bool {
        self.tx.is_closed() || self.rx.is_closed()
    }
}

/// External control over a simulated pair: inject a link failure at a
/// chosen point in the schedule.
#[derive(Clone)]
pub struct LinkControl {
    ab: Arc<Wire>,
    ba: Arc<Wire>,
}

impl LinkControl {
    /// Sever both directions. Queued-but-undelivered bytes are dropped;
    /// the next I/O on either endpoint observes `PalError::Disconnected`.
    pub fn close(&self) {
        self.ab.close();
        self.ba.close();
    }

    /// Whether the pair has been severed (by this control or a fuse).
    pub fn is_closed(&self) -> bool {
        self.ab.is_closed() || self.ba.is_closed()
    }
}

/// A connected simulated pair over `clock`. `plan_ab` governs the first
/// endpoint's transmit direction, `plan_ba` the second's — differing plans
/// give asymmetric links. `advance_on_idle` lets reads nudge the clock
/// when no scheduler owns it (threaded fabrics).
pub fn sim_pair(
    clock: &Arc<VirtualClock>,
    plan_ab: FaultPlan,
    plan_ba: FaultPlan,
    rng: &mut SimRng,
    advance_on_idle: bool,
) -> (SimLink, SimLink, LinkControl) {
    let ab = Wire::new(Arc::clone(clock), plan_ab, rng.fork(), advance_on_idle);
    let ba = Wire::new(Arc::clone(clock), plan_ba, rng.fork(), advance_on_idle);
    (
        SimLink {
            tx: Arc::clone(&ab),
            rx: Arc::clone(&ba),
        },
        SimLink {
            tx: Arc::clone(&ba),
            rx: Arc::clone(&ab),
        },
        LinkControl { ab, ba },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(plan: FaultPlan) -> (SimLink, SimLink, LinkControl, Arc<VirtualClock>) {
        let clock = VirtualClock::new();
        let mut rng = SimRng::new(1);
        let (a, b, c) = sim_pair(&clock, plan.clone(), plan, &mut rng, false);
        (a, b, c, clock)
    }

    #[test]
    fn clean_pair_moves_bytes_both_ways() {
        let (mut a, mut b, _c, _clock) = pair(FaultPlan::clean());
        assert_eq!(a.try_write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.try_write(b"ok").unwrap(), 2);
        assert_eq!(a.try_read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ok");
    }

    #[test]
    fn one_byte_trickle_caps_every_call() {
        let (mut a, mut b, _c, _clock) = pair(FaultPlan::trickle(1));
        assert_eq!(a.try_write(b"abc").unwrap(), 1);
        assert_eq!(a.try_write(b"bc").unwrap(), 1);
        assert_eq!(a.try_write(b"c").unwrap(), 1);
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'a');
        assert_eq!(b.try_read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'b');
    }

    #[test]
    fn latency_holds_bytes_until_clock_advances() {
        let (mut a, mut b, _c, clock) = pair(FaultPlan::clean().with_latency(5));
        a.try_write(b"x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(b.try_read(&mut buf).unwrap(), 0, "not ready at t=0");
        clock.advance(4);
        assert_eq!(b.try_read(&mut buf).unwrap(), 0, "not ready at t=4");
        clock.advance(1);
        assert_eq!(b.try_read(&mut buf).unwrap(), 1, "ready at t=5");
        assert_eq!(buf[0], b'x');
    }

    #[test]
    fn stall_windows_alternate() {
        let (mut a, mut b, _c, clock) = pair(FaultPlan::clean().with_stall(10));
        a.try_write(b"y").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(b.try_read(&mut buf).unwrap(), 1, "window [0,10) is open");
        a.try_write(b"z").unwrap();
        clock.advance(10);
        assert_eq!(b.try_read(&mut buf).unwrap(), 0, "window [10,20) stalls");
        clock.advance(10);
        assert_eq!(b.try_read(&mut buf).unwrap(), 1, "window [20,30) is open");
    }

    #[test]
    fn fuse_drops_undelivered_bytes_and_disconnects() {
        let (mut a, mut b, _c, _clock) = pair(FaultPlan::clean().with_close_after(4));
        assert_eq!(a.try_write(b"abcdef").unwrap(), 4, "fuse caps the write");
        assert!(a.is_closed());
        let mut buf = [0u8; 8];
        assert!(matches!(b.try_read(&mut buf), Err(PalError::Disconnected)));
        assert!(matches!(a.try_write(b"more"), Err(PalError::Disconnected)));
    }

    #[test]
    fn control_severs_both_directions() {
        let (mut a, mut b, c, _clock) = pair(FaultPlan::clean());
        a.try_write(b"q").unwrap();
        c.close();
        assert!(c.is_closed());
        let mut buf = [0u8; 1];
        assert!(matches!(b.try_read(&mut buf), Err(PalError::Disconnected)));
        assert!(matches!(a.try_write(b"r"), Err(PalError::Disconnected)));
        assert!(a.is_closed() && b.is_closed());
    }

    #[test]
    fn same_seed_same_jitter_schedule() {
        let sizes = |seed: u64| {
            let clock = VirtualClock::new();
            let mut rng = SimRng::new(seed);
            let (mut a, _b, _c) = sim_pair(
                &clock,
                FaultPlan::trickle(7),
                FaultPlan::trickle(7),
                &mut rng,
                false,
            );
            let payload = [0u8; 64];
            (0..10)
                .map(|_| a.try_write(&payload).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(sizes(42), sizes(42));
        assert_ne!(sizes(42), sizes(43));
    }
}
