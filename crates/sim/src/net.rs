//! `SimNet` — N ranks' devices on one thread under a virtual clock.
//!
//! The fabric replaces OS-thread nondeterminism with an explicit,
//! seed-driven schedule: every step picks one device (round-robin or
//! seeded-random), pumps its progress engine once, and advances virtual
//! time one tick. Hangs become test failures — a step budget runs out —
//! and every failure dumps a doctor [`FlightRecord`] plus the one-line
//! seed-replay command that reproduces the exact same schedule.

use std::collections::HashMap;
use std::sync::Arc;

use motor_mpc::channel::LinkState;
use motor_mpc::device::{Device, DeviceConfig};
use motor_mpc::error::MpcResult;
use motor_mpc::packet::Envelope;
use motor_mpc::progress::{ProgressConfig, ProgressMode, ProgressSet};
use motor_mpc::request::Request;
use motor_obs::{FlightRecord, RankFlight};
use motor_pal::{TickSource, VirtualClock};

use crate::fault::FaultPlan;
use crate::link::{sim_pair, LinkControl};
use crate::rng::SimRng;

/// Which device gets the next progress call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Cycle through ranks in order — the gentlest interleaving.
    RoundRobin,
    /// Pick a rank uniformly per step from the run seed — explores
    /// adversarial interleavings while staying fully reproducible.
    Random,
}

/// Simulation parameters.
#[derive(Clone)]
pub struct SimConfig {
    /// Number of ranks (devices) on the fabric.
    pub ranks: usize,
    /// Device tuning shared by every rank.
    pub device: DeviceConfig,
    /// Progress scheduling policy.
    pub schedule: Schedule,
    /// Fault plan applied to every wire direction.
    pub plan: FaultPlan,
    /// Asynchronous progress model, emulated deterministically: mode
    /// `thread` turns each scheduler step into a batched engine poll,
    /// mode `steal` follows each step with one seeded steal sweep. No
    /// real threads are spawned — every interleaving replays from the
    /// seed. The environment is deliberately *not* consulted here.
    pub progress: ProgressConfig,
}

impl SimConfig {
    /// A clean `ranks`-rank fabric with default device tuning and a
    /// seeded-random schedule.
    pub fn new(ranks: usize) -> SimConfig {
        SimConfig {
            ranks,
            device: DeviceConfig::default(),
            schedule: Schedule::Random,
            plan: FaultPlan::clean(),
            progress: ProgressConfig::off(),
        }
    }
}

/// A deterministic, single-threaded simulation of N communicating ranks.
pub struct SimNet {
    seed: u64,
    clock: Arc<VirtualClock>,
    devices: Vec<Arc<Device>>,
    controls: HashMap<(usize, usize), LinkControl>,
    rng: SimRng,
    schedule: Schedule,
    next_rr: usize,
    steps: u64,
    progress: ProgressConfig,
    steal_set: Option<Arc<ProgressSet>>,
}

impl SimNet {
    /// Build the fabric: one device per rank, a full mesh of simulated
    /// links (every wire forked from `seed`), and a fresh virtual clock.
    pub fn new(seed: u64, config: SimConfig) -> SimNet {
        assert!(config.ranks >= 1, "a fabric needs at least one rank");
        let clock = VirtualClock::new();
        let mut rng = SimRng::new(seed);
        let mut wire_rng = rng.fork();
        let devices: Vec<Arc<Device>> = (0..config.ranks)
            .map(|r| Device::new(r, config.device.clone()))
            .collect();
        let mut controls = HashMap::new();
        for i in 0..config.ranks {
            for j in (i + 1)..config.ranks {
                let (a, b, ctl) = sim_pair(
                    &clock,
                    config.plan.clone(),
                    config.plan.clone(),
                    &mut wire_rng,
                    false,
                );
                devices[i].set_link(j, LinkState::new(Box::new(a)));
                devices[j].set_link(i, LinkState::new(Box::new(b)));
                controls.insert((i, j), ctl);
            }
        }
        let steal_set = if config.progress.mode == ProgressMode::Steal {
            let set = ProgressSet::new();
            for d in &devices {
                set.register(d);
                d.install_steal_set(Arc::clone(&set));
            }
            Some(set)
        } else {
            None
        };
        SimNet {
            seed,
            clock,
            devices,
            controls,
            rng,
            schedule: config.schedule,
            next_rr: 0,
            steps: 0,
            progress: config.progress,
            steal_set,
        }
    }

    /// The seed this run replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Rank `r`'s device.
    pub fn device(&self, r: usize) -> &Arc<Device> {
        &self.devices[r]
    }

    /// All devices, in rank order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// A world-communicator envelope from rank `src` with tag `tag` (the
    /// device fills in length and request id at send time).
    pub fn envelope(src: usize, tag: i32) -> Envelope {
        Envelope {
            src: src as u32,
            gsrc: src as u32,
            tag,
            context: 0,
            len: 0,
            sreq: 0,
            flags: 0,
        }
    }

    /// Sever the link between ranks `a` and `b` at the current point in
    /// the schedule.
    pub fn close_link(&self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        self.controls
            .get(&key)
            .unwrap_or_else(|| panic!("no link between ranks {a} and {b}"))
            .close();
    }

    /// One scheduler step: pump one device's progress engine, advance the
    /// clock one tick. Returns whether that device moved anything.
    pub fn step(&mut self) -> MpcResult<bool> {
        let idx = match self.schedule {
            Schedule::RoundRobin => {
                let i = self.next_rr;
                self.next_rr = (self.next_rr + 1) % self.devices.len();
                i
            }
            Schedule::Random => self.rng.below(self.devices.len() as u64) as usize,
        };
        let moved = match self.progress.mode {
            // Legacy path, bit-for-bit: one plain pump pass.
            ProgressMode::Off => self.devices[idx].progress()?,
            // The engine's batched poll, run inline on the scheduler
            // thread — same code, deterministic interleavings.
            ProgressMode::Thread => {
                self.devices[idx].progress_batched(self.progress.max_batch_passes, true)?
            }
            // One pass on the chosen rank, then that rank steals one
            // sweep over its siblings (what its parked waiter would do).
            ProgressMode::Steal => {
                let own = self.devices[idx].progress()?;
                let stolen = self
                    .steal_set
                    .as_ref()
                    .is_some_and(|s| s.steal(self.devices[idx].rank()));
                own || stolen
            }
        };
        self.clock.advance(1);
        self.steps += 1;
        Ok(moved)
    }

    /// Step until `pred` holds or `budget` steps elapse; returns whether
    /// the predicate held.
    pub fn run_until(&mut self, budget: u64, mut pred: impl FnMut() -> bool) -> MpcResult<bool> {
        for _ in 0..budget {
            if pred() {
                return Ok(true);
            }
            self.step()?;
        }
        Ok(pred())
    }

    /// Drive the fabric until every request completes; on a progress
    /// error, a failed peer, or budget exhaustion (a simulated hang),
    /// [`fail`](SimNet::fail)s with the seed-replay line and a flight
    /// record.
    pub fn complete(&mut self, reqs: &[Request], budget: u64, test: &str) {
        for _ in 0..budget {
            if reqs.iter().all(|r| r.is_complete()) {
                return;
            }
            if let Some(p) = reqs.iter().find_map(|r| r.failed_peer()) {
                self.fail(
                    test,
                    &format!("in-flight operation lost its peer (rank {p})"),
                );
            }
            if let Err(e) = self.step() {
                self.fail(test, &format!("progress error: {e}"));
            }
        }
        if !reqs.iter().all(|r| r.is_complete()) {
            self.fail(test, "requests did not complete within the step budget");
        }
    }

    /// Cut a doctor flight record of the whole fabric as it stands.
    pub fn flight_record(&self) -> FlightRecord {
        FlightRecord {
            t_nanos: self.clock.now_ticks(),
            anomalies: Vec::new(),
            ranks: self
                .devices
                .iter()
                .map(|d| {
                    let reg = d.metrics();
                    RankFlight {
                        rank: d.rank(),
                        label: format!("rank {}", d.rank()),
                        done: false,
                        inflight: reg.inflight_ops(),
                        queue_depths: d.queue_depths(),
                        snapshot: reg.snapshot(),
                    }
                })
                .collect(),
        }
    }

    /// Report a failure: print the diagnosis, the seed and the one-line
    /// repro command; write the flight record to `$MOTOR_SIM_RECORD_DIR`
    /// if set; then panic (failing the test).
    pub fn fail(&self, test: &str, why: &str) -> ! {
        let seed = self.seed;
        let record = self.flight_record();
        eprintln!(
            "motor-sim: FAILURE in `{test}` with seed {seed} after {} steps: {why}",
            self.steps
        );
        eprint!("{}", record.diagnosis());
        if let Ok(dir) = std::env::var("MOTOR_SIM_RECORD_DIR") {
            if !dir.is_empty() {
                let path = format!("{dir}/sim-{test}-{seed}.json");
                let _ = std::fs::create_dir_all(&dir);
                match std::fs::write(&path, record.to_json()) {
                    Ok(()) => eprintln!("flight record written to {path}"),
                    Err(e) => eprintln!("could not write flight record to {path}: {e}"),
                }
            }
        }
        panic!(
            "motor-sim `{test}` failed with seed {seed}: {why} \
             (repro: MOTOR_SIM_SEEDS={seed} cargo test --test sim_conformance {test})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(net: &SimNet, from: usize, to: usize, tag: i32, data: &[u8]) -> Request {
        // SAFETY: test buffers outlive every drive loop below.
        unsafe {
            net.device(from)
                .isend_raw(
                    to,
                    SimNet::envelope(from, tag),
                    data.as_ptr(),
                    data.len(),
                    false,
                )
                .unwrap()
        }
    }

    fn recv(net: &SimNet, at: usize, src: i32, tag: i32, buf: &mut [u8]) -> Request {
        // SAFETY: as in `send`.
        unsafe {
            net.device(at)
                .irecv_raw(src, tag, 0, buf.as_mut_ptr(), buf.len())
                .unwrap()
        }
    }

    #[test]
    fn eager_exchange_over_trickle() {
        let mut net = SimNet::new(
            7,
            SimConfig {
                plan: FaultPlan::trickle(1),
                schedule: Schedule::RoundRobin,
                ..SimConfig::new(2)
            },
        );
        let data = [0xABu8; 50];
        let mut buf = [0u8; 50];
        let s = send(&net, 0, 1, 3, &data);
        let r = recv(&net, 1, 0, 3, &mut buf);
        net.complete(&[s, r], 100_000, "eager_exchange_over_trickle");
        assert_eq!(buf, data);
    }

    #[test]
    fn rendezvous_under_latency_and_random_schedule() {
        let mut net = SimNet::new(
            99,
            SimConfig {
                device: DeviceConfig {
                    eager_threshold: 64,
                    ..DeviceConfig::default()
                },
                plan: FaultPlan::trickle(16).with_latency(3),
                ..SimConfig::new(2)
            },
        );
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut buf = vec![0u8; data.len()];
        let s = send(&net, 0, 1, 9, &data);
        let r = recv(&net, 1, 0, 9, &mut buf);
        net.complete(&[s, r], 1_000_000, "rendezvous_under_latency");
        assert_eq!(buf, data);
    }

    #[test]
    fn identical_seeds_replay_identical_schedules() {
        let run = |seed: u64| {
            let mut net = SimNet::new(
                seed,
                SimConfig {
                    plan: FaultPlan::trickle(4).with_latency(2),
                    ..SimConfig::new(3)
                },
            );
            let data = [7u8; 200];
            let mut buf = [0u8; 200];
            let s = send(&net, 0, 2, 1, &data);
            let r = recv(&net, 2, 0, 1, &mut buf);
            let done = net
                .run_until(200_000, || s.is_complete() && r.is_complete())
                .unwrap();
            assert!(done);
            (net.steps(), net.clock().now_ticks())
        };
        assert_eq!(run(1234), run(1234));
    }

    #[test]
    fn flight_record_covers_every_rank() {
        let net = SimNet::new(5, SimConfig::new(3));
        let rec = net.flight_record();
        assert_eq!(rec.ranks.len(), 3);
        assert!(rec.anomalies.is_empty());
        assert!(rec.to_json().contains("\"rank\""));
    }
}
