//! Quickstart: a two-rank Motor program.
//!
//! Demonstrates the two kinds of message passing the paper defines:
//! regular MPI operations on managed buffers (zero-copy, datatype-free —
//! §4.2.1) and the extended object-oriented operations transporting a tree
//! of objects via the `Transportable` attribute (§4.2.2).
//!
//! Run with: `cargo run --example quickstart`

use motor::prelude::*;

fn main() {
    run_cluster_default(
        2,
        // Every rank's VM learns the application classes, like an SPMD
        // program loading the same assembly everywhere.
        |reg| {
            let arr = reg.prim_array(ElemKind::F64);
            let next_id = ClassId(reg.len() as u32);
            reg.define_class("Sample")
                .prim("id", ElemKind::I32)
                .transportable("values", arr)
                .transportable("next", next_id)
                .build();
        },
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let rank = mp.rank();

            // --- Regular MPI: a managed f64 array, no count, no datatype.
            let buf = t.alloc_prim_array(ElemKind::F64, 8);
            if rank == 0 {
                let data: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
                t.prim_write(buf, 0, &data);
                mp.send(buf, 1, 0).expect("send");
                println!("[rank 0] sent {data:?}");
            } else {
                let st = mp.recv(buf, 0, 0).expect("recv");
                let mut data = vec![0f64; 8];
                t.prim_read(buf, 0, &mut data);
                println!("[rank 1] received {} bytes: {data:?}", st.bytes);
                assert_eq!(data[7], 10.5);
            }

            // --- Extended OO operations: ship a small linked structure.
            let oomp = proc.oomp();
            let sample = proc.vm().registry().by_name("Sample").unwrap();
            let (fid, fvalues, fnext) = (
                t.field_index(sample, "id"),
                t.field_index(sample, "values"),
                t.field_index(sample, "next"),
            );
            if rank == 0 {
                // head(id=1) -> tail(id=2), each with a values array.
                let tail = t.alloc_instance(sample);
                t.set_prim::<i32>(tail, fid, 2);
                let head = t.alloc_instance(sample);
                t.set_prim::<i32>(head, fid, 1);
                let v = t.alloc_prim_array(ElemKind::F64, 3);
                t.prim_write(v, 0, &[2.5, 3.5, 4.5]);
                t.set_ref(head, fvalues, v);
                t.set_ref(head, fnext, tail);
                oomp.osend(head, 1, 7).expect("OSend");
                println!("[rank 0] OSent an object tree");
            } else {
                let (head, _) = oomp.orecv(0, 7).expect("ORecv");
                let id = t.get_prim::<i32>(head, fid);
                let next = t.get_ref(head, fnext);
                let next_id = t.get_prim::<i32>(next, fid);
                let values = t.get_ref(head, fvalues);
                let mut v = vec![0f64; t.array_len(values)];
                t.prim_read(values, 0, &mut v);
                println!("[rank 1] ORecv tree: head id={id}, next id={next_id}, values={v:?}");
                assert_eq!((id, next_id), (1, 2));
                assert_eq!(v, vec![2.5, 3.5, 4.5]);
            }

            // GC statistics: the pinning policy at work.
            mp.barrier().unwrap();
            let snap = proc.vm().stats_snapshot();
            println!(
                "[rank {rank}] minor GCs: {}, pins: {}, pins avoided (elder): {}, \
                 pins avoided (fast blocking): {}",
                snap.minor_collections,
                snap.pins,
                snap.pins_avoided_elder,
                snap.pins_avoided_fast_blocking
            );
        },
    )
    .expect("cluster run");
    println!("quickstart complete");
}
