//! Quickstart: a two-rank Motor program on the typed API.
//!
//! Demonstrates the two kinds of message passing the paper defines —
//! regular MPI operations on typed buffers (zero-copy, datatype-free —
//! §4.2.1) and the extended object-oriented operations transporting a tree
//! of objects (§4.2.2) — through [`Communicator`], the safe front-end:
//! no counts, no datatypes, no raw handles in application code.
//!
//! Run with: `cargo run --example quickstart`

use motor::prelude::*;

/// A transportable tree node: `#[derive(Transportable)]` generates the
/// split-representation serializer (paper §7.5) at compile time.
#[derive(Transportable, Debug, Default, PartialEq)]
struct Sample {
    id: i32,
    #[transportable]
    values: Vec<f64>,
    #[transportable]
    next: Option<Box<Sample>>,
}

fn main() {
    run_cluster_default(
        2,
        |_reg| {},
        |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();

            // --- Regular MPI on a managed typed array: no count, no
            // datatype, no manual release — ArrayBuf is RAII.
            if rank == 0 {
                let data: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
                let buf = comm.array_from(&data);
                comm.send_array(&buf, 1, 0).expect("send");
                println!("[rank 0] sent {data:?}");
            } else {
                let buf = comm.alloc_array::<f64>(8);
                let st = comm.recv_array(&buf, 0, 0).expect("recv");
                let data = buf.to_vec();
                println!("[rank 1] received {} bytes: {data:?}", st.bytes);
                assert_eq!(data[7], 10.5);
            }

            // --- The same, non-blocking, on a plain Rust slice: the
            // PendingSend/PendingRecv borrow the buffer until completion
            // and panic if dropped incomplete (the verifier's linear
            // request discipline, in the type system).
            if rank == 0 {
                let data = [1i32, 2, 3, 4];
                let pending = comm.isend_slice(&data, 1, 5).expect("isend");
                pending.wait().expect("wait");
            } else {
                let mut data = [0i32; 4];
                let pending = comm.irecv_slice(&mut data, 0, 5).expect("irecv");
                let n = pending.wait().expect("wait");
                assert_eq!((n, data), (4, [1, 2, 3, 4]));
                println!("[rank 1] irecv completed: {data:?}");
            }

            // --- Extended OO operations: ship a small linked structure.
            // The derive emits exactly the managed serializer's bytes, so
            // this interoperates with `Oomp::osend`/`orecv` ranks too.
            if rank == 0 {
                let tree = Sample {
                    id: 1,
                    values: vec![2.5, 3.5, 4.5],
                    next: Some(Box::new(Sample {
                        id: 2,
                        ..Default::default()
                    })),
                };
                comm.send_obj(&tree, 1, 7).expect("send_obj");
                println!("[rank 0] sent an object tree");
            } else {
                let (tree, _) = comm.recv_obj::<Sample>(0, 7).expect("recv_obj");
                let next_id = tree.next.as_ref().map(|n| n.id);
                println!(
                    "[rank 1] received tree: head id={}, next id={next_id:?}, values={:?}",
                    tree.id, tree.values
                );
                assert_eq!((tree.id, next_id), (1, Some(2)));
                assert_eq!(tree.values, vec![2.5, 3.5, 4.5]);
            }

            // GC statistics: the pinning policy at work.
            comm.barrier().unwrap();
            let snap = proc.vm().stats_snapshot();
            println!(
                "[rank {rank}] minor GCs: {}, pins: {}, pins avoided (elder): {}, \
                 pins avoided (fast blocking): {}",
                snap.minor_collections,
                snap.pins,
                snap.pins_avoided_elder,
                snap.pins_avoided_fast_blocking
            );
        },
    )
    .expect("cluster run");
    println!("quickstart complete");
}
