//! Dynamic process management: parents spawn Motor child VMs at runtime.
//!
//! The MPI-2 functionality the paper implements (§7: "dynamic process
//! management and dynamic intercommunication routines"): two parent ranks
//! collectively spawn three children, each a complete Motor VM; the
//! children solve sub-problems in their own world communicator (through
//! the typed API) and report results back through the parent↔children
//! intercommunicator using the Motor object transport.
//!
//! Run with: `cargo run --example dynamic_spawn`
//!
//! Runs under the `motor-doctor` watchdog. Spawned children register with
//! the parents' watchdog in their own spawn group, so a child stuck in
//! its world's `allreduce` — or a parent blocked forever in
//! `orecv_inter` because a child died before reporting — gets diagnosed
//! instead of hanging silently. Tune via `MOTOR_DOCTOR`, e.g.
//! `MOTOR_DOCTOR=deadline_ms=500,record=spawn.json`.

use motor::prelude::*;

fn define_types(reg: &mut motor::runtime::TypeRegistry) {
    let arr = reg.prim_array(ElemKind::F64);
    reg.define_class("Report")
        .prim("child", ElemKind::I32)
        .prim("partial", ElemKind::F64)
        .transportable("inputs", arr)
        .build();
}

fn main() {
    let config = ClusterConfig::builder()
        .ranks(2)
        .doctor(DoctorConfig::from_env().unwrap_or_default())
        .build();
    let metrics = run_cluster(config, define_types, |proc| {
        let rank = proc.mp().rank();
        println!("[parent {rank}] up");

        // Collectively spawn three Motor children.
        let inter =
            spawn_motor_children(proc, 3, ClusterConfig::default(), define_types, |child| {
                let t = child.thread();
                // Children cooperate in their own world through the typed
                // API: allreduce a checksum so each knows the group is
                // complete — a one-liner on plain values.
                let world = Communicator::bind(child.mp());
                let me = world.rank();
                let mask = world.allreduce(1i64 << me, ReduceOp::Sum).unwrap();
                assert_eq!(mask, 0b111, "all three children present");

                // Each child computes a partial sum and reports to parent
                // (child i reports to parent i % 2) via object transport
                // over the intercommunicator.
                let inputs: Vec<f64> = (0..8).map(|j| (me * 8 + j) as f64).collect();
                let partial: f64 = inputs.iter().sum();
                let cls = child.vm().registry().by_name("Report").unwrap();
                let (fc, fp, fi) = (
                    t.field_index(cls, "child"),
                    t.field_index(cls, "partial"),
                    t.field_index(cls, "inputs"),
                );
                let rep = t.alloc_instance(cls);
                t.set_prim::<i32>(rep, fc, me as i32);
                t.set_prim::<f64>(rep, fp, partial);
                let arr = t.alloc_prim_array(ElemKind::F64, 8);
                t.prim_write(arr, 0, &inputs);
                t.set_ref(rep, fi, arr);
                let parent = child.parent_comm().expect("spawned child has a parent");
                assert_eq!(parent.remote_size(), 2);
                child.osend_inter(parent, rep, me % 2, 4).unwrap();
                println!("[child {me}] reported partial {partial}");
            })
            .expect("spawn");

        // Parent i receives from the children whose index ≡ i (mod 2).
        let t = proc.thread();
        let cls = proc.vm().registry().by_name("Report").unwrap();
        let (fc, fp, fi) = (
            t.field_index(cls, "child"),
            t.field_index(cls, "partial"),
            t.field_index(cls, "inputs"),
        );
        let expecting = if rank == 0 { vec![0, 2] } else { vec![1] };
        let mut total = 0.0;
        for _ in &expecting {
            let (rep, from) = proc.orecv_inter(&inter, Source::Any, 4).unwrap();
            let child = t.get_prim::<i32>(rep, fc);
            let partial = t.get_prim::<f64>(rep, fp);
            assert!(expecting.contains(&(child as usize)));
            assert_eq!(child as usize, from, "intercomm source matches payload");
            // Verify the transported inputs reproduce the partial.
            let arr = t.get_ref(rep, fi);
            let mut inputs = vec![0f64; t.array_len(arr)];
            t.prim_read(arr, 0, &mut inputs);
            assert_eq!(inputs.iter().sum::<f64>(), partial);
            total += partial;
            println!("[parent {rank}] child {child} reported {partial}");
            t.release(arr);
            t.release(rep);
        }
        // Across both parents, the grand total covers 0..24.
        println!("[parent {rank}] local total {total}");
    })
    .expect("cluster run");
    assert!(
        metrics.anomalies.is_empty(),
        "doctor diagnosed anomalies: {:?}",
        metrics.anomalies
    );
    println!("dynamic_spawn complete (doctor: no anomalies)");
}
