//! Heat diffusion: a classic 1-D Jacobi stencil with halo exchange.
//!
//! The e-Scientist workload the paper's introduction motivates: a domain
//! decomposed over ranks, nearest-neighbour halo exchange, and a global
//! residual — written against the typed [`Communicator`]: halos exchange
//! with `sendrecv_slice` (deadlock-free, no even/odd ordering dance), the
//! residual is a one-line scalar `allreduce`, and sub-ranges are plain
//! Rust slicing.
//!
//! Run with: `cargo run --example heat_diffusion`
//!
//! Set `MOTOR_TRACE=heat.json` to export the run's merged cluster
//! timeline as Chrome-trace-event JSON — open it at `ui.perfetto.dev`
//! to see each rank's halo exchanges, collectives, GC pauses and the
//! flow arrows for every matched message, or feed it to
//! `motor-trace summary heat.json` for the wait-time breakdown and
//! cross-rank critical path.
//!
//! Set `MOTOR_DOCTOR=1` to run under the live health watchdog: every
//! blocking operation registers in a per-rank in-flight table, and a
//! monitor thread diagnoses stalls, deadlock suspects, pin leaks and GC
//! pressure while the stencil runs. `MOTOR_DOCTOR=deadline_ms=500,record=
//! heat_flight.json` tightens the stall deadline and dumps a flight
//! record (metrics + trace rings + in-flight tables as JSON) on anomaly;
//! `record_on_exit=1` writes one even for a healthy run. See
//! `DESIGN.md` § Observability.

use motor::prelude::*;

/// Domain cells per rank (interior, excluding the two halo cells).
const LOCAL: usize = 64;
/// Jacobi iterations.
const STEPS: usize = 200;
/// Diffusion coefficient (stability requires <= 0.5).
const ALPHA: f64 = 0.25;
/// Ranks.
const RANKS: usize = 4;

fn main() {
    // With MOTOR_TRACE set, keep enough trace-ring headroom for all 200
    // steps' events (the rings overwrite oldest-first once full).
    let trace_path = std::env::var("MOTOR_TRACE").ok();
    let config = ClusterConfig::builder()
        .ranks(RANKS)
        .event_capacity(1 << 16)
        .build();
    let metrics = run_cluster(
        config,
        |_reg| {},
        |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let n = comm.size();

            // Local field with halo cells at [0] and [LOCAL+1].
            let mut field = vec![0f64; LOCAL + 2];

            // Initial condition: a hot spike in the global middle.
            let global_n = LOCAL * n;
            let spike = global_n / 2;
            for i in 0..LOCAL {
                if rank * LOCAL + i == spike {
                    field[i + 1] = 1000.0;
                }
            }

            let left = if rank > 0 { Some(rank - 1) } else { None };
            let right = if rank + 1 < n { Some(rank + 1) } else { None };

            let mut residual = f64::INFINITY;
            for step in 0..STEPS {
                // Halo exchange: a combined send+receive per neighbour —
                // the library posts the receive first, so no deadlock
                // choreography is needed.
                if let Some(p) = right {
                    let send = [field[LOCAL]];
                    let mut halo = [0f64];
                    comm.sendrecv_slice(&send, p, &mut halo, p, 1).unwrap();
                    field[LOCAL + 1] = halo[0];
                }
                if let Some(p) = left {
                    let send = [field[1]];
                    let mut halo = [0f64];
                    comm.sendrecv_slice(&send, p, &mut halo, p, 1).unwrap();
                    field[0] = halo[0];
                }

                // Jacobi update on the interior.
                let mut new = field.clone();
                let mut local_res = 0.0f64;
                for i in 1..=LOCAL {
                    new[i] = field[i] + ALPHA * (field[i - 1] - 2.0 * field[i] + field[i + 1]);
                    local_res += (new[i] - field[i]).abs();
                }
                // Fixed boundaries at the global edges.
                if left.is_none() {
                    new[1] = 0.0;
                }
                if right.is_none() {
                    new[LOCAL] = 0.0;
                }
                field = new;

                // Global residual: scalar allreduce.
                residual = comm.allreduce(local_res, ReduceOp::Sum).unwrap();
                if rank == 0 && step % 50 == 0 {
                    println!("step {step:4}: residual {residual:.6}");
                }
            }

            // Gather the full field at rank 0 and sanity-check it. The
            // interior is a plain sub-slice — no staging buffer.
            let mut full = if rank == 0 {
                vec![0f64; LOCAL * n]
            } else {
                Vec::new()
            };
            let root_recv = if rank == 0 { Some(&mut full[..]) } else { None };
            comm.gather_slice(&field[1..=LOCAL], root_recv, 0).unwrap();
            if rank == 0 {
                let total: f64 = full.iter().sum();
                let peak = full.iter().cloned().fold(0.0, f64::max);
                println!("final: residual {residual:.6}, total heat {total:.3}, peak {peak:.3}");
                assert!(peak < 1000.0, "heat must have diffused");
                assert!(total > 0.0, "heat must remain in the domain");
                // The spike must have spread symmetrically around its site.
                let l = full[spike - 1];
                let r = full[spike + 1];
                assert!((l - r).abs() < 1e-9, "symmetric diffusion: {l} vs {r}");
                let snap = proc.vm().stats_snapshot();
                println!(
                    "rank 0 GC: {} minor collections, {} pins ({} avoided as elder)",
                    snap.minor_collections, snap.pins, snap.pins_avoided_elder
                );
            }
        },
    )
    .expect("cluster run");
    if let Some(path) = trace_path {
        let trace = metrics.trace();
        std::fs::write(&path, metrics.chrome_trace_json()).expect("write trace");
        println!(
            "wrote {path}: {} spans, {} message edges — open at ui.perfetto.dev",
            trace.spans.len(),
            trace.edges.len()
        );
    }
    println!("heat_diffusion complete");
}
