//! Heat diffusion: a classic 1-D Jacobi stencil with halo exchange.
//!
//! The e-Scientist workload the paper's introduction motivates: a domain
//! decomposed over ranks, nearest-neighbour halo exchange with the regular
//! (zero-copy) MPI operations on managed arrays, and a global residual via
//! `allreduce` — all compile-once-run-anywhere on the Motor VM.
//!
//! Run with: `cargo run --example heat_diffusion`
//!
//! Set `MOTOR_TRACE=heat.json` to export the run's merged cluster
//! timeline as Chrome-trace-event JSON — open it at `ui.perfetto.dev`
//! to see each rank's halo exchanges, collectives, GC pauses and the
//! flow arrows for every matched message, or feed it to
//! `motor-trace summary heat.json` for the wait-time breakdown and
//! cross-rank critical path.
//!
//! Set `MOTOR_DOCTOR=1` to run under the live health watchdog: every
//! blocking operation registers in a per-rank in-flight table, and a
//! monitor thread diagnoses stalls, deadlock suspects, pin leaks and GC
//! pressure while the stencil runs. `MOTOR_DOCTOR=deadline_ms=500,record=
//! heat_flight.json` tightens the stall deadline and dumps a flight
//! record (metrics + trace rings + in-flight tables as JSON) on anomaly;
//! `record_on_exit=1` writes one even for a healthy run. See
//! `DESIGN.md` § Observability.

use motor::prelude::*;

/// Domain cells per rank (interior, excluding the two halo cells).
const LOCAL: usize = 64;
/// Jacobi iterations.
const STEPS: usize = 200;
/// Diffusion coefficient (stability requires <= 0.5).
const ALPHA: f64 = 0.25;
/// Ranks.
const RANKS: usize = 4;

fn main() {
    // With MOTOR_TRACE set, keep enough trace-ring headroom for all 200
    // steps' events (the rings overwrite oldest-first once full).
    let trace_path = std::env::var("MOTOR_TRACE").ok();
    let config = ClusterConfig::builder()
        .ranks(RANKS)
        .event_capacity(1 << 16)
        .build();
    let metrics = run_cluster(
        config,
        |_reg| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let rank = mp.rank();
            let n = mp.size();

            // Local field with halo cells at [0] and [LOCAL+1].
            let field = t.alloc_prim_array(ElemKind::F64, LOCAL + 2);
            let next = t.alloc_prim_array(ElemKind::F64, LOCAL + 2);
            // Halo staging buffers (single cells).
            let send_cell = t.alloc_prim_array(ElemKind::F64, 1);
            let recv_cell = t.alloc_prim_array(ElemKind::F64, 1);

            // Initial condition: a hot spike in the global middle.
            let global_n = LOCAL * n;
            let spike = global_n / 2;
            let mut init = vec![0f64; LOCAL + 2];
            for i in 0..LOCAL {
                let g = rank * LOCAL + i;
                if g == spike {
                    init[i + 1] = 1000.0;
                }
            }
            t.prim_write(field, 0, &init);

            let left = if rank > 0 { Some(rank - 1) } else { None };
            let right = if rank + 1 < n { Some(rank + 1) } else { None };

            let mut residual = f64::INFINITY;
            let res_in = t.alloc_prim_array(ElemKind::F64, 1);
            let res_out = t.alloc_prim_array(ElemKind::F64, 1);

            for step in 0..STEPS {
                // Halo exchange. Ordering avoids deadlock: even ranks send
                // right first, odd ranks receive first.
                let exchange = |peer: usize, my_cell: usize, halo: usize, send_first: bool| {
                    let mut v = [0f64];
                    t.prim_read(field, my_cell, &mut v);
                    t.prim_write(send_cell, 0, &v);
                    if send_first {
                        mp.send(send_cell, peer, 1).unwrap();
                        mp.recv(recv_cell, peer, 1).unwrap();
                    } else {
                        mp.recv(recv_cell, peer, 1).unwrap();
                        mp.send(send_cell, peer, 1).unwrap();
                    }
                    let mut h = [0f64];
                    t.prim_read(recv_cell, 0, &mut h);
                    t.prim_write(field, halo, &h);
                };
                let even = rank % 2 == 0;
                if let Some(p) = right {
                    exchange(p, LOCAL, LOCAL + 1, even);
                }
                if let Some(p) = left {
                    exchange(p, 1, 0, even);
                }

                // Jacobi update on the interior.
                let mut cur = vec![0f64; LOCAL + 2];
                t.prim_read(field, 0, &mut cur);
                let mut new = cur.clone();
                let mut local_res = 0.0f64;
                for i in 1..=LOCAL {
                    new[i] = cur[i] + ALPHA * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
                    local_res += (new[i] - cur[i]).abs();
                }
                // Fixed boundaries at the global edges.
                if left.is_none() {
                    new[1] = 0.0;
                }
                if right.is_none() {
                    new[LOCAL] = 0.0;
                }
                t.prim_write(next, 0, &new);
                // Swap by copying back (handles are stable names).
                t.prim_read(next, 0, &mut cur);
                t.prim_write(field, 0, &cur);

                // Global residual.
                t.prim_write(res_in, 0, &[local_res]);
                mp.allreduce(res_in, res_out, ReduceOp::Sum).unwrap();
                let mut r = [0f64];
                t.prim_read(res_out, 0, &mut r);
                residual = r[0];
                if rank == 0 && step % 50 == 0 {
                    println!("step {step:4}: residual {residual:.6}");
                }
            }

            // Gather the full field at rank 0 and sanity-check it.
            let interior = t.alloc_prim_array(ElemKind::F64, LOCAL);
            let mut cur = vec![0f64; LOCAL + 2];
            t.prim_read(field, 0, &mut cur);
            t.prim_write(interior, 0, &cur[1..=LOCAL]);
            let full = if rank == 0 {
                Some(t.alloc_prim_array(ElemKind::F64, LOCAL * n))
            } else {
                None
            };
            mp.gather(interior, full, 0).unwrap();
            if rank == 0 {
                let full = full.unwrap();
                let mut all = vec![0f64; LOCAL * n];
                t.prim_read(full, 0, &mut all);
                let total: f64 = all.iter().sum();
                let peak = all.iter().cloned().fold(0.0, f64::max);
                println!("final: residual {residual:.6}, total heat {total:.3}, peak {peak:.3}");
                assert!(peak < 1000.0, "heat must have diffused");
                assert!(total > 0.0, "heat must remain in the domain");
                // The spike must have spread symmetrically around its site.
                let l = all[spike - 1];
                let r = all[spike + 1];
                assert!((l - r).abs() < 1e-9, "symmetric diffusion: {l} vs {r}");
                let snap = proc.vm().stats_snapshot();
                println!(
                    "rank 0 GC: {} minor collections, {} pins ({} avoided as elder)",
                    snap.minor_collections, snap.pins, snap.pins_avoided_elder
                );
            }
        },
    )
    .expect("cluster run");
    if let Some(path) = trace_path {
        let trace = metrics.trace();
        std::fs::write(&path, metrics.chrome_trace_json()).expect("write trace");
        println!(
            "wrote {path}: {} spans, {} message edges — open at ui.perfetto.dev",
            trace.spans.len(),
            trace.edges.len()
        );
    }
    println!("heat_diffusion complete");
}
