//! N-body: direct-summation gravitational dynamics across ranks.
//!
//! Each rank owns a block of particles. Every step, positions are shared
//! with `allgather_slice`, forces are computed against all particles, and
//! a leapfrog step advances the local block. Conservation of momentum
//! acts as the cross-rank correctness check.  All buffers are plain Rust
//! vectors: the typed API stages them through the managed transport
//! without counts, datatypes, or handle bookkeeping.
//!
//! Run with: `cargo run --example nbody`

use motor::prelude::*;

const RANKS: usize = 4;
const PER_RANK: usize = 16;
const STEPS: usize = 25;
const DT: f64 = 0.005;
const SOFTENING: f64 = 1e-2;

fn main() {
    run_cluster_default(
        RANKS,
        |_reg| {},
        |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let n_total = PER_RANK * comm.size();

            // Deterministic pseudo-random initial conditions (same scheme
            // on every rank; each extracts its own block).
            let mut all_pos = vec![0f64; 3 * n_total];
            let mut all_vel = vec![0f64; 3 * n_total];
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            let mut rand01 = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 11) as f64 / (1u64 << 53) as f64
            };
            for i in 0..n_total {
                for d in 0..3 {
                    all_pos[3 * i + d] = rand01() * 2.0 - 1.0;
                    all_vel[3 * i + d] = (rand01() - 0.5) * 0.1;
                }
            }
            // Zero net momentum.
            for d in 0..3 {
                let mean: f64 =
                    (0..n_total).map(|i| all_vel[3 * i + d]).sum::<f64>() / n_total as f64;
                for i in 0..n_total {
                    all_vel[3 * i + d] -= mean;
                }
            }

            let my0 = rank * PER_RANK;
            let mut pos = all_pos[3 * my0..3 * (my0 + PER_RANK)].to_vec();
            let mut vel = all_vel[3 * my0..3 * (my0 + PER_RANK)].to_vec();

            let mut global = vec![0f64; 3 * n_total];
            let mut initial_momentum = [0f64; 3];
            for step in 0..=STEPS {
                // Share all positions with a single allgather.
                comm.allgather_slice(&pos, &mut global).unwrap();

                // Forces on the local block from all particles (unit mass).
                let mut acc = vec![0f64; 3 * PER_RANK];
                for li in 0..PER_RANK {
                    let gi = my0 + li;
                    for j in 0..n_total {
                        if j == gi {
                            continue;
                        }
                        let dx = global[3 * j] - pos[3 * li];
                        let dy = global[3 * j + 1] - pos[3 * li + 1];
                        let dz = global[3 * j + 2] - pos[3 * li + 2];
                        let r2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                        let inv = 1.0 / (r2 * r2.sqrt());
                        acc[3 * li] += dx * inv;
                        acc[3 * li + 1] += dy * inv;
                        acc[3 * li + 2] += dz * inv;
                    }
                }

                // Global momentum check via allreduce.
                let mut local_mom = [0f64; 3];
                for li in 0..PER_RANK {
                    for d in 0..3 {
                        local_mom[d] += vel[3 * li + d];
                    }
                }
                let mut mom = [0f64; 3];
                comm.allreduce_slice(&local_mom, &mut mom, ReduceOp::Sum)
                    .unwrap();
                if step == 0 {
                    initial_momentum = mom;
                }
                if rank == 0 && step % 5 == 0 {
                    println!(
                        "step {step:3}: |P| = {:.3e}",
                        (mom[0].powi(2) + mom[1].powi(2) + mom[2].powi(2)).sqrt()
                    );
                }
                if step == STEPS {
                    for d in 0..3 {
                        assert!(
                            (mom[d] - initial_momentum[d]).abs() < 1e-9,
                            "momentum drift in dim {d}"
                        );
                    }
                    break;
                }

                // Leapfrog-ish update.
                for li in 0..PER_RANK {
                    for d in 0..3 {
                        vel[3 * li + d] += acc[3 * li + d] * DT;
                        pos[3 * li + d] += vel[3 * li + d] * DT;
                    }
                }
            }
            if rank == 0 {
                println!("momentum conserved across {STEPS} steps and {RANKS} ranks");
            }
        },
    )
    .expect("cluster run");
    println!("nbody complete");
}
