//! Object trees: `Transportable` traversal and OScatter / OGather.
//!
//! The capability the paper highlights as unavailable in any other managed
//! MPI ("the ability to scatter / gather arrays of objects", §1): an array
//! of `LinkedArray` objects is scattered across ranks via the split
//! serialized representation, transformed in parallel, and gathered back
//! into a single array at the root.
//!
//! Run with: `cargo run --example object_trees`

use motor::prelude::*;

const RANKS: usize = 4;
/// Elements in the scattered array (must divide evenly by RANKS).
const TOTAL: usize = 16;

fn main() {
    run_cluster_default(
        RANKS,
        |reg| {
            let arr = reg.prim_array(ElemKind::I32);
            let next_id = ClassId(reg.len() as u32);
            reg.define_class("LinkedArray")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .reference("next2", next_id) // NOT transportable: stays local
                .build();
        },
        |proc| {
            let oomp = proc.oomp();
            let t = proc.thread();
            let rank = oomp.rank();
            let node = proc.vm().registry().by_name("LinkedArray").unwrap();
            let (ftag, farr, fnext, fnext2) = (
                t.field_index(node, "tag"),
                t.field_index(node, "array"),
                t.field_index(node, "next"),
                t.field_index(node, "next2"),
            );

            // Root builds an array of 16 elements; each element also hangs
            // a private `next` chain of depth 1 and a non-transportable
            // `next2` that must NOT travel.
            let input = if rank == 0 {
                let arr = t.alloc_obj_array(node, TOTAL);
                for i in 0..TOTAL {
                    let e = t.alloc_instance(node);
                    t.set_prim::<i32>(e, ftag, i as i32);
                    let data = t.alloc_prim_array(ElemKind::I32, 4);
                    t.prim_write(data, 0, &[i as i32; 4]);
                    t.set_ref(e, farr, data);
                    // Transportable chain.
                    let child = t.alloc_instance(node);
                    t.set_prim::<i32>(child, ftag, 1000 + i as i32);
                    t.set_ref(e, fnext, child);
                    // Non-transportable side pointer (must arrive null).
                    t.set_ref(e, fnext2, child);
                    t.obj_array_set(arr, i, e);
                    t.release(e);
                    t.release(data);
                    t.release(child);
                }
                Some(arr)
            } else {
                None
            };

            // --- OScatter: every rank gets TOTAL/RANKS elements.
            let mine = oomp.oscatter(input, 0).expect("OScatter");
            let chunk = TOTAL / RANKS;
            assert_eq!(t.array_len(mine), chunk);
            println!("[rank {rank}] received {chunk} object trees");

            // Verify the opt-in semantics and transform.
            for i in 0..chunk {
                let e = t.obj_array_get(mine, i);
                let tag = t.get_prim::<i32>(e, ftag);
                assert_eq!(tag as usize, rank * chunk + i, "rank-ordered chunks");
                let child = t.get_ref(e, fnext);
                assert!(!t.is_null(child), "transportable chain arrived");
                assert_eq!(t.get_prim::<i32>(child, ftag), 1000 + tag);
                let side = t.get_ref(e, fnext2);
                assert!(
                    t.is_null(side),
                    "non-transportable reference arrived as null"
                );
                // Transform: negate the tag, square the data.
                t.set_prim::<i32>(e, ftag, -tag);
                let data = t.get_ref(e, farr);
                let mut v = vec![0i32; t.array_len(data)];
                t.prim_read(data, 0, &mut v);
                for x in v.iter_mut() {
                    *x *= *x;
                }
                t.prim_write(data, 0, &v);
                t.release(data);
                t.release(side);
                t.release(child);
                t.release(e);
            }

            // --- OGather: reassemble the full array at root.
            let full = oomp.ogather(mine, 0).expect("OGather");
            if rank == 0 {
                let full = full.expect("root receives the gathered array");
                assert_eq!(t.array_len(full), TOTAL);
                for i in 0..TOTAL {
                    let e = t.obj_array_get(full, i);
                    assert_eq!(t.get_prim::<i32>(e, ftag), -(i as i32));
                    let data = t.get_ref(e, farr);
                    let mut v = vec![0i32; 4];
                    t.prim_read(data, 0, &mut v);
                    assert_eq!(v, vec![(i * i) as i32; 4]);
                    t.release(data);
                    t.release(e);
                }
                println!("[rank 0] gathered and verified all {TOTAL} transformed trees");
            }
        },
    )
    .expect("cluster run");
    println!("object_trees complete");
}
