//! Object trees: `#[derive(Transportable)]` and scatter/gather of objects.
//!
//! The capability the paper highlights as unavailable in any other managed
//! MPI ("the ability to scatter / gather arrays of objects", §1): an array
//! of `LinkedArray` trees is scattered across ranks via the split
//! serialized representation, transformed in parallel, and gathered back
//! at the root — all on plain Rust values through the typed API, with the
//! serializer generated at compile time by `#[derive(Transportable)]`.
//!
//! Run with: `cargo run --example object_trees`

use motor::prelude::*;

const RANKS: usize = 4;
/// Elements in the scattered array (must divide evenly by RANKS).
const TOTAL: usize = 16;

/// Mirror of the paper's Figure 5 class: a transportable data array, a
/// transportable `next` chain, and a non-transportable `next2` side
/// pointer that must NOT travel (no `#[transportable]` attribute).
#[derive(Transportable, Debug, Default, PartialEq)]
struct LinkedArray {
    tag: i32,
    #[transportable]
    array: Vec<i32>,
    #[transportable]
    next: Option<Box<LinkedArray>>,
    next2: Option<Box<LinkedArray>>,
}

fn main() {
    run_cluster_default(
        RANKS,
        |_reg| {},
        |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();

            // Root builds 16 trees; each hangs a transportable `next`
            // chain of depth 1 and a non-transportable `next2` that stays
            // behind.
            let input: Option<Vec<LinkedArray>> = (rank == 0).then(|| {
                (0..TOTAL as i32)
                    .map(|i| LinkedArray {
                        tag: i,
                        array: vec![i; 4],
                        next: Some(Box::new(LinkedArray {
                            tag: 1000 + i,
                            ..Default::default()
                        })),
                        next2: Some(Box::new(LinkedArray {
                            tag: -1,
                            ..Default::default()
                        })),
                    })
                    .collect()
            });

            // --- Scatter: every rank gets TOTAL/RANKS trees.
            let mut mine = comm
                .scatter_objs(input.as_deref(), 0)
                .expect("scatter_objs");
            let chunk = TOTAL / RANKS;
            assert_eq!(mine.len(), chunk);
            println!("[rank {rank}] received {chunk} object trees");

            // Verify the opt-in semantics and transform in place.
            for (i, e) in mine.iter_mut().enumerate() {
                assert_eq!(e.tag as usize, rank * chunk + i, "rank-ordered chunks");
                let next = e.next.as_ref().expect("transportable chain arrived");
                assert_eq!(next.tag, 1000 + e.tag);
                assert!(
                    e.next2.is_none(),
                    "non-transportable reference arrived as default"
                );
                // Transform: negate the tag, square the data.
                e.tag = -e.tag;
                for x in e.array.iter_mut() {
                    *x *= *x;
                }
            }

            // --- Gather: reassemble the full array at root.
            let full = comm.gather_objs(&mine, 0).expect("gather_objs");
            if rank == 0 {
                let full = full.expect("root receives the gathered array");
                assert_eq!(full.len(), TOTAL);
                for (i, e) in full.iter().enumerate() {
                    assert_eq!(e.tag, -(i as i32));
                    assert_eq!(e.array, vec![(i * i) as i32; 4]);
                }
                println!("[rank 0] gathered and verified all {TOTAL} transformed trees");
            }
        },
    )
    .expect("cluster run");
    println!("object_trees complete");
}
