//! Task farm: master/worker scheduling with object transport.
//!
//! The master OSends *task objects* (a class with parameters and a
//! `Transportable` data array) to whichever worker is idle, receives
//! result objects back with `ANY_SOURCE`, and shuts workers down with a
//! poison tag — the kind of irregular, structured-data communication the
//! extended object-oriented operations exist for (paper §4.2.2).
//!
//! Run with: `cargo run --example task_farm`
//!
//! Runs under the `motor-doctor` watchdog: irregular master/worker
//! traffic is exactly where a lost poison message or a worker stuck in
//! `ORecv` turns into a silent hang, so the doctor's in-flight table and
//! stall diagnosis stay on. Tune it (or dump a flight record) through
//! `MOTOR_DOCTOR`, e.g. `MOTOR_DOCTOR=deadline_ms=500,record=farm.json`.

use motor::prelude::*;

const RANKS: usize = 4; // 1 master + 3 workers
const TASKS: usize = 12;
const TAG_TASK: i32 = 1;
const TAG_RESULT: i32 = 2;
const TAG_STOP: i32 = 3;

fn main() {
    let metrics = run_cluster(
        ClusterConfig::builder()
            .ranks(RANKS)
            .doctor(DoctorConfig::from_env().unwrap_or_default())
            .build(),
        |reg| {
            let arr = reg.prim_array(ElemKind::F64);
            reg.define_class("Task")
                .prim("id", ElemKind::I32)
                .prim("exponent", ElemKind::I32)
                .transportable("samples", arr)
                .build();
            reg.define_class("TaskResult")
                .prim("id", ElemKind::I32)
                .prim("value", ElemKind::F64)
                .build();
        },
        |proc| {
            let oomp = proc.oomp();
            let mp = proc.mp();
            let t = proc.thread();
            let task_cls = proc.vm().registry().by_name("Task").unwrap();
            let result_cls = proc.vm().registry().by_name("TaskResult").unwrap();
            let (f_id, f_exp, f_samples) = (
                t.field_index(task_cls, "id"),
                t.field_index(task_cls, "exponent"),
                t.field_index(task_cls, "samples"),
            );
            let (r_id, r_value) = (
                t.field_index(result_cls, "id"),
                t.field_index(result_cls, "value"),
            );

            if mp.rank() == 0 {
                // ---- master ----
                let mut next_task = 0usize;
                let mut done = [f64::NAN; TASKS];
                let mut outstanding = 0usize;
                // Prime every worker with one task.
                for w in 1..mp.size() {
                    if next_task < TASKS {
                        send_task(proc, task_cls, (f_id, f_exp, f_samples), next_task, w);
                        next_task += 1;
                        outstanding += 1;
                    }
                }
                // Farm: collect a result, hand out the next task.
                while outstanding > 0 {
                    let (res, st) = oomp.orecv(Source::Any, TAG_RESULT).unwrap();
                    outstanding -= 1;
                    let id = t.get_prim::<i32>(res, r_id) as usize;
                    done[id] = t.get_prim::<f64>(res, r_value);
                    t.release(res);
                    println!(
                        "[master] task {id} done by worker {} -> {:.4}",
                        st.source, done[id]
                    );
                    if next_task < TASKS {
                        send_task(
                            proc,
                            task_cls,
                            (f_id, f_exp, f_samples),
                            next_task,
                            st.source,
                        );
                        next_task += 1;
                        outstanding += 1;
                    }
                }
                // Poison every worker.
                let stop = t.alloc_prim_array(ElemKind::U8, 1);
                for w in 1..mp.size() {
                    mp.send(stop, w, TAG_STOP).unwrap();
                }
                // Verify: task k computes sum(samples^exponent).
                for (k, v) in done.iter().enumerate() {
                    let expect = expected(k);
                    assert!((v - expect).abs() < 1e-9, "task {k}: {v} != {expect}");
                }
                println!("[master] all {TASKS} tasks verified");
            } else {
                // ---- worker ----
                loop {
                    // Poll for either a task object or the stop signal.
                    let st = mp.probe(0, ANY_TAG).unwrap();
                    if st.tag == TAG_STOP {
                        let sink = t.alloc_prim_array(ElemKind::U8, 1);
                        mp.recv(sink, 0, TAG_STOP).unwrap();
                        break;
                    }
                    let (task, _) = oomp.orecv(0, TAG_TASK).unwrap();
                    let id = t.get_prim::<i32>(task, f_id);
                    let exp = t.get_prim::<i32>(task, f_exp);
                    let samples = t.get_ref(task, f_samples);
                    let mut data = vec![0f64; t.array_len(samples)];
                    t.prim_read(samples, 0, &mut data);
                    let value: f64 = data.iter().map(|x| x.powi(exp)).sum();
                    // Ship a result object back.
                    let res = t.alloc_instance(result_cls);
                    t.set_prim::<i32>(res, r_id, id);
                    t.set_prim::<f64>(res, r_value, value);
                    oomp.osend(res, 0, TAG_RESULT).unwrap();
                    t.release(res);
                    t.release(task);
                    t.release(samples);
                }
            }
        },
    )
    .expect("cluster run");
    assert!(
        metrics.anomalies.is_empty(),
        "doctor diagnosed anomalies: {:?}",
        metrics.anomalies
    );
    println!("task_farm complete (doctor: no anomalies)");
}

/// Master-side task construction and OSend.
fn send_task(
    proc: &MotorProc,
    task_cls: ClassId,
    fields: (usize, usize, usize),
    k: usize,
    worker: usize,
) {
    let t = proc.thread();
    let (f_id, f_exp, f_samples) = fields;
    let task = t.alloc_instance(task_cls);
    t.set_prim::<i32>(task, f_id, k as i32);
    t.set_prim::<i32>(task, f_exp, (k % 3 + 1) as i32);
    let samples = t.alloc_prim_array(ElemKind::F64, 8);
    let data: Vec<f64> = (0..8).map(|i| (k + i) as f64 * 0.5).collect();
    t.prim_write(samples, 0, &data);
    t.set_ref(task, f_samples, samples);
    proc.oomp().osend(task, worker, TAG_TASK).unwrap();
    t.release(task);
    t.release(samples);
}

/// Reference result for task `k`.
fn expected(k: usize) -> f64 {
    let exp = (k % 3 + 1) as i32;
    (0..8).map(|i| ((k + i) as f64 * 0.5).powi(exp)).sum()
}
