//! Task farm: master/worker scheduling with object transport.
//!
//! The master sends *task objects* (a struct with parameters and a
//! transportable data array) to whichever worker is idle, receives result
//! objects back with `Source::Any`, and shuts workers down with a poison
//! tag — the kind of irregular, structured-data communication the
//! extended object-oriented operations exist for (paper §4.2.2).  Tasks
//! and results are plain Rust structs: `#[derive(Transportable)]`
//! generates their wire form, and `send_obj`/`recv_obj` move them.
//!
//! Run with: `cargo run --example task_farm`
//!
//! Runs under the `motor-doctor` watchdog: irregular master/worker
//! traffic is exactly where a lost poison message or a worker stuck in
//! a receive turns into a silent hang, so the doctor's in-flight table
//! and stall diagnosis stay on. Tune it (or dump a flight record)
//! through `MOTOR_DOCTOR`, e.g. `MOTOR_DOCTOR=deadline_ms=500,record=farm.json`.

use motor::prelude::*;

const RANKS: usize = 4; // 1 master + 3 workers
const TASKS: usize = 12;
const TAG_TASK: i32 = 1;
const TAG_RESULT: i32 = 2;
const TAG_STOP: i32 = 3;

#[derive(Transportable, Debug, Default)]
struct Task {
    id: i32,
    exponent: i32,
    #[transportable]
    samples: Vec<f64>,
}

#[derive(Transportable, Debug, Default)]
struct TaskResult {
    id: i32,
    value: f64,
}

fn main() {
    let metrics = run_cluster(
        ClusterConfig::builder()
            .ranks(RANKS)
            .doctor(DoctorConfig::from_env().unwrap_or_default())
            .build(),
        |_reg| {},
        |proc| {
            let comm = Communicator::bind(proc.mp());

            if comm.rank() == 0 {
                // ---- master ----
                let mut next_task = 0usize;
                let mut done = [f64::NAN; TASKS];
                let mut outstanding = 0usize;
                // Prime every worker with one task.
                for w in 1..comm.size() {
                    if next_task < TASKS {
                        comm.send_obj(&make_task(next_task), w, TAG_TASK).unwrap();
                        next_task += 1;
                        outstanding += 1;
                    }
                }
                // Farm: collect a result, hand out the next task.
                while outstanding > 0 {
                    let (res, st) = comm
                        .recv_obj::<TaskResult>(Source::Any, TAG_RESULT)
                        .unwrap();
                    outstanding -= 1;
                    done[res.id as usize] = res.value;
                    println!(
                        "[master] task {} done by worker {} -> {:.4}",
                        res.id, st.source, res.value
                    );
                    if next_task < TASKS {
                        comm.send_obj(&make_task(next_task), st.source as usize, TAG_TASK)
                            .unwrap();
                        next_task += 1;
                        outstanding += 1;
                    }
                }
                // Poison every worker.
                for w in 1..comm.size() {
                    comm.send_slice(&[0u8], w, TAG_STOP).unwrap();
                }
                // Verify: task k computes sum(samples^exponent).
                for (k, v) in done.iter().enumerate() {
                    let expect = expected(k);
                    assert!((v - expect).abs() < 1e-9, "task {k}: {v} != {expect}");
                }
                println!("[master] all {TASKS} tasks verified");
            } else {
                // ---- worker ----
                loop {
                    // Poll for either a task object or the stop signal.
                    let st = comm.probe(0, Tag::ANY).unwrap();
                    if st.tag == TAG_STOP {
                        let mut sink = [0u8; 1];
                        comm.recv_into(&mut sink, 0, TAG_STOP).unwrap();
                        break;
                    }
                    let (task, _) = comm.recv_obj::<Task>(0, TAG_TASK).unwrap();
                    let value: f64 = task.samples.iter().map(|x| x.powi(task.exponent)).sum();
                    // Ship a result object back.
                    comm.send_obj(&TaskResult { id: task.id, value }, 0, TAG_RESULT)
                        .unwrap();
                }
            }
        },
    )
    .expect("cluster run");
    assert!(
        metrics.anomalies.is_empty(),
        "doctor diagnosed anomalies: {:?}",
        metrics.anomalies
    );
    println!("task_farm complete (doctor: no anomalies)");
}

/// Task `k`: raise 8 samples to the k-dependent exponent and sum.
fn make_task(k: usize) -> Task {
    Task {
        id: k as i32,
        exponent: (k % 3 + 1) as i32,
        samples: (0..8).map(|i| (k + i) as f64 * 0.5).collect(),
    }
}

/// Reference result for task `k`.
fn expected(k: usize) -> f64 {
    let exp = (k % 3 + 1) as i32;
    (0..8).map(|i| ((k + i) as f64 * 0.5).powi(exp)).sum()
}
