#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), and the full test
# suite. Runs fully offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "OK"
