#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), and the full test
# suite. Runs fully offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy: SAFETY comments on unsafe blocks (runtime + pal)"
# The two crates holding the raw-pointer object model and the SPSC byte
# rings must justify every unsafe block.
cargo clippy -p motor-runtime -p motor-pal --all-targets -- \
  -D warnings -D clippy::undocumented-unsafe-blocks

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> trace export smoke test (4 ranks)"
# Record a 4-rank cluster trace, then verify the exported Chrome-trace
# JSON parses and contains at least one matched message edge by feeding
# it back through `motor-trace summary`.
trace_out="$(mktemp -t motor-trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
cargo run -q -p motor-bench --bin motor-trace -- record "$trace_out" --ranks 4
summary="$(cargo run -q -p motor-bench --bin motor-trace -- summary "$trace_out")"
echo "$summary" | head -n 1
edges="$(echo "$summary" | sed -n 's/.* \([0-9][0-9]*\) message edges.*/\1/p')"
if [ -z "$edges" ] || [ "$edges" -lt 1 ]; then
  echo "trace smoke test: expected >= 1 message edge, got '${edges:-parse failure}'" >&2
  exit 1
fi

echo "OK"
