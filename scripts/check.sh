#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), and the full test
# suite. Runs fully offline (see README "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy: SAFETY comments on unsafe blocks (runtime + pal)"
# The two crates holding the raw-pointer object model and the SPSC byte
# rings must justify every unsafe block.
cargo clippy -p motor-runtime -p motor-pal --all-targets -- \
  -D warnings -D clippy::undocumented-unsafe-blocks

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> interpreter builds with profiling compiled out"
# The bench crate turns the interpreter's `profile` feature on for the
# whole workspace (cargo feature unification); checking the crate alone
# proves the hook-free default configuration still builds — that is the
# configuration the zero-cost claim is about.
cargo check -q -p motor-interp

echo "==> whole-program IL lint gate (motor-analyze lint)"
# motor-lint over the in-tree IL corpus: every module must come back
# with zero definite diagnostics (cross-rank match checking, request
# linearity, escape proofs), and the demo must still diagnose its
# seeded deadlock — exit 1 on either regression.
cargo run -q -p motor-bench --bin motor-analyze -- lint
cargo run -q -p motor-bench --bin motor-analyze -- demo > /dev/null

echo "==> sim conformance suite (fixed seed matrix)"
# Deterministic-simulation gate: the MPI-semantics conformance suite over
# fault-injecting links, pinned to the frozen seed matrix so a mutation
# caught once stays caught on every run. A failure prints its seed and
# the one-line repro command (MOTOR_SIM_SEEDS=<seed> cargo test ...).
MOTOR_SIM_SEEDS="1,7,42,1234,0xdeadbeef,0x5eed5eed" \
  cargo test -q -p motor-sim
MOTOR_SIM_SEEDS="1,7,42,1234,0xdeadbeef,0x5eed5eed" \
  cargo test -q --test sim_conformance

echo "==> trace export smoke test (4 ranks)"
# Record a 4-rank cluster trace, then verify the exported Chrome-trace
# JSON parses and contains at least one matched message edge by feeding
# it back through `motor-trace summary`.
trace_out="$(mktemp -t motor-trace.XXXXXX.json)"
flight_out="$(mktemp -t motor-flight.XXXXXX.json)"
bench_out="$(mktemp -d -t motor-bench.XXXXXX)"
trap 'rm -rf "$trace_out" "$flight_out" "$bench_out"' EXIT
cargo run -q -p motor-bench --bin motor-trace -- record "$trace_out" --ranks 4
summary="$(cargo run -q -p motor-bench --bin motor-trace -- summary "$trace_out")"
echo "$summary" | head -n 1
edges="$(echo "$summary" | sed -n 's/.* \([0-9][0-9]*\) message edges.*/\1/p')"
if [ -z "$edges" ] || [ "$edges" -lt 1 ]; then
  echo "trace smoke test: expected >= 1 message edge, got '${edges:-parse failure}'" >&2
  exit 1
fi

echo "==> progress engine smoke test (MOTOR_PROGRESS env plumbing)"
# The same 4-rank trace workload with the asynchronous progress engine
# switched on through the environment variable — the no-rebuild path
# deployments use. Both engine modes must complete the run and still
# produce matched message edges; the conformance suite is then narrowed
# to the same mode on two frozen seeds so a failure names the engine
# mode that broke. (The full suites run in both modes as part of
# `cargo test --workspace` above.)
for prog_mode in thread steal; do
  MOTOR_PROGRESS="$prog_mode" \
    cargo run -q -p motor-bench --bin motor-trace -- record "$trace_out" --ranks 4 \
    > /dev/null
  mode_summary="$(cargo run -q -p motor-bench --bin motor-trace -- summary "$trace_out")"
  mode_edges="$(echo "$mode_summary" | sed -n 's/.* \([0-9][0-9]*\) message edges.*/\1/p')"
  if [ -z "$mode_edges" ] || [ "$mode_edges" -lt 1 ]; then
    echo "progress smoke test ($prog_mode): expected >= 1 message edge, got '${mode_edges:-parse failure}'" >&2
    exit 1
  fi
  MOTOR_PROGRESS="$prog_mode" MOTOR_SIM_SEEDS="1,0x5eed5eed" \
    cargo test -q --test progress_conformance > /dev/null
done

echo "==> doctor smoke test (4 ranks, injected deadlock)"
# A 4-rank run where the last rank posts a receive nobody will send to.
# The watchdog must diagnose it, write a flight record and abort with
# exit code 86 well inside the hard timeout (the timeout is the backstop
# against the doctor itself deadlocking).
doctor_bin="target/debug/motor-trace"
cargo build -q -p motor-bench --bin motor-trace
rm -f "$flight_out"
set +e
timeout 60 "$doctor_bin" doctor "$flight_out" --ranks 4 --inject-deadlock
doctor_rc=$?
set -e
if [ "$doctor_rc" -ne 86 ]; then
  echo "doctor smoke test: expected abort code 86, got $doctor_rc" >&2
  exit 1
fi
if ! grep -q '"motor_flight_record":1' "$flight_out"; then
  echo "doctor smoke test: flight record missing or malformed" >&2
  exit 1
fi
if ! grep -q '"deadlock_suspect"' "$flight_out"; then
  echo "doctor smoke test: flight record does not name the deadlock" >&2
  exit 1
fi

echo "==> live telemetry smoke test (4 ranks, scraped mid-run)"
# Hold a 4-rank workload open for a few seconds with the telemetry
# endpoint up, then attach motor-top to it while it runs: `--once` must
# validate /metrics against the exposition format and render every rank;
# `--raw healthz` must report ok. The timeout is the backstop against the
# held workload never finishing.
cargo build -q -p motor-top
top_bin="target/debug/motor-top"
telemetry_addr="127.0.0.1:9613"
MOTOR_TELEMETRY="addr=$telemetry_addr,interval_ms=50" \
  timeout 120 "$doctor_bin" record "$trace_out" --ranks 4 --hold-ms 6000 &
record_pid=$!
top_ok=0
for _ in $(seq 1 40); do
  if screen="$("$top_bin" "$telemetry_addr" --once 2>/dev/null)" \
     && echo "$screen" | grep -q "rank 3"; then
    top_ok=1
    break
  fi
  sleep 0.25
done
if [ "$top_ok" -ne 1 ]; then
  echo "telemetry smoke test: motor-top --once never rendered all 4 ranks" >&2
  kill "$record_pid" 2>/dev/null || true
  exit 1
fi
if ! "$top_bin" "$telemetry_addr" --raw healthz | grep -q '"status":"ok"'; then
  echo "telemetry smoke test: /healthz not ok mid-run" >&2
  kill "$record_pid" 2>/dev/null || true
  exit 1
fi
wait "$record_pid"

echo "==> bench artifact smoke test (apps run --quick + self-gate)"
# The application workloads (CG, BFS, pipeline) plus the typed-API
# ablation must run to completion at quick scale and emit one
# BENCH_<workload>.json each; `apps gate` against itself then proves the
# artifacts parse and the regression gate accepts an identical run.
cargo run -q -p motor-bench --bin apps -- run --quick --out "$bench_out"
for w in cg bfs pipeline ablation_overlap ablation_api ablation_profile ablation_pins; do
  if [ ! -s "$bench_out/BENCH_$w.json" ]; then
    echo "bench smoke test: missing artifact BENCH_$w.json" >&2
    exit 1
  fi
done
cargo run -q -p motor-bench --bin apps -- gate "$bench_out" "$bench_out"

echo "==> profile report smoke test (motor-trace profile)"
# Every app workload artifact carries a profile section; the report must
# render a time-bucket table, an overlap line and the sampled stacks from
# the sibling .folded file (written by `apps run` above).
for w in cg ablation_overlap; do
  if [ ! -s "$bench_out/BENCH_$w.folded" ]; then
    echo "profile smoke test: missing folded stacks BENCH_$w.folded" >&2
    exit 1
  fi
  report="$("$doctor_bin" profile "$bench_out/BENCH_$w.json" --top 5)"
  for needle in "time buckets" "overlap" "sampled stacks"; do
    if ! echo "$report" | grep -q "$needle"; then
      echo "profile smoke test: $w report lacks '$needle'" >&2
      exit 1
    fi
  done
done

echo "OK"
