//! Equivalence across the compared systems: every binding delivers the
//! same bytes, and every serializer round-trips the same structures —
//! the precondition for the benchmark comparisons to mean anything.

use motor::baselines::{CliFormatter, HostProfile, Indiana, JavaSerializer, MpiJava};
use motor::core::cluster::run_cluster_default;
use motor::core::Serializer;
use motor::runtime::{ClassId, ElemKind, Handle, MotorThread};

fn define_linked(reg: &mut motor::runtime::TypeRegistry) {
    let arr = reg.prim_array(ElemKind::I32);
    let next_id = ClassId(reg.len() as u32);
    reg.define_class("LinkedArray")
        .prim("tag", ElemKind::I32)
        .transportable("array", arr)
        .transportable("next", next_id)
        .reference("next2", next_id)
        .build();
}

fn build_list(t: &MotorThread, node: ClassId, n: usize) -> Handle {
    let (ftag, farr, fnext) = (
        t.field_index(node, "tag"),
        t.field_index(node, "array"),
        t.field_index(node, "next"),
    );
    let mut head = t.null_handle();
    for i in (0..n).rev() {
        let h = t.alloc_instance(node);
        t.set_prim::<i32>(h, ftag, i as i32);
        let a = t.alloc_prim_array(ElemKind::I32, 3);
        t.prim_write(a, 0, &[i as i32, i as i32 * 2, i as i32 * 3]);
        t.set_ref(h, farr, a);
        t.set_ref(h, fnext, head);
        t.release(a);
        t.release(head);
        head = h;
    }
    head
}

fn check_list(t: &MotorThread, node: ClassId, head: Handle, n: usize) {
    let (ftag, farr, fnext) = (
        t.field_index(node, "tag"),
        t.field_index(node, "array"),
        t.field_index(node, "next"),
    );
    let mut cur = t.clone_handle(head);
    for i in 0..n as i32 {
        assert!(!t.is_null(cur));
        assert_eq!(t.get_prim::<i32>(cur, ftag), i);
        let a = t.get_ref(cur, farr);
        let mut v = [0i32; 3];
        t.prim_read(a, 0, &mut v);
        assert_eq!(v, [i, i * 2, i * 3]);
        t.release(a);
        let nx = t.get_ref(cur, fnext);
        t.release(cur);
        cur = nx;
    }
    assert!(t.is_null(cur));
    t.release(cur);
}

#[test]
fn all_serializers_roundtrip_the_same_list() {
    run_cluster_default(1, define_linked, |proc| {
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let head = build_list(t, node, 20);

        // Motor custom serializer.
        let ser = Serializer::new(t);
        let (bytes, _) = ser.serialize(head).unwrap();
        let m = ser.deserialize(&bytes).unwrap();
        check_list(t, node, m, 20);
        t.release(m);

        // CLI BinaryFormatter analog, both hosts.
        for host in [HostProfile::Sscli, HostProfile::Net] {
            let f = CliFormatter::new(t, host);
            let blob = f.serialize(head).unwrap();
            let c = f.deserialize(&blob).unwrap();
            check_list(t, node, c, 20);
            t.release(c);
        }

        // Java ObjectOutputStream analog.
        let j = JavaSerializer::new(t);
        let stream = j.serialize(head).unwrap();
        let c = j.deserialize(&stream).unwrap();
        check_list(t, node, c, 20);
        t.release(c);
    })
    .unwrap();
}

#[test]
fn all_bindings_deliver_identical_buffers() {
    run_cluster_default(
        2,
        |_| {},
        |proc| {
            let t = proc.thread();
            let mp = proc.mp();
            let indiana = Indiana::new(t, proc.comm().clone(), HostProfile::Net);
            let java = MpiJava::new(t, proc.comm().clone());
            let buf = t.alloc_prim_array(ElemKind::U8, 777);
            let pattern: Vec<u8> = (0..777).map(|i| (i * 7 % 256) as u8).collect();
            // Same payload through all three binding paths in sequence.
            for round in 0..3 {
                if mp.rank() == 0 {
                    t.prim_write(buf, 0, &pattern);
                    match round {
                        0 => mp.send(buf, 1, round).unwrap(),
                        1 => indiana.send(buf, 1, round).unwrap(),
                        _ => java.send(buf, 1, round).unwrap(),
                    }
                } else {
                    // Clear, then receive through the binding under test.
                    t.prim_write(buf, 0, &vec![0u8; 777]);
                    match round {
                        0 => {
                            mp.recv(buf, 0, round).unwrap();
                        }
                        1 => {
                            indiana.recv(buf, 0, round).unwrap();
                        }
                        _ => {
                            java.recv(buf, 0, round).unwrap();
                        }
                    }
                    let mut got = vec![0u8; 777];
                    t.prim_read(buf, 0, &mut got);
                    assert_eq!(got, pattern, "binding {round} corrupted the payload");
                }
            }
        },
    )
    .unwrap();
}

#[test]
fn object_transport_equivalent_across_wrappers() {
    run_cluster_default(2, define_linked, |proc| {
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let oomp = proc.oomp();
        let indiana = Indiana::new(t, proc.comm().clone(), HostProfile::Sscli);
        let java = MpiJava::new(t, proc.comm().clone());
        if oomp.rank() == 0 {
            let head = build_list(t, node, 10);
            oomp.osend(head, 1, 0).unwrap();
            indiana.send_object(head, 1, 1).unwrap();
            java.send_object(head, 1, 2).unwrap();
        } else {
            let (a, _) = oomp.orecv(0, 0).unwrap();
            check_list(t, node, a, 10);
            let b = indiana.recv_object(0, 1).unwrap();
            check_list(t, node, b, 10);
            let c = java.recv_object(0, 2).unwrap();
            check_list(t, node, c, 10);
        }
    })
    .unwrap();
}

#[test]
fn motor_transportable_semantics_differ_from_serializable() {
    // The one *semantic* difference between Motor and the wrappers'
    // serializers: Motor's opt-in Transportable vs opt-out Serializable
    // (paper §4.2.2). `next2` travels with BinaryFormatter/Java but not
    // with Motor.
    run_cluster_default(1, define_linked, |proc| {
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let (ftag, fnext2) = (t.field_index(node, "tag"), t.field_index(node, "next2"));
        let a = t.alloc_instance(node);
        let b = t.alloc_instance(node);
        t.set_prim::<i32>(b, ftag, 42);
        t.set_ref(a, fnext2, b);

        let ser = Serializer::new(t);
        let (bytes, _) = ser.serialize(a).unwrap();
        let m = ser.deserialize(&bytes).unwrap();
        assert!(
            t.is_null(t.get_ref(m, fnext2)),
            "Motor: opt-in, next2 nulled"
        );

        let f = CliFormatter::new(t, HostProfile::Net);
        let blob = f.serialize(a).unwrap();
        let c = f.deserialize(&blob).unwrap();
        let n2 = t.get_ref(c, fnext2);
        assert!(!t.is_null(n2), "BinaryFormatter: opt-out, next2 travels");
        assert_eq!(t.get_prim::<i32>(n2, ftag), 42);
    })
    .unwrap();
}
