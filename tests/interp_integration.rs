//! Managed code (IL) computing on data that moves between VMs: the
//! interpreter and the message passing stack working together, with the
//! interpreter's safepoint polls keeping the collector live.

use motor::core::cluster::run_cluster_default;
use motor::interp::{FnBuilder, Interp, Module, Op, TyDesc, Value};
use motor::runtime::ElemKind;

/// Build `sum_sq(arr) -> i64`: managed loop over a managed array.
fn sum_sq_module() -> Module {
    let mut f = FnBuilder::new("sum_sq", 1, 3, true);
    f.params(&[TyDesc::Arr(ElemKind::I64)]);
    let top = f.label();
    let done = f.label();
    // local1 = acc, local2 = i
    f.op(Op::PushI(0)).op(Op::Store(1));
    f.op(Op::PushI(0)).op(Op::Store(2));
    f.bind(top);
    f.op(Op::Load(2))
        .op(Op::Load(0))
        .op(Op::ArrLen)
        .op(Op::CmpLt)
        .br_false(done);
    f.op(Op::Load(0))
        .op(Op::Load(2))
        .op(Op::LdElemI)
        .op(Op::Dup)
        .op(Op::Mul);
    f.op(Op::Load(1)).op(Op::Add).op(Op::Store(1));
    f.op(Op::Load(2))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Store(2));
    f.br(top);
    f.bind(done);
    f.op(Op::Load(1)).op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    m
}

#[test]
fn il_computes_on_received_buffers() {
    run_cluster_default(
        2,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::I64, 64);
            if mp.rank() == 0 {
                let data: Vec<i64> = (1..=64).collect();
                t.prim_write(buf, 0, &data);
                mp.send(buf, 1, 0).unwrap();
                // Receive the managed-code result.
                let res = t.alloc_prim_array(ElemKind::I64, 1);
                mp.recv(res, 1, 1).unwrap();
                let mut out = [0i64];
                t.prim_read(res, 0, &mut out);
                // sum of squares 1..=64
                let expect: i64 = (1..=64).map(|i: i64| i * i).sum();
                assert_eq!(out[0], expect);
            } else {
                mp.recv(buf, 0, 0).unwrap();
                // Run managed code over the received managed array;
                // the module goes through load-time analysis first.
                let module = motor::analyze::load(sum_sq_module(), &proc.vm().registry())
                    .expect("verifiable IL");
                let interp = Interp::new(t, &module);
                let r = interp.call(0, &[Value::R(buf)]).unwrap();
                let Some(Value::I(sum)) = r else {
                    panic!("expected int result")
                };
                let res = t.alloc_prim_array(ElemKind::I64, 1);
                t.prim_write(res, 0, &[sum]);
                mp.send(res, 0, 1).unwrap();
            }
        },
    )
    .unwrap();
}

#[test]
fn il_allocation_churn_with_concurrent_messaging() {
    // The interpreter allocates heavily (forcing collections through its
    // loop polls) while the same rank keeps exchanging messages whose
    // buffers the pinning policy must protect.
    run_cluster_default(
        2,
        |reg| {
            reg.define_class("Acc").prim("v", ElemKind::I64).build();
        },
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let cls = proc.vm().registry().by_name("Acc").unwrap();
            // alloc_churn(n): for i in 0..n { a = new Acc; a.v = i } ret n
            let mut f = FnBuilder::new("churn", 1, 3, true);
            let top = f.label();
            let done = f.label();
            f.op(Op::PushI(0)).op(Op::Store(1));
            f.bind(top);
            f.op(Op::Load(1))
                .op(Op::Load(0))
                .op(Op::CmpLt)
                .br_false(done);
            f.op(Op::New(cls)).op(Op::Store(2));
            f.op(Op::Load(2)).op(Op::Load(1)).op(Op::StFldI(0));
            f.op(Op::Load(1))
                .op(Op::PushI(1))
                .op(Op::Add)
                .op(Op::Store(1));
            f.br(top);
            f.bind(done);
            f.op(Op::Load(1)).op(Op::Ret);
            let mut m = Module::new();
            let idx = m.add(f.build());
            let m = motor::analyze::load(m, &proc.vm().registry()).expect("verifiable IL");
            let interp = Interp::new(t, &m);

            let buf = t.alloc_prim_array(ElemKind::I32, 16);
            for round in 0..5i32 {
                // Allocate enough to force several minor collections.
                let r = interp.call(idx, &[Value::I(20_000)]).unwrap();
                assert_eq!(r, Some(Value::I(20_000)));
                if mp.rank() == 0 {
                    t.prim_write(buf, 0, &[round; 16]);
                    mp.send(buf, 1, round).unwrap();
                    mp.recv(buf, 1, round).unwrap();
                    let mut got = [0i32; 16];
                    t.prim_read(buf, 0, &mut got);
                    assert_eq!(got, [round + 1; 16]);
                } else {
                    mp.recv(buf, 0, round).unwrap();
                    let mut got = [0i32; 16];
                    t.prim_read(buf, 0, &mut got);
                    for v in got.iter_mut() {
                        *v += 1;
                    }
                    t.prim_write(buf, 0, &got);
                    mp.send(buf, 0, round).unwrap();
                }
            }
            assert!(
                proc.vm().stats_snapshot().minor_collections >= 1,
                "the churn loop must have forced collections"
            );
        },
    )
    .unwrap();
}
