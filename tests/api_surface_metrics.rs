//! The whole public `System.MP` surface, driven through the prelude on a
//! four-rank cluster, with the `motor-obs` metrics asserted consistent at
//! the end: eager and rendezvous sends both observed, the GC bridge in
//! the merged snapshot equal to the VM's own `GcStats`, and the
//! serializer/buffer-pool counters accounting for every object shipped.

use motor::prelude::*;

const RANKS: usize = 4;
/// Small enough that the 8 KiB transfers below take the rendezvous path
/// while the 256-byte ring stays eager.
const EAGER_THRESHOLD: usize = 1024;

#[test]
fn api_surface_metrics_consistency() {
    let config = ClusterConfig::builder()
        .ranks(RANKS)
        .transport(ChannelKind::Shm)
        .eager_threshold(EAGER_THRESHOLD)
        .build();
    let metrics = run_cluster(
        config,
        |reg| {
            let arr = reg.prim_array(ElemKind::I32);
            reg.define_class("Packet")
                .prim("id", ElemKind::I32)
                .transportable("data", arr)
                .build();
        },
        |proc| {
            let mp = proc.mp();
            let oomp = proc.oomp();
            let t = proc.thread();
            let rank = mp.rank();
            let n = mp.size();
            assert_eq!(n, RANKS);
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;

            // --- non-blocking ring: isend / irecv / test / wait ---
            let tx = t.alloc_prim_array(ElemKind::U8, 256);
            let rx = t.alloc_prim_array(ElemKind::U8, 256);
            let mut rreq = mp.irecv(rx, Source::Rank(left), 1).unwrap();
            let mut sreq = mp.isend(tx, right, 1).unwrap();
            let mut st = None;
            while st.is_none() {
                st = mp.test(&mut rreq).unwrap();
            }
            assert_eq!(st.unwrap().source, left);
            mp.wait(&mut sreq).unwrap();

            // --- blocking eager send / ssend / recv (concrete and Any) ---
            if rank == 0 {
                mp.send(tx, 1, 2).unwrap();
                mp.ssend(tx, 1, 3).unwrap();
            } else if rank == 1 {
                let st = mp.recv(rx, Source::Rank(0), 2).unwrap();
                assert_eq!((st.source, st.bytes), (0, 256));
                mp.recv(rx, Source::Any, 3).unwrap();
            }

            // --- sub-range transfers (Range form + deprecated offset/count) ---
            if rank == 2 {
                let big = t.alloc_prim_array(ElemKind::U8, 512);
                mp.send_sub(big, 128..384, 3, 4).unwrap();
                #[allow(deprecated)]
                mp.send_range(big, 128, 256, 3, 4).unwrap();
            } else if rank == 3 {
                let big = t.alloc_prim_array(ElemKind::U8, 512);
                let st = mp.recv_sub(big, ..256, Source::Rank(2), 4).unwrap();
                assert_eq!(st.bytes, 256);
                #[allow(deprecated)]
                let st = mp.recv_range(big, 0, 256, Source::Rank(2), 4).unwrap();
                assert_eq!(st.bytes, 256);
            }

            // --- rendezvous path with probe / iprobe first ---
            if rank == 0 {
                let big = t.alloc_prim_array(ElemKind::U8, 8 * EAGER_THRESHOLD);
                mp.send(big, 1, 5).unwrap();
            } else if rank == 1 {
                let big = t.alloc_prim_array(ElemKind::U8, 8 * EAGER_THRESHOLD);
                loop {
                    if let Some(st) = mp.iprobe(Source::Any, 5).unwrap() {
                        assert_eq!(st.source, 0);
                        break;
                    }
                }
                let st = mp.probe(Source::Rank(0), 5).unwrap();
                assert_eq!(st.bytes, 8 * EAGER_THRESHOLD);
                mp.recv(big, st.source, 5).unwrap();
            }
            mp.barrier().unwrap();

            // --- collectives ---
            let b = t.alloc_prim_array(ElemKind::I32, 4);
            if rank == 0 {
                t.prim_write(b, 0, &[9i32, 8, 7, 6]);
            }
            mp.bcast(b, 0).unwrap();
            let mut got = [0i32; 4];
            t.prim_read(b, 0, &mut got);
            assert_eq!(got, [9, 8, 7, 6]);

            let recv1 = t.alloc_prim_array(ElemKind::I32, 1);
            let send_all = if rank == 0 {
                let s = t.alloc_prim_array(ElemKind::I32, n);
                t.prim_write(s, 0, &[10i32, 11, 12, 13]);
                Some(s)
            } else {
                None
            };
            mp.scatter(send_all, recv1, 0).unwrap();
            let mut mine = [0i32];
            t.prim_read(recv1, 0, &mut mine);
            assert_eq!(mine[0], 10 + rank as i32);

            let gat = if rank == 0 {
                Some(t.alloc_prim_array(ElemKind::I32, n))
            } else {
                None
            };
            mp.gather(recv1, gat, 0).unwrap();
            if rank == 0 {
                let mut all = [0i32; RANKS];
                t.prim_read(gat.unwrap(), 0, &mut all);
                assert_eq!(all, [10, 11, 12, 13]);
            }

            let rin = t.alloc_prim_array(ElemKind::I64, 1);
            let rout = t.alloc_prim_array(ElemKind::I64, 1);
            t.prim_write(rin, 0, &[1i64 << rank]);
            mp.allreduce(rin, rout, ReduceOp::Sum).unwrap();
            let mut mask = [0i64];
            t.prim_read(rout, 0, &mut mask);
            assert_eq!(mask[0], 0b1111);

            // --- object operations ---
            let cls = proc.vm().registry().by_name("Packet").unwrap();
            let (fid, fdata) = (t.field_index(cls, "id"), t.field_index(cls, "data"));
            let mk = |id: i32, len: usize| {
                let o = t.alloc_instance(cls);
                t.set_prim::<i32>(o, fid, id);
                let d = t.alloc_prim_array(ElemKind::I32, len);
                t.set_ref(o, fdata, d);
                t.release(d);
                o
            };

            // osend / orecv around the ring, wildcard receive.
            let out = mk(rank as i32, 8);
            oomp.osend(out, right, 6).unwrap();
            let (got_o, st) = oomp.orecv(Source::Any, 6).unwrap();
            assert_eq!(st.source, left);
            assert_eq!(t.get_prim::<i32>(got_o, fid), left as i32);

            // osend_sub: ship the middle two of a four-element array
            // (plus the deprecated offset/count spelling).
            if rank == 1 {
                let arr = t.alloc_obj_array(cls, 4);
                for i in 0..4 {
                    let e = mk(100 + i as i32, 2);
                    t.obj_array_set(arr, i, e);
                    t.release(e);
                }
                oomp.osend_sub(arr, 1..3, 2, 7).unwrap();
                #[allow(deprecated)]
                oomp.osend_range(arr, 1, 2, 2, 7).unwrap();
            } else if rank == 2 {
                for _ in 0..2 {
                    let (sub, _) = oomp.orecv(Source::Rank(1), 7).unwrap();
                    assert_eq!(t.array_len(sub), 2);
                    let e = t.obj_array_get(sub, 0);
                    assert_eq!(t.get_prim::<i32>(e, fid), 101);
                    t.release(e);
                }
            }

            // obcast / oscatter / ogather.
            let root_obj = if rank == 0 { Some(mk(42, 4)) } else { None };
            let copy = oomp.obcast(root_obj, 0).unwrap();
            assert_eq!(t.get_prim::<i32>(copy, fid), 42);

            let input = if rank == 0 {
                let arr = t.alloc_obj_array(cls, n);
                for i in 0..n {
                    let e = mk(i as i32, 2);
                    t.obj_array_set(arr, i, e);
                    t.release(e);
                }
                Some(arr)
            } else {
                None
            };
            let chunk = oomp.oscatter(input, 0).unwrap();
            assert_eq!(t.array_len(chunk), 1);
            let e = t.obj_array_get(chunk, 0);
            assert_eq!(t.get_prim::<i32>(e, fid), rank as i32);
            t.release(e);
            let full = oomp.ogather(chunk, 0).unwrap();
            if rank == 0 {
                assert_eq!(t.array_len(full.unwrap()), n);
            }
            mp.barrier().unwrap();

            // --- per-rank: the merged snapshot's GC bridge must agree
            // with the VM's own statistics, counter for counter. ---
            let m = proc.metrics();
            let gc = proc.vm().stats_snapshot();
            assert_eq!(m.get(Metric::GcPins), gc.pins);
            assert_eq!(m.get(Metric::GcUnpins), gc.unpins);
            assert_eq!(m.get(Metric::GcPinsAvoidedElder), gc.pins_avoided_elder);
            assert_eq!(
                m.get(Metric::GcPinsAvoidedFastBlocking),
                gc.pins_avoided_fast_blocking
            );
            assert_eq!(
                m.get(Metric::GcCondPinsRegistered),
                gc.conditional_pins_registered
            );
            assert_eq!(m.get(Metric::GcMinorCollections), gc.minor_collections);
            // The non-blocking ring ops above protect their buffers with
            // conditional pins; the pinning policy must have engaged.
            assert!(m.get(Metric::GcCondPinsRegistered) >= 2);
            assert!(
                gc.pins
                    + gc.conditional_pins_registered
                    + gc.pins_avoided_elder
                    + gc.pins_avoided_fast_blocking
                    > 0
            );
        },
    )
    .unwrap();

    assert_eq!(metrics.per_rank.len(), RANKS);
    let agg = metrics.aggregate();
    let r = RANKS as u64;

    // Both protocol paths taken, with matching histogram populations.
    assert!(agg.get(Metric::SendsEager) > 0, "eager sends observed");
    assert!(agg.get(Metric::SendsRndv) > 0, "rendezvous sends observed");
    assert!(agg.get(Metric::SendsSync) > 0, "ssend observed");
    assert!(agg.hist(Hist::EagerSendBytes).count() > 0);
    assert!(agg.hist(Hist::RndvSendBytes).count() > 0);
    assert!(agg.get(Metric::RndvDone) > 0);

    // Traffic flowed through the channel layer in both directions.
    assert!(agg.get(Metric::ChanFramesOut) > 0);
    assert!(agg.get(Metric::ChanFramesIn) > 0);
    assert!(agg.get(Metric::ChanBytesOut) > 0);
    assert!(agg.get(Metric::ChanBytesIn) > 0);
    assert!(agg.get(Metric::MatchAttempts) > 0);

    // Every collective was counted on every rank.
    assert!(agg.get(Metric::CollBarrier) >= 2 * r);
    assert!(agg.get(Metric::CollBcast) >= r);
    assert!(agg.get(Metric::CollScatter) >= r);
    assert!(agg.get(Metric::CollGather) >= r);
    assert!(agg.get(Metric::CollAllreduce) >= r);

    // Object transport: 4 ring osends + the range send; orecv likewise;
    // obcast + oscatter + ogather on every rank.
    assert!(agg.get(Metric::OompOsends) > r);
    assert!(agg.get(Metric::OompOrecvs) > r);
    assert!(agg.get(Metric::OompCollectives) >= 3 * r);

    // Serializer accounting: every osend serialized a graph, every graph
    // at least a Packet and its data array; every wire byte produced was
    // consumed by a deserializer somewhere.
    assert!(agg.get(Metric::SerOps) >= agg.get(Metric::OompOsends));
    assert!(agg.get(Metric::SerObjects) >= 2 * agg.get(Metric::OompOsends));
    assert!(agg.get(Metric::SerBytes) > 0);
    assert!(agg.get(Metric::DeserOps) > 0);
    assert!(agg.get(Metric::DeserBytes) > 0);
    assert!(agg.hist(Hist::SerializedGraphBytes).count() >= agg.get(Metric::OompOsends));

    // Buffer pool books balance.
    assert!(agg.get(Metric::PoolGets) > 0);
    assert_eq!(
        agg.get(Metric::PoolGets),
        agg.get(Metric::PoolHits) + agg.get(Metric::PoolPartialHits) + agg.get(Metric::PoolMisses)
    );

    // Queue peaks are maxima, not sums: bounded by what one rank can see.
    assert!(agg.get(Metric::PostedQueuePeak) >= 1);
}

#[test]
fn metrics_snapshot_diff_and_export_through_prelude() {
    let metrics = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let before = proc.metrics();
            let buf = t.alloc_prim_array(ElemKind::U8, 128);
            for _ in 0..4 {
                if mp.rank() == 0 {
                    mp.send(buf, 1, 0).unwrap();
                    mp.recv(buf, 1, 0).unwrap();
                } else {
                    mp.recv(buf, 0, 0).unwrap();
                    mp.send(buf, 0, 0).unwrap();
                }
            }
            let after = proc.metrics();
            let delta = after.diff(&before);
            assert_eq!(delta.get(Metric::SendsEager), 4);
            assert!(delta.get(Metric::ChanBytesOut) >= 4 * 128);
        },
    )
    .unwrap();

    let agg = metrics.aggregate();
    // CSV row and JSON export round out the surface.
    let header = MetricsSnapshot::csv_header();
    let row = agg.csv_row("smoke");
    assert_eq!(header.split(',').count(), row.split(',').count());
    assert!(row.starts_with("smoke,"));
    let json = agg.to_json();
    assert!(json.contains("\"sends_eager\""));
}
