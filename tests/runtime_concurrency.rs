//! Multi-mutator stress on one VM: several attached threads allocating and
//! mutating concurrently while collections stop the world — the safepoint
//! protocol of paper §5.2 ("all threads must be frozen in a safe point")
//! under real contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use motor::runtime::heap::HeapConfig;
use motor::runtime::{verify_heap, ElemKind, MotorThread, Vm, VmConfig};

#[test]
fn concurrent_mutators_with_stop_the_world_collections() {
    let vm = Vm::new(VmConfig {
        heap: HeapConfig {
            young_bytes: 32 * 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    const THREADS: usize = 4;
    const PER_THREAD: usize = 400;
    let checksum = Arc::new(AtomicU64::new(0));

    crossbeam::thread::scope(|s| {
        for tid in 0..THREADS {
            let vm = Arc::clone(&vm);
            let checksum = Arc::clone(&checksum);
            s.spawn(move |_| {
                let t = MotorThread::attach(vm);
                // Each thread keeps a live window of arrays while churning
                // garbage, forcing frequent minor collections that must
                // freeze the other mutators.
                let mut window = Vec::new();
                for i in 0..PER_THREAD {
                    let h = t.alloc_prim_array(ElemKind::I64, 16);
                    let v = (tid * 1_000_000 + i) as i64;
                    t.prim_write(h, 0, &[v; 16]);
                    window.push((h, v));
                    if window.len() > 8 {
                        let (old, expect) = window.remove(0);
                        let mut got = [0i64; 16];
                        t.prim_read(old, 0, &mut got);
                        assert_eq!(got, [expect; 16], "thread {tid} iteration {i}");
                        checksum.fetch_add(expect as u64, Ordering::Relaxed);
                        t.release(old);
                    }
                    // Garbage churn between live allocations.
                    let g = t.alloc_prim_array(ElemKind::U8, 64);
                    t.release(g);
                }
                for (h, expect) in window {
                    let mut got = [0i64; 16];
                    t.prim_read(h, 0, &mut got);
                    assert_eq!(got, [expect; 16]);
                    checksum.fetch_add(expect as u64, Ordering::Relaxed);
                    t.release(h);
                }
            });
        }
    })
    .unwrap();

    // Every array was read back exactly once.
    let expect: u64 = (0..THREADS as u64)
        .map(|t| {
            (0..PER_THREAD as u64)
                .map(|i| t * 1_000_000 + i)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(checksum.load(Ordering::Relaxed), expect);
    let snap = vm.stats_snapshot();
    assert!(snap.minor_collections > 0, "churn must have collected");
    verify_heap(&vm).unwrap();
}

#[test]
fn native_regions_overlap_with_collections() {
    // One thread sits in long native regions (as Motor's polling-wait
    // does); another churns allocations. Collections must proceed without
    // waiting for the native-mode thread, and its handles must still be
    // valid (and retargeted) when it returns.
    let vm = Vm::new(VmConfig {
        heap: HeapConfig {
            young_bytes: 16 * 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    crossbeam::thread::scope(|s| {
        let vm1 = Arc::clone(&vm);
        s.spawn(move |_| {
            let t = MotorThread::attach(vm1);
            let keep = t.alloc_prim_array(ElemKind::I32, 8);
            t.prim_write(keep, 0, &[7i32; 8]);
            for _ in 0..50 {
                t.native(|| {
                    // Heap untouched inside; peers may collect freely.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                });
                let mut got = [0i32; 8];
                t.prim_read(keep, 0, &mut got);
                assert_eq!(got, [7i32; 8], "handle retargeted across peer GCs");
            }
        });
        let vm2 = Arc::clone(&vm);
        s.spawn(move |_| {
            let t = MotorThread::attach(vm2);
            for _ in 0..3_000 {
                let h = t.alloc_prim_array(ElemKind::U8, 128);
                t.release(h);
            }
        });
    })
    .unwrap();
    assert!(vm.stats_snapshot().minor_collections > 0);
    verify_heap(&vm).unwrap();
}
