//! Acceptance test for the cluster trace timeline: a 4-rank run whose
//! merged trace matches every completed point-to-point operation into a
//! send→recv edge with non-negative calibrated latency, round-trips
//! through the Chrome-trace-event export, and yields a critical path made
//! only of spans that exist in the trace.

use motor::core::cluster::{run_cluster, ClusterConfig};
use motor::obs::{from_chrome_json, to_chrome_json, EdgeKind, EventKind, SpanKind};
use motor::runtime::ElemKind;

const RANKS: usize = 4;

/// Eager ring + rendezvous pair + barrier: a little of every transport
/// path, deterministic message counts.
fn body(proc: &motor::core::MotorProc) {
    let mp = proc.mp();
    let t = proc.thread();
    let (rank, size) = (mp.rank(), mp.size());

    // Each rank sends one small (eager) message to its right neighbour.
    let small = t.alloc_prim_array(ElemKind::I64, 32);
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    if rank % 2 == 0 {
        mp.send(small, right, 3).unwrap();
        mp.recv(small, left, 3).unwrap();
    } else {
        let tmp = t.alloc_prim_array(ElemKind::I64, 32);
        mp.recv(tmp, left, 3).unwrap();
        mp.send(small, right, 3).unwrap();
        t.release(tmp);
    }

    // One rendezvous-sized transfer, rank 0 → rank 1.
    let big_n = 1 << 17;
    if rank == 0 {
        let big = t.alloc_prim_array(ElemKind::U8, big_n);
        mp.send(big, 1, 5).unwrap();
        t.release(big);
    } else if rank == 1 {
        let big = t.alloc_prim_array(ElemKind::U8, big_n);
        let st = mp.recv(big, 0, 5).unwrap();
        assert_eq!(st.bytes, big_n);
        t.release(big);
    }

    mp.barrier().unwrap();
    t.release(small);
}

#[test]
fn four_rank_trace_matches_every_p2p_op() {
    let config = ClusterConfig::builder()
        .ranks(RANKS)
        .event_capacity(1 << 14)
        .build();
    let metrics = run_cluster(config, |_| {}, body).unwrap();

    assert_eq!(metrics.clock_offset_estimates.len(), RANKS);
    assert_eq!(metrics.clock_offset_estimates[0], 0);

    let trace = metrics.trace();
    assert_eq!(trace.ranks, RANKS);

    // Every recorded message-completion event is matched into an edge:
    // the k-th send from (src, dst, tag) pairs with the k-th receive, so
    // with no ring overwrite the edge count equals the send count equals
    // the receive count (this includes the startup clock-sync traffic and
    // any point-to-point legs of the barrier).
    let sends: usize = metrics
        .per_rank
        .iter()
        .map(|s| {
            s.events()
                .iter()
                .filter(|e| e.kind == EventKind::MsgSend)
                .count()
        })
        .sum();
    let recvs: usize = metrics
        .per_rank
        .iter()
        .map(|s| {
            s.events()
                .iter()
                .filter(|e| e.kind == EventKind::MsgRecv)
                .count()
        })
        .sum();
    let payload_edges = trace
        .edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Payload)
        .count();
    assert_eq!(sends, recvs, "every send completed with a matching recv");
    assert_eq!(payload_edges, sends, "every completed p2p op has an edge");
    assert!(payload_edges > RANKS, "ring + rendezvous at minimum");

    // The rendezvous transfer contributes its control edges too.
    for kind in [EdgeKind::Rts, EdgeKind::Cts, EdgeKind::Done] {
        assert!(
            trace.edges.iter().any(|e| e.kind == kind && e.rndv),
            "missing rendezvous control edge {:?}",
            kind
        );
    }

    // Calibrated latencies are non-negative on every edge, and the
    // rendezvous payload edge carries the right byte count.
    for e in &trace.edges {
        assert!(
            e.latency_nanos() >= 0,
            "negative latency on {:?} edge {} -> {}",
            e.kind,
            e.src_rank,
            e.dst_rank
        );
    }
    let rndv = trace
        .edges
        .iter()
        .find(|e| e.kind == EdgeKind::Payload && e.rndv)
        .expect("rendezvous payload edge");
    assert_eq!((rndv.src_rank, rndv.dst_rank), (0, 1));
    assert_eq!(rndv.bytes, 1 << 17);

    // Explicit operation spans made it into the timeline.
    for kind in [SpanKind::MpSend, SpanKind::MpRecv, SpanKind::Barrier] {
        assert!(
            trace.spans.iter().any(|s| s.kind == kind),
            "missing {:?} span",
            kind
        );
    }

    // The critical path references only spans that exist, and does work.
    let ids = trace.span_ids();
    let cp = trace.critical_path();
    assert!(!cp.span_ids.is_empty());
    assert!(cp.total_nanos > 0);
    for id in &cp.span_ids {
        assert!(ids.contains(id), "critical-path span {id} not in trace");
    }

    // Wait accounting covers every rank that waited on the device.
    let wb = trace.wait_breakdown();
    assert_eq!(wb.len(), RANKS);
    assert!(wb.iter().any(|w| w.total_wait_nanos > 0));

    // Perfetto export round-trips losslessly and keeps the edges.
    let json = to_chrome_json(&trace);
    let back = from_chrome_json(&json).unwrap();
    assert_eq!(back, trace);
    assert!(!back.edges.is_empty());
}
