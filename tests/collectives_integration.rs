//! Cross-crate integration: Motor collectives on managed buffers across
//! rank counts, and the OO collectives over the split representation.

use motor::core::cluster::run_cluster_default;
use motor::mpc::ReduceOp;
use motor::runtime::{ClassId, ElemKind};

#[test]
fn managed_bcast_and_allreduce_across_rank_counts() {
    for n in [2usize, 3, 5, 8] {
        run_cluster_default(
            n,
            |_| {},
            move |proc| {
                let mp = proc.mp();
                let t = proc.thread();
                // bcast
                let buf = t.alloc_prim_array(ElemKind::I32, 4);
                if mp.rank() == 2 % n {
                    t.prim_write(buf, 0, &[10i32, 20, 30, 40]);
                }
                mp.bcast(buf, 2 % n).unwrap();
                let mut got = [0i32; 4];
                t.prim_read(buf, 0, &mut got);
                assert_eq!(got, [10, 20, 30, 40]);
                // allreduce (sum of ranks)
                let send = t.alloc_prim_array(ElemKind::I64, 2);
                let recv = t.alloc_prim_array(ElemKind::I64, 2);
                t.prim_write(send, 0, &[mp.rank() as i64, 1i64]);
                mp.allreduce(send, recv, ReduceOp::Sum).unwrap();
                let mut out = [0i64; 2];
                t.prim_read(recv, 0, &mut out);
                let expect: i64 = (0..n as i64).sum();
                assert_eq!(out, [expect, n as i64]);
            },
        )
        .unwrap();
    }
}

#[test]
fn managed_scatter_gather_roundtrip() {
    const N: usize = 4;
    run_cluster_default(
        N,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let part = t.alloc_prim_array(ElemKind::F64, 3);
            let root = 1;
            let send = if mp.rank() == root {
                let s = t.alloc_prim_array(ElemKind::F64, 3 * N);
                let data: Vec<f64> = (0..3 * N).map(|i| i as f64).collect();
                t.prim_write(s, 0, &data);
                Some(s)
            } else {
                None
            };
            mp.scatter(send, part, root).unwrap();
            let mut mine = [0f64; 3];
            t.prim_read(part, 0, &mut mine);
            for (i, v) in mine.iter().enumerate() {
                assert_eq!(*v, (mp.rank() * 3 + i) as f64);
            }
            // Double and gather back.
            let doubled: Vec<f64> = mine.iter().map(|v| v * 2.0).collect();
            t.prim_write(part, 0, &doubled);
            let recv = if mp.rank() == root {
                Some(t.alloc_prim_array(ElemKind::F64, 3 * N))
            } else {
                None
            };
            mp.gather(part, recv, root).unwrap();
            if mp.rank() == root {
                let mut all = vec![0f64; 3 * N];
                t.prim_read(recv.unwrap(), 0, &mut all);
                for (i, v) in all.iter().enumerate() {
                    assert_eq!(*v, 2.0 * i as f64);
                }
            }
        },
    )
    .unwrap();
}

#[test]
fn md_array_transport_preserves_shape_and_content() {
    run_cluster_default(
        2,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            // True multidimensional arrays are first-class transport
            // buffers — the feature the paper cites for preferring the CLI
            // over Java (§3).
            let md = t.alloc_md_array(ElemKind::F64, &[8, 8]);
            if mp.rank() == 0 {
                for i in 0..8u32 {
                    for j in 0..8u32 {
                        t.md_set::<f64>(md, &[i, j], (i * 8 + j) as f64);
                    }
                }
                mp.send(md, 1, 0).unwrap();
            } else {
                mp.recv(md, 0, 0).unwrap();
                assert_eq!(t.md_dims(md), vec![8, 8]);
                for i in 0..8u32 {
                    for j in 0..8u32 {
                        assert_eq!(t.md_get::<f64>(md, &[i, j]), (i * 8 + j) as f64);
                    }
                }
            }
        },
    )
    .unwrap();
}

fn define_linked(reg: &mut motor::runtime::TypeRegistry) {
    let arr = reg.prim_array(ElemKind::I32);
    let next_id = ClassId(reg.len() as u32);
    reg.define_class("LinkedArray")
        .prim("tag", ElemKind::I32)
        .transportable("array", arr)
        .transportable("next", next_id)
        .reference("next2", next_id)
        .build();
}

#[test]
fn obcast_distributes_object_trees() {
    run_cluster_default(3, define_linked, |proc| {
        let oomp = proc.oomp();
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let (ftag, fnext) = (t.field_index(node, "tag"), t.field_index(node, "next"));
        let input = if oomp.rank() == 0 {
            let a = t.alloc_instance(node);
            let b = t.alloc_instance(node);
            t.set_prim::<i32>(a, ftag, 1);
            t.set_prim::<i32>(b, ftag, 2);
            t.set_ref(a, fnext, b);
            Some(a)
        } else {
            None
        };
        let tree = oomp.obcast(input, 0).unwrap();
        assert_eq!(t.get_prim::<i32>(tree, ftag), 1);
        let next = t.get_ref(tree, fnext);
        assert_eq!(t.get_prim::<i32>(next, ftag), 2);
    })
    .unwrap();
}

#[test]
fn oscatter_ogather_roundtrip_across_ranks() {
    const N: usize = 4;
    const TOTAL: usize = 12;
    run_cluster_default(N, define_linked, |proc| {
        let oomp = proc.oomp();
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let ftag = t.field_index(node, "tag");
        let input = if oomp.rank() == 0 {
            let arr = t.alloc_obj_array(node, TOTAL);
            for i in 0..TOTAL {
                let e = t.alloc_instance(node);
                t.set_prim::<i32>(e, ftag, i as i32);
                t.obj_array_set(arr, i, e);
                t.release(e);
            }
            Some(arr)
        } else {
            None
        };
        let mine = oomp.oscatter(input, 0).unwrap();
        assert_eq!(t.array_len(mine), TOTAL / N);
        for i in 0..TOTAL / N {
            let e = t.obj_array_get(mine, i);
            let tag = t.get_prim::<i32>(e, ftag);
            assert_eq!(tag as usize, oomp.rank() * (TOTAL / N) + i);
            t.set_prim::<i32>(e, ftag, tag + 100);
            t.release(e);
        }
        let full = oomp.ogather(mine, 0).unwrap();
        if oomp.rank() == 0 {
            let full = full.unwrap();
            assert_eq!(t.array_len(full), TOTAL);
            for i in 0..TOTAL {
                let e = t.obj_array_get(full, i);
                assert_eq!(t.get_prim::<i32>(e, ftag), i as i32 + 100);
                t.release(e);
            }
        } else {
            assert!(full.is_none());
        }
    })
    .unwrap();
}

#[test]
fn osend_any_source_pairs_size_and_data() {
    // Two senders interleave OSends to one receiver with ANY_SOURCE: the
    // size/data pairing must never mix senders.
    run_cluster_default(3, define_linked, |proc| {
        let oomp = proc.oomp();
        let t = proc.thread();
        let node = proc.vm().registry().by_name("LinkedArray").unwrap();
        let (ftag, farr) = (t.field_index(node, "tag"), t.field_index(node, "array"));
        if oomp.rank() == 0 {
            let mut seen = [0usize; 3];
            for _ in 0..10 {
                let (h, st) = oomp.orecv(motor::core::Source::Any, 5).unwrap();
                let tag = t.get_prim::<i32>(h, ftag) as usize;
                assert_eq!(tag, st.source, "payload identifies its sender");
                // The array length also encodes the sender.
                let arr = t.get_ref(h, farr);
                assert_eq!(t.array_len(arr), st.source * 10);
                seen[st.source] += 1;
                t.release(arr);
                t.release(h);
            }
            assert_eq!(seen, [0, 5, 5]);
        } else {
            for _ in 0..5 {
                let e = t.alloc_instance(node);
                t.set_prim::<i32>(e, ftag, oomp.rank() as i32);
                let a = t.alloc_prim_array(ElemKind::I32, oomp.rank() * 10);
                t.set_ref(e, farr, a);
                oomp.osend(e, 0, 5).unwrap();
                t.release(e);
                t.release(a);
            }
        }
    })
    .unwrap();
}
