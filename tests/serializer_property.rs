//! Property-based tests: the Motor serializer over random object graphs,
//! the split representation, and GC content preservation under random
//! mutation schedules.

use std::sync::Arc;

use motor::core::{Serializer, VisitedStrategy};
use motor::runtime::heap::HeapConfig;
use motor::runtime::{ClassId, ElemKind, Handle, MotorThread, Vm, VmConfig};
use proptest::prelude::*;

/// A random graph over one node class: per node a tag, an optional data
/// array length, and edges (by node index) for the transportable `next`
/// and non-transportable `side` fields. Indices may form sharing and
/// cycles.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<NodeSpec>,
    root: usize,
}

#[derive(Debug, Clone)]
struct NodeSpec {
    tag: i32,
    array_len: Option<usize>,
    next: Option<usize>,
    side: Option<usize>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (1usize..24).prop_flat_map(|n| {
        let node = (
            any::<i32>(),
            proptest::option::of(0usize..16),
            proptest::option::of(0usize..n),
            proptest::option::of(0usize..n),
        )
            .prop_map(|(tag, array_len, next, side)| NodeSpec {
                tag,
                array_len,
                next,
                side,
            });
        (proptest::collection::vec(node, n..=n), 0usize..n)
            .prop_map(|(nodes, root)| GraphSpec { nodes, root })
    })
}

fn fresh_vm() -> (Arc<Vm>, ClassId) {
    let vm = Vm::new(VmConfig {
        heap: HeapConfig {
            young_bytes: 32 * 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    let node = {
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let next_id = ClassId(reg.len() as u32);
        reg.define_class("PNode")
            .prim("tag", ElemKind::I32)
            .transportable("array", arr)
            .transportable("next", next_id)
            .reference("side", next_id)
            .build()
    };
    (vm, node)
}

fn build_graph(t: &MotorThread, node: ClassId, spec: &GraphSpec) -> Handle {
    let (ftag, farr, fnext, fside) = (
        t.field_index(node, "tag"),
        t.field_index(node, "array"),
        t.field_index(node, "next"),
        t.field_index(node, "side"),
    );
    let handles: Vec<Handle> = spec.nodes.iter().map(|_| t.alloc_instance(node)).collect();
    for (i, ns) in spec.nodes.iter().enumerate() {
        t.set_prim::<i32>(handles[i], ftag, ns.tag);
        if let Some(len) = ns.array_len {
            let a = t.alloc_prim_array(ElemKind::I32, len);
            let data: Vec<i32> = (0..len).map(|j| ns.tag.wrapping_add(j as i32)).collect();
            t.prim_write(a, 0, &data);
            t.set_ref(handles[i], farr, a);
            t.release(a);
        }
        if let Some(n) = ns.next {
            t.set_ref(handles[i], fnext, handles[n]);
        }
        if let Some(s) = ns.side {
            t.set_ref(handles[i], fside, handles[s]);
        }
    }
    let root = t.clone_handle(handles[spec.root]);
    for h in handles {
        t.release(h);
    }
    root
}

/// Canonical signature of the *transportable* reachable graph: node tags
/// and array contents in DFS order, with back-references encoded by first
/// visit index (captures sharing and cycles).
fn signature(t: &MotorThread, node: ClassId, root: Handle) -> Vec<i64> {
    let (ftag, farr, fnext) = (
        t.field_index(node, "tag"),
        t.field_index(node, "array"),
        t.field_index(node, "next"),
    );
    let mut sig = Vec::new();
    let mut stack = vec![t.clone_handle(root)];
    let mut visited: Vec<Handle> = Vec::new();
    while let Some(h) = stack.pop() {
        if t.is_null(h) {
            sig.push(-1);
            t.release(h);
            continue;
        }
        if let Some(idx) = visited.iter().position(|&v| t.same_object(v, h)) {
            sig.push(-1000 - idx as i64);
            t.release(h);
            continue;
        }
        sig.push(t.get_prim::<i32>(h, ftag) as i64);
        let arr = t.get_ref(h, farr);
        if t.is_null(arr) {
            sig.push(-2);
        } else {
            let len = t.array_len(arr);
            sig.push(len as i64);
            let mut data = vec![0i32; len];
            t.prim_read(arr, 0, &mut data);
            sig.extend(data.iter().map(|&v| v as i64));
        }
        t.release(arr);
        stack.push(t.get_ref(h, fnext));
        visited.push(h);
    }
    for v in visited {
        t.release(v);
    }
    sig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_transportable_graph(spec in graph_strategy()) {
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(vm);
        let root = build_graph(&t, node, &spec);
        let before = signature(&t, node, root);
        for strategy in [VisitedStrategy::Linear, VisitedStrategy::Hashed] {
            let ser = Serializer::new(&t).with_strategy(strategy);
            let (bytes, _) = ser.serialize(root).unwrap();
            let copy = ser.deserialize(&bytes).unwrap();
            let after = signature(&t, node, copy);
            prop_assert_eq!(&before, &after, "strategy {:?}", strategy);
            // Non-transportable `side` must always arrive null.
            let fside = t.field_index(node, "side");
            let side = t.get_ref(copy, fside);
            prop_assert!(t.is_null(side));
            t.release(side);
            t.release(copy);
        }
    }

    #[test]
    fn strategies_agree_byte_for_byte(spec in graph_strategy()) {
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(vm);
        let root = build_graph(&t, node, &spec);
        let (a, _) = Serializer::new(&t).with_strategy(VisitedStrategy::Linear)
            .serialize(root).unwrap();
        let (b, _) = Serializer::new(&t).with_strategy(VisitedStrategy::Hashed)
            .serialize(root).unwrap();
        prop_assert_eq!(a, b, "visited structure must not affect the wire format");
    }

    #[test]
    fn roundtrip_survives_gc_between_phases(spec in graph_strategy()) {
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let root = build_graph(&t, node, &spec);
        let before = signature(&t, node, root);
        let ser = Serializer::new(&t);
        let (bytes, _) = ser.serialize(root).unwrap();
        // Collections between serialize and deserialize (and during
        // deserialize, via the small young generation) must not corrupt
        // anything.
        t.collect_minor();
        t.collect_full();
        let copy = ser.deserialize(&bytes).unwrap();
        let after = signature(&t, node, copy);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn split_parts_reassemble_to_the_whole(
        lens in proptest::collection::vec(0usize..8, 2..20),
        parts in 1usize..5,
    ) {
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(vm);
        let ftag = t.field_index(node, "tag");
        // An object array of nodes with distinct tags.
        let arr = t.alloc_obj_array(node, lens.len());
        for (i, &_l) in lens.iter().enumerate() {
            let e = t.alloc_instance(node);
            t.set_prim::<i32>(e, ftag, i as i32);
            t.obj_array_set(arr, i, e);
            t.release(e);
        }
        let ser = Serializer::new(&t);
        // Split into `parts` ranges (uneven tail allowed), deserialize each
        // part independently, and check the concatenation.
        let n = lens.len();
        let per = n.div_ceil(parts);
        let mut seen = 0usize;
        let mut off = 0;
        while off < n {
            let count = per.min(n - off);
            let (bytes, _) = ser.serialize_array_range(arr, off, count).unwrap();
            let sub = ser.deserialize(&bytes).unwrap();
            prop_assert_eq!(t.array_len(sub), count);
            for j in 0..count {
                let e = t.obj_array_get(sub, j);
                prop_assert_eq!(t.get_prim::<i32>(e, ftag) as usize, off + j);
                seen += 1;
                t.release(e);
            }
            t.release(sub);
            off += count;
        }
        prop_assert_eq!(seen, n);
    }

    #[test]
    fn gc_preserves_reachable_contents_under_random_schedules(
        ops in proptest::collection::vec((0u8..4, 0usize..8, any::<i32>()), 1..60),
    ) {
        // A model-based GC test: mirror every mutation in a Rust-side
        // model, interleave collections, and compare at the end.
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let ftag = t.field_index(node, "tag");
        let mut live: Vec<(Handle, i32)> = Vec::new();
        for (op, idx, val) in ops {
            match op {
                // Allocate a node.
                0 => {
                    let h = t.alloc_instance(node);
                    t.set_prim::<i32>(h, ftag, val);
                    live.push((h, val));
                }
                // Drop one (becomes garbage).
                1 if !live.is_empty() => {
                    let (h, _) = live.swap_remove(idx % live.len());
                    t.release(h);
                }
                // Mutate one.
                2 if !live.is_empty() => {
                    let i = idx % live.len();
                    t.set_prim::<i32>(live[i].0, ftag, val);
                    live[i].1 = val;
                }
                // Collect (minor or full).
                3 => {
                    if val % 2 == 0 {
                        t.collect_minor();
                    } else {
                        t.collect_full();
                    }
                }
                _ => {}
            }
        }
        t.collect_full();
        for (h, expect) in &live {
            prop_assert_eq!(t.get_prim::<i32>(*h, ftag), *expect);
        }
        // Full structural audit: headers, flags, ref slots, handle roots.
        motor::runtime::verify_heap(&vm).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("heap invariant: {e}"))
        })?;
    }

    #[test]
    fn heap_verifies_after_graph_builds_and_collections(spec in graph_strategy()) {
        let (vm, node) = fresh_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let root = build_graph(&t, node, &spec);
        motor::runtime::verify_heap(&vm).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("pre-GC: {e}"))
        })?;
        t.collect_minor();
        motor::runtime::verify_heap(&vm).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("post-minor: {e}"))
        })?;
        t.collect_full();
        motor::runtime::verify_heap(&vm).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("post-full: {e}"))
        })?;
        t.release(root);
        t.collect_full();
        motor::runtime::verify_heap(&vm).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("post-release: {e}"))
        })?;
    }
}
