//! Property-based tests on the Message Passing Core: MPI ordering
//! semantics under randomized schedules, and reduction correctness against
//! a sequential oracle.

use motor::mpc::universe::Universe;
use motor::mpc::{ReduceOp, Source, ANY_TAG};
use motor_sim::SimRng;
use proptest::prelude::*;

/// Seed-deterministic Fisher–Yates shuffle of `0..n`.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SimRng::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MPI non-overtaking: messages with identical envelopes arrive in
    /// send order regardless of size mix (eager and rendezvous
    /// interleaved) and of when the receives are posted.
    #[test]
    fn non_overtaking_under_mixed_protocols(
        sizes in proptest::collection::vec(1usize..150_000, 1..12),
        prepost in any::<bool>(),
    ) {
        let sizes2 = sizes.clone();
        Universe::run(2, move |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                for (i, &sz) in sizes2.iter().enumerate() {
                    let data = vec![(i % 251) as u8; sz];
                    world.send_bytes(&data, 1, 7).unwrap();
                }
            } else {
                for (i, &sz) in sizes2.iter().enumerate() {
                    let mut buf = vec![0u8; sz];
                    if prepost {
                        // Post before pumping anything else.
                        let req = unsafe {
                            world.irecv_ptr(buf.as_mut_ptr(), buf.len(), 0, 7).unwrap()
                        };
                        world.wait(&req).unwrap();
                    } else {
                        world.recv_bytes(&mut buf, 0, 7).unwrap();
                    }
                    assert!(
                        buf.iter().all(|&b| b == (i % 251) as u8),
                        "message {i} overtaken or corrupted"
                    );
                }
            }
        })
        .unwrap();
    }

    /// Request linearity under random Isend/Irecv/Wait interleavings:
    /// however the per-seed shuffle orders the waits relative to posting
    /// order, every request completes exactly once, its status matches its
    /// own message, and re-observing a completed request (`test` after
    /// `wait`) is an immediate no-op with the same outcome. This is the
    /// dynamic side of the linearity discipline `motor-analyze`'s verifier
    /// enforces statically on managed code (every request waited along
    /// every path, none waited twice into a different buffer).
    #[test]
    fn random_wait_interleavings_preserve_request_linearity(
        sizes in proptest::collection::vec(1usize..100_000, 1..10),
        seed in any::<u64>(),
    ) {
        let sizes2 = sizes.clone();
        Universe::run(2, move |proc| {
            let world = proc.world();
            let n = sizes2.len();
            if world.rank() == 0 {
                let bufs: Vec<Vec<u8>> = sizes2
                    .iter()
                    .enumerate()
                    .map(|(i, &sz)| vec![(i + 1) as u8; sz])
                    .collect();
                let reqs: Vec<_> = bufs
                    .iter()
                    .map(|b| {
                        // SAFETY: `bufs` outlives every wait below.
                        unsafe { world.isend_ptr(b.as_ptr(), b.len(), 1, 3).unwrap() }
                    })
                    .collect();
                for &i in &shuffled(n, seed) {
                    world.wait(&reqs[i]).unwrap();
                    // Linearity: the request stays completed; observing it
                    // again does not block, re-fire, or change anything.
                    assert!(world.test(&reqs[i]).unwrap().is_some());
                }
            } else {
                let mut bufs: Vec<Vec<u8>> = sizes2.iter().map(|&sz| vec![0u8; sz]).collect();
                // Post in order (non-overtaking pairs buffer i with
                // message i); *wait* in an independently shuffled order.
                let reqs: Vec<_> = bufs
                    .iter_mut()
                    .map(|b| {
                        // SAFETY: `bufs` outlives every wait below.
                        unsafe { world.irecv_ptr(b.as_mut_ptr(), b.len(), 0, 3).unwrap() }
                    })
                    .collect();
                for &i in &shuffled(n, seed ^ 0x9E37_79B9_7F4A_7C15) {
                    let st = world.wait(&reqs[i]).unwrap();
                    assert_eq!(st.count, sizes2[i], "request {i} got its own message");
                    assert!(
                        bufs[i].iter().all(|&b| b == (i + 1) as u8),
                        "request {i} buffer filled by its own message"
                    );
                    let again = world.test(&reqs[i]).unwrap().expect("still complete");
                    assert_eq!(again.count, st.count, "idempotent observation");
                }
            }
        })
        .unwrap();
    }

    /// Reductions agree with a sequential oracle for every operator.
    #[test]
    fn reductions_match_oracle(
        values in proptest::collection::vec(-1000i64..1000, 2..17),
    ) {
        // One rank per value.
        let n = values.len();
        let vals = values.clone();
        Universe::run(n, move |proc| {
            let world = proc.world();
            let mine = [vals[world.rank()]];
            for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
                let mut out = [0i64];
                world.allreduce_slice(&mine, &mut out, op).unwrap();
                let expect = match op {
                    ReduceOp::Sum => vals.iter().fold(0i64, |a, &b| a.wrapping_add(b)),
                    ReduceOp::Min => *vals.iter().min().unwrap(),
                    ReduceOp::Max => *vals.iter().max().unwrap(),
                    _ => unreachable!(),
                };
                assert_eq!(out[0], expect, "{op:?}");
            }
        })
        .unwrap();
    }

    /// Wildcard receives drain exactly the sent multiset of tags.
    #[test]
    fn wildcard_receives_preserve_message_multiset(
        tags in proptest::collection::vec(0i32..6, 1..20),
    ) {
        let tags2 = tags.clone();
        Universe::run(2, move |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                for &t in &tags2 {
                    world.send_bytes(&[t as u8], 1, t).unwrap();
                }
            } else {
                let mut got = Vec::new();
                for _ in 0..tags2.len() {
                    let mut b = [0u8; 1];
                    let st = world.recv_bytes(&mut b, Source::Any, ANY_TAG).unwrap();
                    assert_eq!(st.tag as u8, b[0], "tag/payload consistency");
                    got.push(st.tag);
                }
                let mut want = tags2.clone();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "multiset preserved");
                // Per-tag order is FIFO: since payload == tag, equal-tag
                // messages are indistinguishable here; FIFO per envelope
                // is covered by `non_overtaking_under_mixed_protocols`.
            }
        })
        .unwrap();
    }
}
