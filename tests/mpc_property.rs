//! Property-based tests on the Message Passing Core: MPI ordering
//! semantics under randomized schedules, and reduction correctness against
//! a sequential oracle.

use motor::mpc::universe::Universe;
use motor::mpc::{ReduceOp, Source, ANY_TAG};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MPI non-overtaking: messages with identical envelopes arrive in
    /// send order regardless of size mix (eager and rendezvous
    /// interleaved) and of when the receives are posted.
    #[test]
    fn non_overtaking_under_mixed_protocols(
        sizes in proptest::collection::vec(1usize..150_000, 1..12),
        prepost in any::<bool>(),
    ) {
        let sizes2 = sizes.clone();
        Universe::run(2, move |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                for (i, &sz) in sizes2.iter().enumerate() {
                    let data = vec![(i % 251) as u8; sz];
                    world.send_bytes(&data, 1, 7).unwrap();
                }
            } else {
                for (i, &sz) in sizes2.iter().enumerate() {
                    let mut buf = vec![0u8; sz];
                    if prepost {
                        // Post before pumping anything else.
                        let req = unsafe {
                            world.irecv_ptr(buf.as_mut_ptr(), buf.len(), 0, 7).unwrap()
                        };
                        world.wait(&req).unwrap();
                    } else {
                        world.recv_bytes(&mut buf, 0, 7).unwrap();
                    }
                    assert!(
                        buf.iter().all(|&b| b == (i % 251) as u8),
                        "message {i} overtaken or corrupted"
                    );
                }
            }
        })
        .unwrap();
    }

    /// Reductions agree with a sequential oracle for every operator.
    #[test]
    fn reductions_match_oracle(
        values in proptest::collection::vec(-1000i64..1000, 2..17),
    ) {
        // One rank per value.
        let n = values.len();
        let vals = values.clone();
        Universe::run(n, move |proc| {
            let world = proc.world();
            let mine = [vals[world.rank()]];
            for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
                let mut out = [0i64];
                world.allreduce_slice(&mine, &mut out, op).unwrap();
                let expect = match op {
                    ReduceOp::Sum => vals.iter().fold(0i64, |a, &b| a.wrapping_add(b)),
                    ReduceOp::Min => *vals.iter().min().unwrap(),
                    ReduceOp::Max => *vals.iter().max().unwrap(),
                    _ => unreachable!(),
                };
                assert_eq!(out[0], expect, "{op:?}");
            }
        })
        .unwrap();
    }

    /// Wildcard receives drain exactly the sent multiset of tags.
    #[test]
    fn wildcard_receives_preserve_message_multiset(
        tags in proptest::collection::vec(0i32..6, 1..20),
    ) {
        let tags2 = tags.clone();
        Universe::run(2, move |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                for &t in &tags2 {
                    world.send_bytes(&[t as u8], 1, t).unwrap();
                }
            } else {
                let mut got = Vec::new();
                for _ in 0..tags2.len() {
                    let mut b = [0u8; 1];
                    let st = world.recv_bytes(&mut b, Source::Any, ANY_TAG).unwrap();
                    assert_eq!(st.tag as u8, b[0], "tag/payload consistency");
                    got.push(st.tag);
                }
                let mut want = tags2.clone();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "multiset preserved");
                // Per-tag order is FIFO: since payload == tag, equal-tag
                // messages are indistinguishable here; FIFO per envelope
                // is covered by `non_overtaking_under_mixed_protocols`.
            }
        })
        .unwrap();
    }
}
