//! Live-telemetry conformance: a 4-rank cluster must serve `/metrics`,
//! `/healthz`, `/flight` and `/frames` *while the workload runs*, to two
//! concurrent clients, with every `/metrics` body passing the Prometheus
//! exposition check — and scraping must never perturb the run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use motor_core::cluster::{run_cluster, ClusterConfig};
use motor_core::TelemetryConfig;
use motor_obs::check_prometheus_text;
use motor_obs::export::json::{self, Value};
use motor_obs::DoctorConfig;
use motor_runtime::ElemKind;
use parking_lot::Mutex;

/// Minimal HTTP/1.1 GET against the telemetry endpoint.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let (head, body) = text.split_once("\r\n\r\n").expect("response has headers");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

const RANKS: usize = 4;
const DATA_TAG: i32 = 7;
const CONT_TAG: i32 = 9;

#[test]
fn four_rank_cluster_serves_all_endpoints_mid_run() {
    let cfg = ClusterConfig::builder()
        .ranks(RANKS)
        .telemetry(TelemetryConfig {
            // Port 0: the OS picks a free port; the body reads it back.
            addr: "127.0.0.1:0".to_string(),
            interval: Duration::from_millis(10),
            frame_capacity: 16,
        })
        // Attach a doctor with unreachable thresholds so /healthz reports
        // the watchdog's (empty) anomaly list rather than re-classifying
        // each scrape against default deadlines — a saturated test
        // machine can legitimately stall ranks past 2 s, which is not
        // what this test is about.
        .doctor(DoctorConfig {
            stall_deadline: Duration::from_secs(3600),
            pin_leak_deadline: Duration::from_secs(3600),
            gc_stall_ratio: 2.0,
            ..DoctorConfig::default()
        })
        .build();

    // Rank 0 publishes the bound address here; the two scrape clients
    // poll for it.
    let addr_shared: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
    let scrapes_done = Arc::new(AtomicBool::new(false));

    let mut clients = Vec::new();
    for client in 0..2u32 {
        let addr_shared = Arc::clone(&addr_shared);
        let done = Arc::clone(&scrapes_done);
        clients.push(std::thread::spawn(move || {
            let addr = loop {
                if let Some(a) = *addr_shared.lock() {
                    break a;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            // Wait until collection ticks have produced at least one
            // frame (a fixed sleep is not enough on a loaded machine).
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                let (status, body) = http_get(addr, "/frames");
                assert_eq!(status, 200);
                let v = json::parse(&body).expect("frames is JSON");
                let n = v
                    .get("frames")
                    .and_then(Value::as_array)
                    .map(<[Value]>::len);
                if n.unwrap_or(0) > 0 {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "no frame within 30s: {body}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            for round in 0..5 {
                let (status, body) = http_get(addr, "/metrics");
                assert_eq!(status, 200, "client {client} round {round}");
                check_prometheus_text(&body).unwrap_or_else(|e| {
                    panic!("client {client} round {round}: invalid exposition: {e}")
                });
                assert!(body.contains("motor_build_info"), "build info present");
                for rank in 0..RANKS {
                    assert!(
                        body.contains(&format!("rank=\"{rank}\"")),
                        "client {client}: /metrics misses rank {rank}:\n{body}"
                    );
                }

                let (status, body) = http_get(addr, "/healthz");
                assert_eq!(status, 200, "healthy while making progress: {body}");
                let v = json::parse(&body).expect("healthz is JSON");
                assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
                assert_eq!(v.get("ranks").and_then(Value::as_u64), Some(RANKS as u64));

                let (status, body) = http_get(addr, "/frames");
                assert_eq!(status, 200);
                let v = json::parse(&body).expect("frames is JSON");
                let frames = v.get("frames").and_then(Value::as_array).unwrap();
                assert!(frames.len() <= 16, "ring is bounded");
                assert!(!frames.is_empty(), "ticks have happened");

                let (status, body) = http_get(addr, "/flight");
                assert_eq!(status, 200);
                let v = json::parse(&body).expect("flight record is JSON");
                assert_eq!(
                    v.get("motor_flight_record").and_then(Value::as_u64),
                    Some(1)
                );
                let ranks = v.get("ranks").and_then(Value::as_array).unwrap();
                assert_eq!(ranks.len(), RANKS, "flight record covers every rank");
            }
            done.store(true, Ordering::Release);
        }));
    }

    let metrics = run_cluster(
        cfg,
        |_reg| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            if proc.rank() == 0 {
                let srv = proc.telemetry().expect("endpoint enabled");
                *addr_shared.lock() = Some(srv.local_addr());
            }
            // Ring traffic until both scrapers are done; rank 0 owns the
            // decision and broadcasts it so every rank iterates in
            // lockstep (independent checks could disagree by one round).
            let buf = t.alloc_prim_array(ElemKind::I64, 64);
            let right = (proc.rank() + 1) % proc.size();
            let left = (proc.rank() + proc.size() - 1) % proc.size();
            let mut rounds = 0u64;
            loop {
                mp.send(buf, right, DATA_TAG).expect("ring send");
                mp.recv(buf, left, DATA_TAG).expect("ring recv");
                rounds += 1;
                let mut cont = [u8::from(
                    proc.rank() == 0 && !(scrapes_done.load(Ordering::Acquire) && rounds >= 8),
                )];
                if proc.rank() == 0 {
                    for peer in 1..proc.size() {
                        proc.comm().send_bytes(&cont, peer, CONT_TAG).unwrap();
                    }
                } else {
                    proc.comm().recv_bytes(&mut cont, 0, CONT_TAG).unwrap();
                }
                if cont[0] == 0 {
                    break;
                }
                // Keep the loop from outrunning the scrape clients.
                std::thread::sleep(Duration::from_millis(2));
            }
        },
    )
    .expect("cluster run succeeds under scraping");

    for c in clients {
        c.join().expect("scrape client passed");
    }
    // The run made real progress while being scraped.
    assert!(metrics.aggregate().get(motor_obs::Metric::SendsEager) > 0);
    assert!(metrics.anomalies.is_empty(), "{:?}", metrics.anomalies);
}

#[test]
fn telemetry_absent_unless_asked_for() {
    if std::env::var("MOTOR_TELEMETRY").is_ok() || std::env::var("MOTOR_DOCTOR").is_ok() {
        // An outer harness enabled monitoring globally; the default-off
        // claim is not testable in this environment.
        return;
    }
    run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        |proc| {
            assert!(proc.telemetry().is_none(), "no endpoint by default");
            assert!(proc.collector().is_none(), "no collector by default");
            assert!(proc.doctor().is_none(), "no watchdog by default");
        },
    )
    .expect("plain run");
}
