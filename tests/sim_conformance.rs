//! MPI-semantics conformance suite over the deterministic simulator.
//!
//! Every test here runs the real transport stack — device, channel state
//! machines, protocol handlers — over `motor-sim`'s fault-injecting links,
//! either on the single-threaded [`SimNet`] scheduler (fully
//! deterministic) or on real OS threads over a [`SimFabric`]. Each test
//! repeats across the seed matrix (`MOTOR_SIM_SEEDS` or the frozen
//! default), so a failure prints a one-line seed-replay command and dumps
//! a doctor flight record.
//!
//! Semantics covered, per MPICH2's sock-channel contract:
//! * non-overtaking delivery per (source, tag, context) with eager and
//!   rendezvous messages interleaved;
//! * `ANY_SOURCE` matching draining every sender, FIFO per sender;
//! * eager↔rendezvous protocol selection at exactly the threshold
//!   boundary, through both `ShmLink` and `SimLink`;
//! * collective results independent of schedule and fault timing;
//! * the Oomp object serializer round-tripping under a byte trickle;
//! * a peer closing its link mid-rendezvous surfacing a clean
//!   `MpcError::PeerClosed` (and a doctor `LinkDrop` anomaly), not a hang.

use std::sync::atomic::{AtomicU64, Ordering};

use motor::mpc::device::DeviceConfig;
use motor::mpc::universe::{Universe, UniverseConfig};
use motor::mpc::{MpcError, ReduceOp};
use motor::obs::{classify, DoctorConfig, EventKind, Metric, RankHealth, MSG_RNDV_FLAG};
use motor::pal::TickSource;
use motor::prelude::{run_cluster, AnomalyKind, ChannelKind, ClusterConfig};
use motor::runtime::ElemKind;
use motor_sim::{seed_matrix, FaultPlan, Schedule, SimConfig, SimFabric, SimNet, SimRng};

/// Threshold small enough that both protocols appear in mixed workloads.
const EAGER_T: usize = 64;

fn sim_config(ranks: usize, plan: FaultPlan, schedule: Schedule) -> SimConfig {
    SimConfig {
        ranks,
        device: DeviceConfig {
            eager_threshold: EAGER_T,
            ..DeviceConfig::default()
        },
        schedule,
        plan,
        ..SimConfig::new(ranks)
    }
}

/// Device-level isend on the fabric (test buffers outlive the drive loop).
fn send(net: &SimNet, from: usize, to: usize, tag: i32, data: &[u8]) -> motor::mpc::Request {
    // SAFETY: every caller keeps `data` alive until the request completes.
    unsafe {
        net.device(from)
            .isend_raw(
                to,
                SimNet::envelope(from, tag),
                data.as_ptr(),
                data.len(),
                false,
            )
            .unwrap()
    }
}

/// Device-level irecv on the fabric.
fn recv(net: &SimNet, at: usize, src: i32, tag: i32, buf: &mut [u8]) -> motor::mpc::Request {
    // SAFETY: as in `send`.
    unsafe {
        net.device(at)
            .irecv_raw(src, tag, 0, buf.as_mut_ptr(), buf.len())
            .unwrap()
    }
}

/// Non-overtaking: messages with identical (source, tag, context) are
/// received in send order even when eager and rendezvous messages
/// interleave and the wire delivers one byte at a time with latency.
#[test]
fn non_overtaking_per_source_tag_under_faults() {
    // Sizes straddle the threshold so both protocols interleave.
    let sizes = [16usize, 200, 8, 300, 1, EAGER_T, EAGER_T + 1, 500, 32, 100];
    for seed in seed_matrix() {
        let mut net = SimNet::new(
            seed,
            sim_config(2, FaultPlan::trickle(3).with_latency(1), Schedule::Random),
        );
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| vec![i as u8 + 1; sz])
            .collect();
        let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&sz| vec![0u8; sz]).collect();
        let mut reqs = Vec::new();
        for p in &payloads {
            reqs.push(send(&net, 0, 1, 7, p));
        }
        // Alternate (by seed) between pre-posted receives — the posted
        // queue matches — and late-posted ones: the wire drains first, so
        // eager payloads and RTS frames must survive the unexpected queue.
        if seed % 2 == 1 {
            net.run_until(20_000, || false).unwrap();
        }
        for b in &mut bufs {
            reqs.push(recv(&net, 1, 0, 7, b));
        }
        net.complete(
            &reqs,
            3_000_000,
            "non_overtaking_per_source_tag_under_faults",
        );
        for (i, (buf, want)) in bufs.iter().zip(&payloads).enumerate() {
            if buf != want {
                net.fail(
                    "non_overtaking_per_source_tag_under_faults",
                    &format!("message {i} overtaken or corrupted"),
                );
            }
        }
    }
}

/// `ANY_SOURCE` receives drain every sender, and stay FIFO per sender.
#[test]
fn any_source_matching_drains_all_senders() {
    const PER_SENDER: usize = 3;
    for seed in seed_matrix() {
        let mut net = SimNet::new(seed, sim_config(4, FaultPlan::trickle(2), Schedule::Random));
        // Sender r's j-th message carries the byte 10*r + j.
        let payloads: Vec<(usize, Vec<u8>)> = (1..4)
            .flat_map(|r| (0..PER_SENDER).map(move |j| (r, vec![(10 * r + j) as u8; 8])))
            .collect();
        let mut bufs = vec![[0u8; 8]; payloads.len()];
        let mut reqs = Vec::new();
        for (r, p) in &payloads {
            reqs.push(send(&net, *r, 0, 5, p));
        }
        // Late-post on odd seeds: the messages land in the unexpected
        // queue first and the wildcards must drain it in arrival order.
        if seed % 2 == 1 {
            net.run_until(20_000, || false).unwrap();
        }
        for b in &mut bufs {
            reqs.push(recv(&net, 0, -1, 5, b));
        }
        net.complete(&reqs, 3_000_000, "any_source_matching_drains_all_senders");

        let got: Vec<u8> = bufs.iter().map(|b| b[0]).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        let mut want: Vec<u8> = payloads.iter().map(|(_, p)| p[0]).collect();
        want.sort_unstable();
        if sorted != want {
            net.fail(
                "any_source_matching_drains_all_senders",
                "wildcard receives did not drain the sent multiset",
            );
        }
        // FIFO per sender: each sender's bytes appear in increasing j.
        for r in 1..4u8 {
            let js: Vec<u8> = got
                .iter()
                .filter(|&&b| b / 10 == r)
                .map(|&b| b % 10)
                .collect();
            if !js.windows(2).all(|w| w[0] < w[1]) {
                net.fail(
                    "any_source_matching_drains_all_senders",
                    &format!("messages from rank {r} reordered: {js:?}"),
                );
            }
        }
    }
}

/// Protocol selection at the boundary, over `SimLink`: size ≤ threshold
/// goes eager, size > threshold rendezvous — asserted through the metrics
/// *and* the `MsgSend` trace event's rendezvous flag — and either way the
/// payload survives a 3-byte trickle.
#[test]
fn eager_rendezvous_boundary_over_simlink() {
    for seed in seed_matrix() {
        for size in [EAGER_T - 1, EAGER_T, EAGER_T + 1] {
            let mut net = SimNet::new(
                seed,
                sim_config(2, FaultPlan::trickle(3), Schedule::RoundRobin),
            );
            let expect_eager = size <= EAGER_T;
            let data = vec![0xC3u8; size];
            let mut buf = vec![0u8; size];
            let s = send(&net, 0, 1, 1, &data);
            let r = recv(&net, 1, 0, 1, &mut buf);
            net.complete(&[s, r], 1_000_000, "eager_rendezvous_boundary_over_simlink");
            assert_eq!(buf, data, "payload across the boundary (size {size})");

            let snap = net.device(0).metrics().snapshot();
            assert_eq!(
                (snap.get(Metric::SendsEager), snap.get(Metric::SendsRndv)),
                if expect_eager { (1, 0) } else { (0, 1) },
                "protocol selection at size {size} (threshold {EAGER_T})"
            );
            let ev = snap
                .events()
                .iter()
                .find(|e| e.kind == EventKind::MsgSend)
                .expect("send stamped a MsgSend event");
            assert_eq!(
                ev.c & MSG_RNDV_FLAG != 0,
                !expect_eager,
                "MsgSend rendezvous flag at size {size}"
            );
        }
    }
}

/// The same boundary through the real threaded stack over `ShmLink`:
/// identical payloads delivered, and the sender's metrics show exactly
/// two eager and one rendezvous send.
#[test]
fn eager_rendezvous_boundary_over_shmlink() {
    let cfg = UniverseConfig {
        channel: ChannelKind::Shm,
        device: DeviceConfig {
            eager_threshold: EAGER_T,
            ..DeviceConfig::default()
        },
        ..UniverseConfig::default()
    };
    Universe::run_with(2, cfg, |proc| {
        let world = proc.world();
        let sizes = [EAGER_T - 1, EAGER_T, EAGER_T + 1];
        if world.rank() == 0 {
            for (i, &size) in sizes.iter().enumerate() {
                world
                    .send_bytes(&vec![i as u8 + 1; size], 1, i as i32)
                    .unwrap();
            }
            let snap = proc.device().metrics().snapshot();
            assert_eq!(snap.get(Metric::SendsEager), 2, "T-1 and T eager");
            assert_eq!(snap.get(Metric::SendsRndv), 1, "T+1 rendezvous");
            // The trace events agree with the counters, message by message.
            let flags: Vec<bool> = snap
                .events()
                .iter()
                .filter(|e| e.kind == EventKind::MsgSend)
                .map(|e| e.c & MSG_RNDV_FLAG != 0)
                .collect();
            assert_eq!(flags, [false, false, true]);
        } else {
            for (i, &size) in sizes.iter().enumerate() {
                let mut buf = vec![0u8; size];
                world.recv_bytes(&mut buf, 0, i as i32).unwrap();
                assert_eq!(buf, vec![i as u8 + 1; size], "payload at size {size}");
            }
        }
    })
    .unwrap();
}

/// Collective results are a function of the inputs alone: across every
/// seed (different fault jitter, different thread interleavings) the
/// reductions and gathers produce the oracle answer.
#[test]
fn collective_results_independent_of_schedule() {
    for seed in seed_matrix() {
        let fabric = SimFabric::new(seed, FaultPlan::trickle(5).with_latency(1));
        let cfg = UniverseConfig {
            link_factory: Some(fabric.factory()),
            ..UniverseConfig::default()
        };
        Universe::run_with(3, cfg, |proc| {
            let world = proc.world();
            let r = world.rank() as i64;
            let mut sum = [0i64];
            world
                .allreduce_slice(&[r + 1], &mut sum, ReduceOp::Sum)
                .unwrap();
            assert_eq!(sum[0], 6, "allreduce oracle (seed {seed})");
            let mut mx = [0i64];
            world
                .allreduce_slice(&[10 * (r + 1)], &mut mx, ReduceOp::Max)
                .unwrap();
            assert_eq!(mx[0], 30, "allreduce max oracle (seed {seed})");
            let mine = [world.rank() as u8 + 1; 4];
            let mut all = vec![0u8; 4 * world.size()];
            world.allgather_bytes(&mine, &mut all).unwrap();
            for peer in 0..world.size() {
                assert_eq!(
                    &all[4 * peer..4 * peer + 4],
                    [peer as u8 + 1; 4],
                    "allgather slot {peer} (seed {seed})"
                );
            }
        })
        .unwrap_or_else(|e| panic!("collective run failed with seed {seed}: {e}"));
    }
}

/// The Oomp serializer round-trips an object graph over a byte-trickling
/// wire: the split-capable serializer must reassemble from arbitrary
/// partial reads (the full Motor stack, `run_cluster` on top).
#[test]
fn oomp_serializer_roundtrips_under_byte_trickle() {
    for seed in [seed_matrix()[0], *seed_matrix().last().unwrap()] {
        let fabric = SimFabric::new(seed, FaultPlan::trickle(7));
        let config = ClusterConfig::builder()
            .ranks(2)
            .eager_threshold(256)
            .link_factory(fabric.factory())
            .build();
        run_cluster(
            config,
            |reg| {
                let arr = reg.prim_array(ElemKind::I32);
                reg.define_class("Packet")
                    .prim("id", ElemKind::I32)
                    .transportable("data", arr)
                    .build();
            },
            move |proc| {
                let oomp = proc.oomp();
                let t = proc.thread();
                let cls = proc.vm().registry().by_name("Packet").unwrap();
                let (fid, fdata) = (t.field_index(cls, "id"), t.field_index(cls, "data"));
                if proc.rank() == 0 {
                    // 400 bytes of array data: rendezvous under the
                    // 256-byte threshold, trickled 7 bytes at a time.
                    let o = t.alloc_instance(cls);
                    t.set_prim::<i32>(o, fid, 7777);
                    let d = t.alloc_prim_array(ElemKind::I32, 100);
                    let vals: Vec<i32> = (0..100).map(|i| i * 3 - 50).collect();
                    t.prim_write(d, 0, &vals);
                    t.set_ref(o, fdata, d);
                    t.release(d);
                    oomp.osend(o, 1, 9).unwrap();
                } else {
                    let (got, st) = oomp.orecv(motor::mpc::Source::Rank(0), 9).unwrap();
                    assert_eq!(st.source, 0);
                    assert_eq!(t.get_prim::<i32>(got, fid), 7777, "seed {seed}");
                    let d = t.get_ref(got, fdata);
                    let mut vals = vec![0i32; 100];
                    t.prim_read(d, 0, &mut vals);
                    let want: Vec<i32> = (0..100).map(|i| i * 3 - 50).collect();
                    assert_eq!(vals, want, "array contents after trickle (seed {seed})");
                }
            },
        )
        .unwrap_or_else(|e| panic!("oomp run failed with seed {seed}: {e}"));
    }
}

/// A link dying mid-rendezvous (byte fuse blows partway into the payload)
/// fails the bound requests with `PeerClosed` within the step budget —
/// never a hang — and the doctor classifies the dropped link.
#[test]
fn mid_rendezvous_link_close_fails_cleanly() {
    for seed in seed_matrix() {
        let mut net = SimNet::new(
            seed,
            sim_config(
                2,
                // 5000-byte payload, wire dies after 700 bytes: well past
                // the RTS, well short of the data.
                FaultPlan::trickle(8).with_close_after(700),
                Schedule::Random,
            ),
        );
        let data = vec![0x5Au8; 5000];
        let mut buf = vec![0u8; 5000];
        let s = send(&net, 0, 1, 2, &data);
        let r = recv(&net, 1, 0, 2, &mut buf);
        let failed = net
            .run_until(1_000_000, || {
                s.failed_peer().is_some() || r.failed_peer().is_some()
            })
            .unwrap();
        if !failed {
            net.fail(
                "mid_rendezvous_link_close_fails_cleanly",
                "link fuse blew but no request failed within the budget",
            );
        }
        assert!(
            !s.is_complete() || !r.is_complete(),
            "transfer cannot finish"
        );
        // The waiter surfaces a clean error, not a hang.
        let who = if s.failed_peer().is_some() {
            (&s, 0)
        } else {
            (&r, 1)
        };
        match net.device(who.1).wait_with(who.0, || {}) {
            Err(MpcError::PeerClosed(_)) => {}
            other => panic!("expected PeerClosed, got {other:?} (seed {seed})"),
        }
        let dropped: u64 = (0..2)
            .map(|d| net.device(d).metrics().snapshot().get(Metric::LinksDropped))
            .sum();
        assert!(dropped >= 1, "LinksDropped accounted (seed {seed})");

        // The doctor sees the same story: a LinkDrop anomaly.
        let health: Vec<RankHealth> = (0..2)
            .map(|d| {
                let dev = net.device(d);
                RankHealth {
                    rank: d,
                    label: format!("rank {d}"),
                    done: false,
                    now_nanos: 0,
                    last_progress_nanos: 0,
                    inflight: Vec::new(),
                    queue_depths: dev.queue_depths(),
                    hard_pins: 0,
                    cond_pins: 0,
                    oldest_pin_nanos: 0,
                    safepoint_stall_nanos: 0,
                    window_nanos: 0,
                    links_dropped: dev.metrics().snapshot().get(Metric::LinksDropped),
                }
            })
            .collect();
        let anomalies = classify(&health, &DoctorConfig::default());
        assert!(
            anomalies.iter().any(|a| a.kind == AnomalyKind::LinkDrop),
            "doctor reports the dropped link (seed {seed})"
        );
    }
}

/// The threaded stack surfaces the same failure as a clean error on both
/// sides — the regression this suite exists for is an infinite hang in
/// `recv_bytes` when the peer disappears mid-rendezvous.
#[test]
fn mid_rendezvous_close_threaded_returns_error() {
    let fabric = SimFabric::new(42, FaultPlan::trickle(8).with_close_after(700));
    let cfg = UniverseConfig {
        link_factory: Some(fabric.factory()),
        ..UniverseConfig::default()
    };
    let dropped = AtomicU64::new(0);
    Universe::run_with(2, cfg, |proc| {
        let world = proc.world();
        let result = if world.rank() == 0 {
            world.send_bytes(&[0x5Au8; 200_000], 1, 3)
        } else {
            let mut buf = vec![0u8; 200_000];
            world.recv_bytes(&mut buf, 0, 3).map(|_| ())
        };
        match result {
            Err(MpcError::PeerClosed(_)) => {}
            other => panic!("rank {} expected PeerClosed, got {other:?}", world.rank()),
        }
        dropped.fetch_add(
            proc.device().metrics().snapshot().get(Metric::LinksDropped),
            Ordering::Relaxed,
        );
    })
    .unwrap();
    assert!(dropped.load(Ordering::Relaxed) >= 1);
}

/// Identical seeds replay identical runs: schedule, virtual time and the
/// sender's full counter set all match between two executions.
#[test]
fn seed_replay_reproduces_runs_exactly() {
    let run = |seed: u64| {
        let mut net = SimNet::new(
            seed,
            sim_config(3, FaultPlan::trickle(4).with_latency(2), Schedule::Random),
        );
        let data = vec![0x11u8; 300];
        let mut buf = vec![0u8; 300];
        let s = send(&net, 0, 2, 1, &data);
        let r = recv(&net, 2, 0, 1, &mut buf);
        net.complete(&[s, r], 1_000_000, "seed_replay_reproduces_runs_exactly");
        let snap = net.device(0).metrics().snapshot();
        (
            net.steps(),
            net.clock().now_ticks(),
            snap.get(Metric::ProgressPolls),
            snap.get(Metric::ChanBytesOut),
        )
    };
    for seed in seed_matrix() {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay exactly");
    }
    // And the PRNG itself is stable: same seed, same stream.
    let mut a = SimRng::new(99);
    let mut b = SimRng::new(99);
    assert!((0..64).all(|_| a.next_u64() == b.next_u64()));
}
