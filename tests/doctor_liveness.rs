//! `motor-doctor` liveness: an injected deadlock must be diagnosed and
//! flight-recorded within the deadline, a healthy run of the same shape
//! must stay anomaly-free, the Prometheus exporter must round-trip every
//! metric, and the watchdog must not wreck ping-pong throughput.

use std::time::{Duration, Instant};

use motor::core::cluster::{run_cluster, ClusterConfig};
use motor::obs::export::json;
use motor::prelude::*;

/// The common 4-rank shape: a ring shift, then (optionally) rank `size-1`
/// posts a receive no rank will ever send to.
fn ring_body(proc: &MotorProc, inject_deadlock: bool) {
    let mp = proc.mp();
    let t = proc.thread();
    let (rank, size) = (mp.rank(), mp.size());
    let buf = t.alloc_prim_array(ElemKind::I64, 64);
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    if rank % 2 == 0 {
        mp.send(buf, right, 1).unwrap();
        mp.recv(buf, left, 1).unwrap();
    } else {
        mp.recv(buf, left, 1).unwrap();
        mp.send(buf, right, 1).unwrap();
    }
    if inject_deadlock && rank == size - 1 {
        let lost = t.alloc_prim_array(ElemKind::U8, 32);
        let _ = mp.recv(lost, 0, 0x7ead); // never matched; blocks forever
    }
    t.release(buf);
}

fn fast_doctor(record: Option<String>) -> DoctorConfig {
    DoctorConfig {
        scan_interval: Duration::from_millis(20),
        stall_deadline: Duration::from_millis(300),
        record_path: record,
        ..DoctorConfig::default()
    }
}

#[test]
fn injected_deadlock_is_diagnosed_within_deadline() {
    let record = std::env::temp_dir().join(format!("motor_doctor_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&record);
    let path = record.to_string_lossy().into_owned();

    // The deadlocked cluster never returns: run it on a detached thread
    // and watch for the flight record from here.
    let cfg = ClusterConfig::builder()
        .ranks(4)
        .doctor(fast_doctor(Some(path.clone())))
        .build();
    std::thread::spawn(move || {
        let _ = run_cluster(cfg, |_| {}, |proc| ring_body(proc, true));
    });

    // Deadline 300 ms + scan every 20 ms: the record must exist well
    // within the hard test budget.
    let t0 = Instant::now();
    let text = loop {
        match std::fs::read_to_string(&record) {
            Ok(t) if !t.is_empty() => break t,
            _ => {
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "no flight record after 30 s"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    let _ = std::fs::remove_file(&record);

    let v = json::parse(&text).expect("flight record is valid JSON");
    assert_eq!(
        v.get("motor_flight_record").and_then(|x| x.as_u64()),
        Some(1)
    );
    let anomalies = v.get("anomalies").and_then(|a| a.as_array()).unwrap();
    assert!(!anomalies.is_empty(), "record must contain the anomaly");
    // The stuck rank and op are named: rank 3, blocked in its recv.
    let blamed = anomalies
        .iter()
        .find(|a| a.get("rank").and_then(|r| r.as_u64()) == Some(3))
        .expect("rank 3 must be blamed");
    assert_eq!(
        blamed.get("op").and_then(|o| o.as_str()),
        Some("mp_recv"),
        "the blocking receive is the blamed op"
    );
    let kind = blamed.get("kind").and_then(|k| k.as_str()).unwrap();
    assert!(
        kind == "deadlock_suspect" || kind == "stall",
        "unexpected anomaly kind {kind}"
    );
    assert_eq!(
        v.get("ranks").and_then(|r| r.as_array()).map(|r| r.len()),
        Some(4)
    );
}

#[test]
fn healthy_run_of_same_shape_has_zero_anomalies() {
    let cfg = ClusterConfig::builder()
        .ranks(4)
        .doctor(fast_doctor(None))
        .build();
    let metrics = run_cluster(cfg, |_| {}, |proc| ring_body(proc, false)).unwrap();
    assert!(
        metrics.anomalies.is_empty(),
        "healthy run misdiagnosed: {:?}",
        metrics.anomalies
    );
}

#[test]
fn prometheus_export_round_trips_cluster_metrics() {
    let cfg = ClusterConfig::builder().ranks(2).build();
    let metrics = run_cluster(cfg, |_| {}, |proc| ring_body(proc, false)).unwrap();
    for (rank, snap) in metrics.per_rank.iter().enumerate() {
        let rank_s = rank.to_string();
        let text = to_prometheus(snap, &[("rank", &rank_s)]);
        check_prometheus_text(&text).expect("exposition-format syntax");
        for m in Metric::ALL {
            assert!(
                text.contains(&format!("motor_{}", m.name())),
                "missing counter {}",
                m.name()
            );
        }
        for h in Hist::ALL {
            let family = format!("motor_{}", h.name());
            assert!(
                text.contains(&format!("{family}_count")),
                "missing histogram {family}"
            );
            // The +Inf cumulative bucket equals the _count total.
            let count_line = text
                .lines()
                .find(|l| l.starts_with(&format!("{family}_count")))
                .unwrap();
            let total: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
            let inf_line = text
                .lines()
                .find(|l| l.starts_with(&format!("{family}_bucket")) && l.contains("+Inf"))
                .unwrap();
            let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(total, inf, "{family}: le=+Inf must equal _count");
            assert_eq!(total, snap.hist(h).count());
        }
    }
}

/// The watchdog's cost on the hot path is registration (one CAS + a few
/// relaxed stores per op) plus a scan thread reading shared tables. A
/// strict <2% bound would be flaky under CI noise, so assert a generous
/// functional bound: ping-pong with the doctor scanning hard keeps at
/// least half the ops/sec of the undoctored run.
#[test]
fn watchdog_overhead_on_pingpong_is_bounded() {
    fn pingpong_ops_per_sec(doctor: Option<DoctorConfig>) -> f64 {
        let mut builder = ClusterConfig::builder().ranks(2);
        if let Some(cfg) = doctor {
            builder = builder.doctor(cfg);
        }
        let rounds = 400i64;
        let t0 = Instant::now();
        run_cluster(
            builder.build(),
            |_| {},
            |proc| {
                let mp = proc.mp();
                let t = proc.thread();
                let buf = t.alloc_prim_array(ElemKind::I64, 128);
                for round in 0..rounds {
                    let tag = (round % 32) as i32;
                    if mp.rank() == 0 {
                        mp.send(buf, 1, tag).unwrap();
                        mp.recv(buf, 1, tag).unwrap();
                    } else {
                        mp.recv(buf, 0, tag).unwrap();
                        mp.send(buf, 0, tag).unwrap();
                    }
                }
                t.release(buf);
            },
        )
        .unwrap();
        2.0 * rounds as f64 / t0.elapsed().as_secs_f64()
    }

    let bare = pingpong_ops_per_sec(None);
    let doctored = pingpong_ops_per_sec(Some(DoctorConfig {
        scan_interval: Duration::from_millis(5),
        ..DoctorConfig::default()
    }));
    assert!(
        doctored >= bare * 0.5,
        "watchdog overhead too high: {bare:.0} ops/s bare vs {doctored:.0} doctored"
    );
}
