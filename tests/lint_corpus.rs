//! motor-lint seeded-bug corpus: a table of known-bad IL programs that
//! the whole-program communication analysis must each catch with an
//! exact diagnostic code and `func@pc` provenance, plus known-good
//! programs (including the patterns superficially similar to the bad
//! ones) that must lint clean.

use motor::analyze::{load_with, LintConfig, LintReport, Severity};
use motor::interp::il::{FCallId, FnBuilder, Function, Module, Op, TyDesc};
use motor::runtime::{ElemKind, TypeRegistry};

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.prim_array(ElemKind::F64);
    reg.prim_array(ElemKind::I64);
    reg
}

fn module_of(fs: Vec<Function>) -> Module {
    let mut m = Module::new();
    for f in fs {
        m.add(f);
    }
    m
}

fn lint(fs: Vec<Function>, cfg: &LintConfig) -> LintReport {
    let reg = registry();
    let (_, report) = load_with(module_of(fs), &reg, cfg).expect("corpus modules verify");
    report
}

fn cfg_ranks(n: usize) -> LintConfig {
    LintConfig {
        ranks: n,
        ..LintConfig::default()
    }
}

/// Push `len` f64s worth of fresh buffer.
fn buf(f: &mut FnBuilder, len: i64) {
    f.op(Op::PushI(len)).op(Op::NewArr(ElemKind::F64));
}

// -------------------------------------------------------------------
// Known-bad programs
// -------------------------------------------------------------------

#[test]
fn bad_corpus_each_case_caught_with_site() {
    type Builder = fn() -> (Vec<Function>, LintConfig);
    // (name, builder, expected severity, expected code, expected site)
    let cases: Vec<(&str, Builder, Severity, &str, &str)> = vec![
        (
            "missing barrier on one branch",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                let done = f.label();
                f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
                f.br_false(done);
                f.op(Op::FCall(FCallId::MpBarrier));
                f.bind(done);
                f.op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "collective-not-reached",
            "main@4",
        ),
        (
            "broadcast root depends on rank parity",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                buf(&mut f, 4);
                f.op(Op::Load(0))
                    .op(Op::PushI(2))
                    .op(Op::Rem)
                    .op(Op::FCall(FCallId::MpBcast))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "root-mismatch",
            "main@5",
        ),
        (
            "mutual rendezvous sends deadlock",
            || {
                // Both ranks send 128 KiB (above the 64 KiB eager
                // threshold) to each other before either receives.
                let mut f = FnBuilder::new("main", 2, 2, false);
                buf(&mut f, 16 * 1024);
                f.op(Op::PushI(1))
                    .op(Op::Load(0))
                    .op(Op::Sub)
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpSend));
                buf(&mut f, 16 * 1024);
                f.op(Op::PushI(1))
                    .op(Op::Load(0))
                    .op(Op::Sub)
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpRecv))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(2))
            },
            Severity::Definite,
            "rendezvous-cycle",
            "main@6",
        ),
        (
            "entry function takes an unproducible request",
            || {
                let mut f = FnBuilder::new("finish", 1, 1, false);
                f.params(&[TyDesc::Req]);
                f.op(Op::Load(0)).op(Op::FCall(FCallId::MpWait)).op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "orphan-request",
            "finish@0",
        ),
        (
            "entry function returns an unawaited request",
            || {
                let mut f = FnBuilder::new("launch", 0, 0, true);
                f.ret_ty(TyDesc::Req);
                buf(&mut f, 4);
                f.op(Op::PushI(0))
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpIsend))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "escaped-request",
            "launch@0",
        ),
        (
            "request circulates a call cycle without a wait",
            || {
                // ping(req) calls pong(req); pong(req) calls ping(req).
                // Each verifies locally (passing to a Req-typed callee
                // consumes), but globally the request never completes.
                let mut ping = FnBuilder::new("ping", 1, 1, false);
                ping.params(&[TyDesc::Req]);
                ping.op(Op::Load(0)).op(Op::Call(1)).op(Op::Ret);
                let mut pong = FnBuilder::new("pong", 1, 1, false);
                pong.params(&[TyDesc::Req]);
                pong.op(Op::Load(0)).op(Op::Call(0)).op(Op::Ret);
                (vec![ping.build(), pong.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "request-cycle",
            "ping@0",
        ),
        (
            "send targets a rank outside the communicator",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                buf(&mut f, 4);
                f.op(Op::PushI(9))
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpSend))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "peer-range",
            "main@4",
        ),
        (
            "broadcast root outside the communicator",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                buf(&mut f, 4);
                f.op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpBcast))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "peer-range",
            "main@3",
        ),
        (
            "receive tag never sent",
            || {
                // Rank 0 sends tag 1; rank 1 receives tag 2: deadlock.
                let mut f = FnBuilder::new("main", 2, 2, false);
                let recv = f.label();
                let done = f.label();
                f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
                f.br_false(recv);
                buf(&mut f, 4);
                f.op(Op::PushI(1))
                    .op(Op::PushI(1))
                    .op(Op::FCall(FCallId::MpSend));
                f.br(done);
                f.bind(recv);
                buf(&mut f, 4);
                f.op(Op::PushI(0))
                    .op(Op::PushI(2))
                    .op(Op::FCall(FCallId::MpRecv));
                f.bind(done);
                f.op(Op::Ret);
                (vec![f.build()], cfg_ranks(2))
            },
            Severity::Definite,
            "unmatched-recv",
            "main@14",
        ),
        (
            "barrier on one rank meets broadcast on the others",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                let bcast = f.label();
                let done = f.label();
                f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
                f.br_false(bcast);
                f.op(Op::FCall(FCallId::MpBarrier));
                f.br(done);
                f.bind(bcast);
                buf(&mut f, 4);
                f.op(Op::PushI(0)).op(Op::FCall(FCallId::MpBcast));
                f.bind(done);
                f.op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Definite,
            "collective-mismatch",
            "main@4",
        ),
        (
            "waited irecv that no rank ever sends to",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                buf(&mut f, 4);
                f.op(Op::PushI(1))
                    .op(Op::Load(0))
                    .op(Op::Sub)
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpIrecv))
                    .op(Op::FCall(FCallId::MpWait))
                    .op(Op::Ret);
                (vec![f.build()], cfg_ranks(2))
            },
            Severity::Definite,
            "unmatched-wait",
            "main@7",
        ),
        (
            "wildcard receive with competing senders",
            || {
                // Ranks 1 and 2 both send tag 7 to rank 0, which
                // receives twice from any-source.
                let mut f = FnBuilder::new("main", 2, 2, false);
                let workers = f.label();
                let done = f.label();
                f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
                f.br_false(workers);
                buf(&mut f, 4);
                f.op(Op::PushI(-1))
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpRecv));
                buf(&mut f, 4);
                f.op(Op::PushI(-1))
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpRecv));
                f.br(done);
                f.bind(workers);
                f.op(Op::Load(0)).op(Op::PushI(3)).op(Op::CmpEq);
                f.br_true(done);
                buf(&mut f, 4);
                f.op(Op::PushI(0))
                    .op(Op::PushI(7))
                    .op(Op::FCall(FCallId::MpSend));
                f.bind(done);
                f.op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Possible,
            "wildcard-race",
            "main@8",
        ),
        (
            "eager send no rank ever receives",
            || {
                let mut f = FnBuilder::new("main", 2, 2, false);
                let done = f.label();
                f.op(Op::Load(0)).op(Op::PushI(1)).op(Op::CmpEq);
                f.br_false(done);
                buf(&mut f, 4);
                f.op(Op::PushI(0))
                    .op(Op::PushI(9))
                    .op(Op::FCall(FCallId::MpSend));
                f.bind(done);
                f.op(Op::Ret);
                (vec![f.build()], cfg_ranks(4))
            },
            Severity::Possible,
            "unmatched-send",
            "main@8",
        ),
    ];

    for (name, build, severity, code, site) in cases {
        let (fs, cfg) = build();
        let report = lint(fs, &cfg);
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.code == code && d.site() == site);
        assert!(
            hit.is_some(),
            "case `{name}`: expected {code} at {site}, got {:?}",
            report.diagnostics
        );
        assert_eq!(
            hit.expect("checked").severity,
            severity,
            "case `{name}` severity"
        );
    }
}

// -------------------------------------------------------------------
// Known-good programs
// -------------------------------------------------------------------

#[test]
fn good_corpus_lints_clean() {
    type Builder = fn() -> (Vec<Function>, LintConfig);
    let cases: Vec<(&str, Builder)> = vec![
        ("eager ring pass", || {
            // send to (rank+1) % size, receive from (rank-1+size) % size.
            let mut f = FnBuilder::new("main", 2, 2, false);
            buf(&mut f, 4);
            f.op(Op::Load(0))
                .op(Op::PushI(1))
                .op(Op::Add)
                .op(Op::Load(1))
                .op(Op::Rem)
                .op(Op::PushI(7))
                .op(Op::FCall(FCallId::MpSend));
            buf(&mut f, 4);
            f.op(Op::Load(0))
                .op(Op::PushI(1))
                .op(Op::Sub)
                .op(Op::Load(1))
                .op(Op::Add)
                .op(Op::Load(1))
                .op(Op::Rem)
                .op(Op::PushI(7))
                .op(Op::FCall(FCallId::MpRecv))
                .op(Op::Ret);
            (vec![f.build()], cfg_ranks(4))
        }),
        ("broadcast then barrier", || {
            let mut f = FnBuilder::new("main", 2, 2, false);
            buf(&mut f, 4);
            f.op(Op::PushI(0))
                .op(Op::FCall(FCallId::MpBcast))
                .op(Op::FCall(FCallId::MpBarrier))
                .op(Op::Ret);
            (vec![f.build()], cfg_ranks(4))
        }),
        ("master gathers from each worker in a counted loop", || {
            let mut f = FnBuilder::new("main", 2, 3, false);
            let send = f.label();
            let top = f.label();
            let done = f.label();
            f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
            f.br_false(send);
            f.op(Op::PushI(1)).op(Op::Store(2));
            f.bind(top);
            f.op(Op::Load(2)).op(Op::Load(1)).op(Op::CmpLt);
            f.br_false(done);
            buf(&mut f, 4);
            f.op(Op::Load(2))
                .op(Op::PushI(5))
                .op(Op::FCall(FCallId::MpRecv));
            f.op(Op::Load(2))
                .op(Op::PushI(1))
                .op(Op::Add)
                .op(Op::Store(2));
            f.br(top);
            f.bind(send);
            buf(&mut f, 4);
            f.op(Op::PushI(0))
                .op(Op::PushI(5))
                .op(Op::FCall(FCallId::MpSend));
            f.bind(done);
            f.op(Op::Ret);
            (vec![f.build()], cfg_ranks(4))
        }),
        ("rendezvous exchange with irecv posted first", || {
            // The classic correct large-message exchange: post the
            // irecv, then the (rendezvous) send, then wait.
            let mut f = FnBuilder::new("main", 2, 3, false);
            buf(&mut f, 16 * 1024);
            f.op(Op::PushI(1))
                .op(Op::Load(0))
                .op(Op::Sub)
                .op(Op::PushI(3))
                .op(Op::FCall(FCallId::MpIrecv))
                .op(Op::Store(2));
            buf(&mut f, 16 * 1024);
            f.op(Op::PushI(1))
                .op(Op::Load(0))
                .op(Op::Sub)
                .op(Op::PushI(3))
                .op(Op::FCall(FCallId::MpSend));
            f.op(Op::Load(2)).op(Op::FCall(FCallId::MpWait)).op(Op::Ret);
            (vec![f.build()], cfg_ranks(2))
        }),
        ("isend through a Req-returning helper", || {
            // main rank-shifts through a helper that posts the
            // isend and hands the request back; the verifier's
            // cross-call rule plus the lint prove it completes.
            let mut main = FnBuilder::new("main", 2, 3, false);
            main.op(Op::Load(0))
                .op(Op::PushI(1))
                .op(Op::Add)
                .op(Op::Load(1))
                .op(Op::Rem)
                .op(Op::PushI(7))
                .op(Op::Call(1))
                .op(Op::Store(2));
            buf(&mut main, 4);
            main.op(Op::Load(0))
                .op(Op::PushI(1))
                .op(Op::Sub)
                .op(Op::Load(1))
                .op(Op::Add)
                .op(Op::Load(1))
                .op(Op::Rem)
                .op(Op::PushI(7))
                .op(Op::FCall(FCallId::MpRecv));
            main.op(Op::Load(2))
                .op(Op::FCall(FCallId::MpWait))
                .op(Op::Ret);
            let mut post = FnBuilder::new("post", 2, 2, true);
            post.ret_ty(TyDesc::Req);
            buf(&mut post, 4);
            post.op(Op::Load(0))
                .op(Op::Load(1))
                .op(Op::FCall(FCallId::MpIsend))
                .op(Op::Ret);
            (vec![main.build(), post.build()], cfg_ranks(4))
        }),
        ("pairwise exchange below the eager threshold", || {
            // send-then-recv both ways is safe when both payloads
            // fit the eager protocol.
            let mut f = FnBuilder::new("main", 2, 2, false);
            buf(&mut f, 64);
            f.op(Op::PushI(1))
                .op(Op::Load(0))
                .op(Op::Sub)
                .op(Op::PushI(7))
                .op(Op::FCall(FCallId::MpSend));
            buf(&mut f, 64);
            f.op(Op::PushI(1))
                .op(Op::Load(0))
                .op(Op::Sub)
                .op(Op::PushI(7))
                .op(Op::FCall(FCallId::MpRecv))
                .op(Op::Ret);
            (vec![f.build()], cfg_ranks(2))
        }),
    ];

    for (name, build) in cases {
        let (fs, cfg) = build();
        let report = lint(fs, &cfg);
        assert!(
            report.comm_checked,
            "case `{name}`: comm pass should have run"
        );
        assert!(
            report.is_clean(),
            "case `{name}` should lint clean, got {:?}",
            report.diagnostics
        );
    }
}
