//! Property test for the progress engine: seeded soups of mixed
//! eager/rendezvous point-to-point operations, across rank counts and all
//! three progress modes, must all complete within a fixed step budget —
//! no matter which thread (rank, engine, or stealing sibling) ends up
//! driving each transfer — and the doctor must see a healthy cluster at
//! the end: zero stall or deadlock-suspect anomalies.
//!
//! The op soup is generated once per (seed, rank count) from a forked
//! `SimRng` stream and replayed identically under `off`, `thread` and
//! `steal`, so a divergence between modes is attributable to the engine
//! alone, never to the workload.

use motor::mpc::device::DeviceConfig;
use motor::mpc::{ProgressConfig, Request};
use motor::obs::{classify, AnomalyKind, DoctorConfig, RankHealth};
use motor_sim::{seed_matrix, FaultPlan, Schedule, SimConfig, SimNet, SimRng};
use std::collections::HashMap;

/// Small threshold so soups exercise both protocols heavily.
const EAGER_T: usize = 48;
/// Ops per soup — big enough to tangle channels, small enough to stay fast.
const OPS: usize = 40;
/// Virtual-step budget for one soup. A starved op busts this long before
/// wall-clock timeouts would.
const STEP_BUDGET: u64 = 5_000_000;

/// The progress modes each property replays. `MOTOR_PROGRESS` narrows
/// the matrix to a single mode (`off`, `thread` or `steal`) so CI can
/// attribute a failure to one engine mode; unset replays all three.
fn modes_under_test() -> Vec<(ProgressConfig, &'static str)> {
    let all = vec![
        (ProgressConfig::off(), "off"),
        (ProgressConfig::thread(), "thread"),
        (ProgressConfig::steal(), "steal"),
    ];
    match std::env::var("MOTOR_PROGRESS") {
        Ok(v) if !v.trim().is_empty() => {
            let v = v.trim().to_ascii_lowercase();
            let picked: Vec<_> = all.into_iter().filter(|(_, name)| *name == v).collect();
            assert!(
                !picked.is_empty(),
                "MOTOR_PROGRESS={v:?} names no progress mode (use off|thread|steal)"
            );
            picked
        }
        _ => all,
    }
}

/// Per-channel late-post decisions, keyed by `(src, dst, tag)`.
type LateMap = HashMap<(usize, usize, i32), bool>;

/// A directed receive slot: `(recv rank, src, tag, buffer, expected)`.
type DirectedRecv = (usize, usize, i32, Vec<u8>, Vec<u8>);

/// One point-to-point transfer in the soup.
#[derive(Clone, Debug)]
struct Op {
    src: usize,
    dst: usize,
    tag: i32,
    payload: Vec<u8>,
}

/// Deterministic soup: random (src, dst, tag) channels with payload sizes
/// straddling the eager threshold, plus a per-channel decision whether the
/// receiver pre-posts or posts late. The decision is per *channel*, not
/// per op — posting part of a channel's receives late while earlier sends
/// already matched would still be FIFO, but sizing late buffers would need
/// lookahead; per-channel keeps the generator simple and the matching
/// exact.
fn gen_soup(rng: &mut SimRng, ranks: usize) -> (Vec<Op>, LateMap) {
    let mut ops = Vec::with_capacity(OPS);
    for i in 0..OPS {
        let src = rng.below(ranks as u64) as usize;
        let mut dst = rng.below(ranks as u64) as usize;
        if dst == src {
            dst = (dst + 1) % ranks;
        }
        let tag = rng.below(3) as i32;
        let len = if rng.chance(1, 2) {
            rng.range(1, EAGER_T as u64) as usize
        } else {
            rng.range(EAGER_T as u64 + 1, 600) as usize
        };
        ops.push(Op {
            src,
            dst,
            tag,
            payload: vec![(i % 251) as u8 + 1; len],
        });
    }
    let mut late = HashMap::new();
    for op in &ops {
        late.entry((op.src, op.dst, op.tag))
            .or_insert_with(|| rng.chance(1, 3));
    }
    (ops, late)
}

/// Run one soup under one progress mode; panics (via `net.fail` /
/// `net.complete`) on any starvation, mismatch, or doctor anomaly.
fn run_soup(seed: u64, ranks: usize, progress: ProgressConfig, mode: &str) {
    let mut gen_rng = SimRng::new(seed ^ 0x50F7_BEEF).fork();
    let (ops, late) = gen_soup(&mut gen_rng, ranks);

    let mut net = SimNet::new(
        seed,
        SimConfig {
            ranks,
            device: DeviceConfig {
                eager_threshold: EAGER_T,
                ..DeviceConfig::default()
            },
            schedule: Schedule::Random,
            plan: FaultPlan::trickle(5).with_latency(1),
            progress,
        },
    );

    let mut reqs: Vec<Request> = Vec::new();
    // Wildcard receives can match any sender's message, so every buffer
    // takes the maximum payload size; actual lengths come from the status.
    let mut bufs: Vec<(usize, Vec<u8>)> = Vec::new(); // (recv rank, buf)
    let mut recv_reqs: Vec<Request> = Vec::new();

    // All sends, in program order per rank.
    for op in &ops {
        // SAFETY: payloads live in `ops` until after `net.complete`.
        let r = unsafe {
            net.device(op.src)
                .isend_raw(
                    op.dst,
                    SimNet::envelope(op.src, op.tag),
                    op.payload.as_ptr(),
                    op.payload.len(),
                    false,
                )
                .unwrap()
        };
        reqs.push(r);
    }

    // Pre-posted channels receive now; late channels after a warm-up run
    // that lets eager data land unexpected and rendezvous RTS queue up.
    // One max-size wildcard receive is posted per op destined to a rank.
    for round in 0..2 {
        if round == 1 {
            net.run_until(30_000, || false).unwrap();
        }
        for op in &ops {
            if late[&(op.src, op.dst, op.tag)] != (round == 1) {
                continue;
            }
            bufs.push((op.dst, vec![0u8; 600]));
            let (rank, buf) = bufs.last_mut().unwrap();
            // SAFETY: `bufs` only grows (never reallocates element
            // payloads — each Vec<u8> heap block is stable) and lives
            // until after `net.complete`.
            let r = unsafe {
                net.device(*rank)
                    .irecv_raw(-1, -1, 0, buf.as_mut_ptr(), buf.len())
                    .unwrap()
            };
            recv_reqs.push(r.clone());
            reqs.push(r);
        }
    }

    net.complete(&reqs, STEP_BUDGET, "progress_property_soup");

    // Every byte landed somewhere: the received multiset equals the sent
    // multiset. (Wildcard receives make per-op equality too strong.)
    let mut sent: Vec<&[u8]> = ops.iter().map(|o| o.payload.as_slice()).collect();
    let mut got: Vec<&[u8]> = bufs
        .iter()
        .zip(&recv_reqs)
        .map(|((_, b), r)| &b[..r.status().count])
        .collect();
    sent.sort_unstable();
    got.sort_unstable();
    if sent != got {
        net.fail(
            "progress_property_soup",
            &format!(
                "mode {mode}: received multiset != sent multiset (seed {seed}, ranks {ranks})"
            ),
        );
    }

    // The doctor, fed real registry state, sees a healthy finished run.
    let health: Vec<RankHealth> = (0..ranks)
        .map(|d| {
            let dev = net.device(d);
            let m = dev.metrics();
            RankHealth {
                rank: d,
                label: format!("rank {d}"),
                done: true,
                now_nanos: m.now_nanos(),
                last_progress_nanos: m.last_progress_nanos(),
                inflight: m.inflight_ops(),
                queue_depths: dev.queue_depths(),
                hard_pins: 0,
                cond_pins: 0,
                oldest_pin_nanos: 0,
                safepoint_stall_nanos: 0,
                window_nanos: 0,
                links_dropped: 0,
            }
        })
        .collect();
    let anomalies = classify(&health, &DoctorConfig::default());
    let bad: Vec<_> = anomalies
        .iter()
        .filter(|a| matches!(a.kind, AnomalyKind::Stall | AnomalyKind::DeadlockSuspect))
        .collect();
    assert!(
        bad.is_empty(),
        "mode {mode}: doctor anomalies after clean soup (seed {seed}, ranks {ranks}): {bad:?}"
    );
}

/// The property: for every frozen seed, rank count in {2, 3, 5}, and
/// progress mode, the same soup completes within the step budget with the
/// full payload multiset delivered and zero doctor stall anomalies.
#[test]
fn op_soups_complete_in_every_mode() {
    for seed in seed_matrix() {
        for ranks in [2usize, 3, 5] {
            for (progress, mode) in modes_under_test() {
                run_soup(seed, ranks, progress, mode);
            }
        }
    }
}

/// Wildcard-free variant pinning exact per-channel payload order: every
/// receive names its source and tag, so FIFO within a channel must map the
/// k-th send to the k-th receive byte-for-byte, in all three modes.
#[test]
fn directed_soups_preserve_channel_fifo_in_every_mode() {
    for seed in seed_matrix() {
        let ranks = 4usize;
        for (progress, mode) in modes_under_test() {
            let mut gen_rng = SimRng::new(seed ^ 0xD1C7_ED50).fork();
            let (ops, late) = gen_soup(&mut gen_rng, ranks);
            let mut net = SimNet::new(
                seed,
                SimConfig {
                    ranks,
                    device: DeviceConfig {
                        eager_threshold: EAGER_T,
                        ..DeviceConfig::default()
                    },
                    schedule: Schedule::Random,
                    plan: FaultPlan::trickle(5).with_latency(1),
                    progress,
                },
            );
            let mut reqs: Vec<Request> = Vec::new();
            for op in &ops {
                // SAFETY: payloads live in `ops` past `net.complete`.
                let r = unsafe {
                    net.device(op.src)
                        .isend_raw(
                            op.dst,
                            SimNet::envelope(op.src, op.tag),
                            op.payload.as_ptr(),
                            op.payload.len(),
                            false,
                        )
                        .unwrap()
                };
                reqs.push(r);
            }
            let mut bufs: Vec<DirectedRecv> = Vec::new();
            for round in 0..2 {
                if round == 1 {
                    net.run_until(30_000, || false).unwrap();
                }
                for op in &ops {
                    if late[&(op.src, op.dst, op.tag)] != (round == 1) {
                        continue;
                    }
                    bufs.push((
                        op.dst,
                        op.src,
                        op.tag,
                        vec![0u8; op.payload.len()],
                        op.payload.clone(),
                    ));
                }
            }
            for (rank, src, tag, buf, _) in bufs.iter_mut() {
                // SAFETY: `bufs` lives past `net.complete`.
                let r = unsafe {
                    net.device(*rank)
                        .irecv_raw(*src as i32, *tag, 0, buf.as_mut_ptr(), buf.len())
                        .unwrap()
                };
                reqs.push(r);
            }
            net.complete(&reqs, STEP_BUDGET, "progress_property_directed");
            for (i, (_, src, tag, buf, want)) in bufs.iter().enumerate() {
                if buf != want {
                    net.fail(
                        "progress_property_directed",
                        &format!(
                            "mode {mode}: channel ({src},{tag}) receive {i} mismatched \
                             (seed {seed})"
                        ),
                    );
                }
            }
        }
    }
}
