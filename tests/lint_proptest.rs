//! motor-lint soundness property: programs whose communication is
//! matched *by construction* — assembled from rounds that are each
//! internally balanced across every rank — must produce zero definite
//! diagnostics, whatever sequence of rounds, communicator size, tags
//! and payload sizes the generator picks.

use motor::analyze::{load_with, LintConfig, Severity};
use motor::interp::il::{FCallId, FnBuilder, Module, Op};
use motor::runtime::{ElemKind, TypeRegistry};
use proptest::prelude::*;

/// One balanced communication round.
#[derive(Debug, Clone, Copy)]
enum Round {
    /// Everyone sends to (rank+1) % size and receives from
    /// (rank-1+size) % size; payload below the eager threshold.
    RingShift { tag: i64, len: i64 },
    /// Everyone broadcasts from the same root.
    Bcast { root_of: u64 },
    /// Everyone arrives at a barrier.
    Barrier,
    /// Pairwise neighbor exchange (rank^1 partner via 2-rank groups):
    /// irecv posted first, so it is safe at any payload size.
    ExchangeIrecvFirst { tag: i64, len: i64 },
}

fn push_partner_next(f: &mut FnBuilder) {
    // (rank + 1) % size
    f.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Load(1))
        .op(Op::Rem);
}

fn push_partner_prev(f: &mut FnBuilder) {
    // (rank - 1 + size) % size
    f.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Sub)
        .op(Op::Load(1))
        .op(Op::Add)
        .op(Op::Load(1))
        .op(Op::Rem);
}

fn buf(f: &mut FnBuilder, len: i64) {
    f.op(Op::PushI(len)).op(Op::NewArr(ElemKind::F64));
}

/// Assemble `main(rank, size)` from the rounds. Local 2 holds the
/// in-flight request of an exchange round.
fn assemble(rounds: &[Round], ranks: usize) -> Module {
    let mut f = FnBuilder::new("main", 2, 3, false);
    for r in rounds {
        match *r {
            Round::RingShift { tag, len } => {
                buf(&mut f, len);
                push_partner_next(&mut f);
                f.op(Op::PushI(tag)).op(Op::FCall(FCallId::MpSend));
                buf(&mut f, len);
                push_partner_prev(&mut f);
                f.op(Op::PushI(tag)).op(Op::FCall(FCallId::MpRecv));
            }
            Round::Bcast { root_of } => {
                buf(&mut f, 8);
                f.op(Op::PushI((root_of % ranks as u64) as i64))
                    .op(Op::FCall(FCallId::MpBcast));
            }
            Round::Barrier => {
                f.op(Op::FCall(FCallId::MpBarrier));
            }
            Round::ExchangeIrecvFirst { tag, len } => {
                // Partner: rank^1 within pairs — even ranks pair with
                // rank+1, odd with rank-1. Expressed as
                // rank + 1 - 2*(rank % 2). Requires an even size.
                let push_pair_partner = |f: &mut FnBuilder| {
                    f.op(Op::Load(0))
                        .op(Op::PushI(1))
                        .op(Op::Add)
                        .op(Op::PushI(2))
                        .op(Op::Load(0))
                        .op(Op::PushI(2))
                        .op(Op::Rem)
                        .op(Op::Mul)
                        .op(Op::Sub);
                };
                buf(&mut f, len);
                push_pair_partner(&mut f);
                f.op(Op::PushI(tag))
                    .op(Op::FCall(FCallId::MpIrecv))
                    .op(Op::Store(2));
                buf(&mut f, len);
                push_pair_partner(&mut f);
                f.op(Op::PushI(tag)).op(Op::FCall(FCallId::MpSend));
                f.op(Op::Load(2)).op(Op::FCall(FCallId::MpWait));
            }
        }
    }
    f.op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matched_by_construction_programs_have_no_definite_errors(
        seeds in proptest::collection::vec(0u64..1_000_000, 1..12),
        size_sel in 0u64..2,
    ) {
        // Even communicator sizes so the pairwise exchange always has a
        // partner.
        let ranks = if size_sel == 0 { 2usize } else { 4usize };
        let rounds: Vec<Round> = seeds
            .iter()
            .map(|s| match s % 4 {
                0 => Round::RingShift {
                    tag: (s / 7 % 32) as i64,
                    len: (s / 11 % 512) as i64, // ≤ 4 KiB: always eager
                },
                1 => Round::Bcast { root_of: s / 5 },
                2 => Round::Barrier,
                _ => Round::ExchangeIrecvFirst {
                    tag: (s / 7 % 32) as i64,
                    // Up to 160 KiB: crosses the 64 KiB eager/rendezvous
                    // boundary in both directions.
                    len: (s / 3 % 20_000) as i64,
                },
            })
            .collect();
        let mut reg = TypeRegistry::new();
        reg.prim_array(ElemKind::F64);
        let cfg = LintConfig { ranks, ..LintConfig::default() };
        let (_, report) = load_with(assemble(&rounds, ranks), &reg, &cfg)
            .expect("generated modules verify");
        prop_assert!(report.comm_checked, "comm pass must run");
        let definite: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Definite)
            .collect();
        prop_assert!(
            definite.is_empty(),
            "balanced rounds {rounds:?} on {ranks} ranks produced {definite:?}"
        );
    }
}
