//! End-to-end pin-check elision: a module proved by motor-analyze to
//! never transport a class lets the minor collector skip the pinned-set
//! membership check for every young instance of that class, while a
//! plainly-verified module (no escape proof) keeps the conservative
//! path. The counters observable through `GcStatsSnapshot` (and the
//! doctor's Prometheus bridge) make the difference measurable.

use motor::interp::{FnBuilder, Interp, Module, Op, Value, VerifiedModule};
use motor::runtime::heap::HeapConfig;
use motor::runtime::{ClassId, ElemKind, MotorThread, Vm, VmConfig};
use std::sync::Arc;

/// `churn(n)`: allocate and drop `n` instances — enough garbage to
/// drive several minor collections through the tiny young generation.
fn churn_module(cls: ClassId) -> Module {
    let mut f = FnBuilder::new("churn", 1, 2, false);
    let top = f.label();
    let done = f.label();
    f.op(Op::PushI(0)).op(Op::Store(1));
    f.bind(top);
    f.op(Op::Load(1)).op(Op::Load(0)).op(Op::CmpLt);
    f.br_false(done);
    f.op(Op::New(cls)).op(Op::Pop);
    f.op(Op::Load(1))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Store(1));
    f.br(top);
    f.bind(done);
    f.op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    m
}

fn small_heap_vm() -> (Arc<Vm>, ClassId) {
    let vm = Vm::new(VmConfig {
        heap: HeapConfig {
            young_bytes: 16 * 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    let cls = vm
        .registry_mut()
        .define_class("Scratch")
        .prim("a", ElemKind::I64)
        .prim("b", ElemKind::F64)
        .build();
    (vm, cls)
}

#[test]
fn analyzed_module_elides_pin_checks() {
    let (vm, cls) = small_heap_vm();
    let verified = {
        let reg = vm.registry();
        motor::analyze::load(churn_module(cls), &reg).expect("module analyzes")
    };
    assert!(
        verified.never_transported().contains(&cls),
        "escape pass proves the scratch class is never transported"
    );
    let t = MotorThread::attach(Arc::clone(&vm));
    let interp = Interp::new(&t, &verified); // installs the proof bits
    interp.call(0, &[Value::I(2_000)]).expect("churn runs");
    let snap = vm.stats_snapshot();
    assert!(
        snap.minor_collections > 0,
        "the tiny young generation must have cycled: {snap:?}"
    );
    assert!(
        snap.pin_checks_elided > 0,
        "proven classes skip pinned-set checks: {snap:?}"
    );
}

#[test]
fn plainly_verified_module_keeps_conservative_checks() {
    let (vm, cls) = small_heap_vm();
    let verified = {
        let reg = vm.registry();
        VerifiedModule::verify(churn_module(cls), &reg).expect("module verifies")
    };
    assert!(verified.never_transported().is_empty());
    let t = MotorThread::attach(Arc::clone(&vm));
    let interp = Interp::new(&t, &verified);
    interp.call(0, &[Value::I(2_000)]).expect("churn runs");
    let snap = vm.stats_snapshot();
    assert!(snap.minor_collections > 0);
    assert_eq!(
        snap.pin_checks_elided, 0,
        "no proof installed, every object checked: {snap:?}"
    );
}

#[test]
fn raw_transported_class_is_never_claimed() {
    // A module that raw-sends its class must not receive the proof for
    // it, even though it also allocates instances.
    let (vm, _) = small_heap_vm();
    let (sent, reg_snapshot) = {
        let mut reg = vm.registry_mut();
        let sent = reg.define_class("SentBuf").prim("x", ElemKind::F64).build();
        (sent, reg.len())
    };
    let mut f = FnBuilder::new("sender", 0, 0, false);
    f.op(Op::New(sent))
        .op(Op::PushI(0))
        .op(Op::PushI(7))
        .op(Op::FCall(motor::interp::il::FCallId::MpSend))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    let verified = {
        let reg = vm.registry();
        motor::analyze::load(m, &reg).expect("analyzes")
    };
    assert!(!verified.never_transported().contains(&sent));
    assert!(reg_snapshot > 0);
}
