//! Progress-conformance suite: the asynchronous progress engine must add
//! *progress*, never *semantics*.
//!
//! Three families of guarantees, per ISSUE 10:
//!
//! * **(a) Autonomy** — with a progress thread per device, Isend/Irecv
//!   pairs complete while the owning rank threads do nothing but watch
//!   the completion flag: no `wait`, no `test`, no progress call ever.
//! * **(b) Semantics under faults** — with the engine on (`thread` and
//!   `steal` modes, emulated deterministically by `SimNet`), the MPI
//!   contracts still hold under trickle wires, stall windows and
//!   mid-message link death: non-overtaking per (source, tag, context),
//!   `ANY_SOURCE` FIFO per sender, clean `PeerClosed` instead of hangs.
//! * **(c) Legacy equivalence** — engine `off` IS the old code path:
//!   across the frozen seed matrix, a run with the default config and a
//!   run with progress explicitly `off` produce identical schedule
//!   fingerprints (steps, virtual clock, protocol counters), twice over.
//!
//! Plus the backoff-ladder fix pin: a waiter parked in the sleep tier is
//! woken by the engine's completion notification, not the sleep timer —
//! the test sets a quantum so large that regressing to timer wakeups
//! fails the run wholesale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use motor::mpc::device::DeviceConfig;
use motor::mpc::universe::{Universe, UniverseConfig};
use motor::mpc::{MpcError, ProgressConfig, ProgressMode};
use motor::obs::Metric;
use motor::pal::TickSource;
use motor_sim::{seed_matrix, FaultPlan, Schedule, SimConfig, SimNet};

/// Threshold small enough that both protocols appear in mixed workloads.
const EAGER_T: usize = 64;

fn sim_config(
    ranks: usize,
    plan: FaultPlan,
    schedule: Schedule,
    progress: ProgressConfig,
) -> SimConfig {
    SimConfig {
        ranks,
        device: DeviceConfig {
            eager_threshold: EAGER_T,
            ..DeviceConfig::default()
        },
        schedule,
        plan,
        progress,
    }
}

/// The engine modes under test, with their display names. `MOTOR_PROGRESS`
/// narrows the matrix to one engine mode so CI can run (and attribute
/// failures to) `thread` and `steal` as separate jobs; unset runs both.
fn engine_modes() -> Vec<(ProgressConfig, &'static str)> {
    let all = vec![
        (ProgressConfig::thread(), "thread"),
        (ProgressConfig::steal(), "steal"),
    ];
    match std::env::var("MOTOR_PROGRESS") {
        Ok(v) if !v.trim().is_empty() => {
            let v = v.trim().to_ascii_lowercase();
            let picked: Vec<_> = all.into_iter().filter(|(_, name)| **name == v).collect();
            assert!(
                !picked.is_empty(),
                "MOTOR_PROGRESS={v:?} names no engine mode (use thread|steal, or unset for both)"
            );
            picked
        }
        _ => all,
    }
}

/// Device-level isend on the fabric (test buffers outlive the drive loop).
fn send(net: &SimNet, from: usize, to: usize, tag: i32, data: &[u8]) -> motor::mpc::Request {
    // SAFETY: every caller keeps `data` alive until the request completes.
    unsafe {
        net.device(from)
            .isend_raw(
                to,
                SimNet::envelope(from, tag),
                data.as_ptr(),
                data.len(),
                false,
            )
            .unwrap()
    }
}

/// Device-level irecv on the fabric.
fn recv(net: &SimNet, at: usize, src: i32, tag: i32, buf: &mut [u8]) -> motor::mpc::Request {
    // SAFETY: as in `send`.
    unsafe {
        net.device(at)
            .irecv_raw(src, tag, 0, buf.as_mut_ptr(), buf.len())
            .unwrap()
    }
}

// ----------------------------------------------------------------------
// (a) Autonomy: the engine completes operations the ranks never drive.
// ----------------------------------------------------------------------

/// 4-rank ring exchange over the real threaded stack with a progress
/// thread per device. After posting, each rank only *watches* its
/// requests — no wait, no test, no progress — so every byte that arrives
/// was moved by an engine thread.
#[test]
fn isend_irecv_complete_without_owner_entering_wait() {
    const N: usize = 4;
    const LEN: usize = 32 * 1024; // eager at the default threshold
    let cfg = UniverseConfig {
        progress: ProgressConfig::thread(),
        ..UniverseConfig::default()
    };
    let engine_completions = AtomicU64::new(0);
    let posted = std::sync::Barrier::new(N);
    Universe::run_with(N, cfg, |proc| {
        let world = proc.world();
        let me = world.rank();
        let to = (me + 1) % N;
        let from = (me + N - 1) % N;
        let data = vec![me as u8 + 1; LEN];
        let mut buf = vec![0u8; LEN];
        // SAFETY: data/buf live to the end of this closure, past both
        // completion spins below.
        let r = unsafe { world.irecv_ptr(buf.as_mut_ptr(), buf.len(), from, 7) }.unwrap();
        // Posting runs one inline progress pass on the owner (not an
        // engine poll), so a receive whose data is already in the ring at
        // post time would be completed by the *rank* thread — on a loaded
        // single-core host that can very occasionally absorb every eager
        // receive and starve the `ProgressOpsCompleted` assertion below.
        // The barrier plus rank 0's delayed send pin the order: rank 1
        // finishes all of its posts before rank 0's payload can exist on
        // the wire, so rank 1's receive is completable only by an engine
        // poll, deterministically.
        posted.wait();
        if me == 0 {
            std::thread::sleep(Duration::from_millis(250));
        }
        let s = unsafe { world.isend_ptr(data.as_ptr(), data.len(), to, 7) }.unwrap();
        // The owning rank never enters wait: it sleeps and watches. Only
        // the progress threads can finish these.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !(s.is_complete() && r.is_complete()) {
            assert!(
                Instant::now() < deadline,
                "rank {me}: progress threads did not complete the exchange"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(buf, vec![from as u8 + 1; LEN], "payload from rank {from}");
        engine_completions.fetch_add(
            proc.device()
                .metrics()
                .snapshot()
                .get(Metric::ProgressOpsCompleted),
            Ordering::Relaxed,
        );
    })
    .unwrap();
    assert!(
        engine_completions.load(Ordering::Relaxed) > 0,
        "engine polls completed requests (the ranks never drove progress)"
    );
}

/// Same autonomy through the rendezvous protocol: the engine must carry
/// the full RTS → CTS → data → done conversation on both ends.
#[test]
fn rendezvous_completes_without_owner_entering_wait() {
    let cfg = UniverseConfig {
        device: DeviceConfig {
            eager_threshold: EAGER_T,
            ..DeviceConfig::default()
        },
        progress: ProgressConfig::thread(),
        ..UniverseConfig::default()
    };
    Universe::run_with(2, cfg, |proc| {
        let world = proc.world();
        let n = 100_000usize;
        if world.rank() == 0 {
            let data: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
            // SAFETY: data lives past the completion spin.
            let s = unsafe { world.isend_ptr(data.as_ptr(), n, 1, 3) }.unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            while !s.is_complete() {
                assert!(Instant::now() < deadline, "rendezvous send starved");
                std::thread::sleep(Duration::from_millis(1));
            }
        } else {
            let mut buf = vec![0u8; n];
            // SAFETY: buf lives past the completion spin.
            let r = unsafe { world.irecv_ptr(buf.as_mut_ptr(), n, 0, 3) }.unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            while !r.is_complete() {
                assert!(Instant::now() < deadline, "rendezvous recv starved");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 239) as u8));
        }
    })
    .unwrap();
}

// ----------------------------------------------------------------------
// (b) Semantics with the engine on, under fault plans.
// ----------------------------------------------------------------------

/// Non-overtaking per (source, tag, context) with eager and rendezvous
/// interleaved, under a trickle+latency wire with stall windows — in both
/// engine modes, across the seed matrix.
#[test]
fn non_overtaking_holds_with_engine_on() {
    let sizes = [16usize, 200, 8, 300, 1, EAGER_T, EAGER_T + 1, 500, 32, 100];
    for (progress, mode) in engine_modes() {
        for seed in seed_matrix() {
            let mut net = SimNet::new(
                seed,
                sim_config(
                    2,
                    FaultPlan::trickle(3).with_latency(1).with_stall(64),
                    Schedule::Random,
                    progress,
                ),
            );
            let payloads: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &sz)| vec![i as u8 + 1; sz])
                .collect();
            let mut bufs: Vec<Vec<u8>> = sizes.iter().map(|&sz| vec![0u8; sz]).collect();
            let mut reqs = Vec::new();
            for p in &payloads {
                reqs.push(send(&net, 0, 1, 7, p));
            }
            // Alternate pre-posted and late-posted receives by seed.
            if seed % 2 == 1 {
                net.run_until(20_000, || false).unwrap();
            }
            for b in &mut bufs {
                reqs.push(recv(&net, 1, 0, 7, b));
            }
            net.complete(&reqs, 3_000_000, "non_overtaking_holds_with_engine_on");
            for (i, (buf, want)) in bufs.iter().zip(&payloads).enumerate() {
                if buf != want {
                    net.fail(
                        "non_overtaking_holds_with_engine_on",
                        &format!("mode {mode}: message {i} overtaken or corrupted"),
                    );
                }
            }
        }
    }
}

/// `ANY_SOURCE` receives drain every sender and stay FIFO per sender with
/// the engine on, in both modes, across the seed matrix.
#[test]
fn any_source_fifo_holds_with_engine_on() {
    const PER_SENDER: usize = 3;
    for (progress, mode) in engine_modes() {
        for seed in seed_matrix() {
            let mut net = SimNet::new(
                seed,
                sim_config(4, FaultPlan::trickle(2), Schedule::Random, progress),
            );
            let payloads: Vec<(usize, Vec<u8>)> = (1..4)
                .flat_map(|r| (0..PER_SENDER).map(move |j| (r, vec![(10 * r + j) as u8; 8])))
                .collect();
            let mut bufs = vec![[0u8; 8]; payloads.len()];
            let mut reqs = Vec::new();
            for (r, p) in &payloads {
                reqs.push(send(&net, *r, 0, 5, p));
            }
            if seed % 2 == 1 {
                net.run_until(20_000, || false).unwrap();
            }
            for b in &mut bufs {
                reqs.push(recv(&net, 0, -1, 5, b));
            }
            net.complete(&reqs, 3_000_000, "any_source_fifo_holds_with_engine_on");

            let got: Vec<u8> = bufs.iter().map(|b| b[0]).collect();
            let mut sorted = got.clone();
            sorted.sort_unstable();
            let mut want: Vec<u8> = payloads.iter().map(|(_, p)| p[0]).collect();
            want.sort_unstable();
            if sorted != want {
                net.fail(
                    "any_source_fifo_holds_with_engine_on",
                    &format!("mode {mode}: wildcards did not drain the sent multiset"),
                );
            }
            for r in 1..4u8 {
                let js: Vec<u8> = got
                    .iter()
                    .filter(|&&b| b / 10 == r)
                    .map(|&b| b % 10)
                    .collect();
                if !js.windows(2).all(|w| w[0] < w[1]) {
                    net.fail(
                        "any_source_fifo_holds_with_engine_on",
                        &format!("mode {mode}: messages from rank {r} reordered: {js:?}"),
                    );
                }
            }
        }
    }
}

/// Mid-message link death with the engine on still surfaces a clean
/// `PeerClosed` within the budget — the engine's extra pump passes must
/// not mask or mangle the failure path.
#[test]
fn mid_message_death_fails_cleanly_with_engine_on() {
    for (progress, mode) in engine_modes() {
        for seed in seed_matrix() {
            let mut net = SimNet::new(
                seed,
                sim_config(
                    2,
                    FaultPlan::trickle(8).with_close_after(700),
                    Schedule::Random,
                    progress,
                ),
            );
            let data = vec![0x5Au8; 5000];
            let mut buf = vec![0u8; 5000];
            let s = send(&net, 0, 1, 2, &data);
            let r = recv(&net, 1, 0, 2, &mut buf);
            let failed = net
                .run_until(1_000_000, || {
                    s.failed_peer().is_some() || r.failed_peer().is_some()
                })
                .unwrap();
            if !failed {
                net.fail(
                    "mid_message_death_fails_cleanly_with_engine_on",
                    &format!("mode {mode}: link fuse blew but no request failed"),
                );
            }
            let who = if s.failed_peer().is_some() {
                (&s, 0)
            } else {
                (&r, 1)
            };
            match net.device(who.1).wait_with(who.0, || {}) {
                Err(MpcError::PeerClosed(_)) => {}
                other => panic!("mode {mode}: expected PeerClosed, got {other:?} (seed {seed})"),
            }
            let dropped: u64 = (0..2)
                .map(|d| net.device(d).metrics().snapshot().get(Metric::LinksDropped))
                .sum();
            assert!(dropped >= 1, "mode {mode}: LinksDropped (seed {seed})");
        }
    }
}

// ----------------------------------------------------------------------
// (c) Engine off == legacy, bit-for-bit on the frozen seed matrix.
// ----------------------------------------------------------------------

/// Schedule fingerprint of one mixed eager/rendezvous workload.
fn off_mode_fingerprint(seed: u64, progress: ProgressConfig) -> (u64, u64, Vec<u64>) {
    assert_eq!(progress.mode, ProgressMode::Off);
    let mut net = SimNet::new(
        seed,
        sim_config(
            3,
            FaultPlan::trickle(4).with_latency(2).with_stall(32),
            Schedule::Random,
            progress,
        ),
    );
    let small = vec![0x11u8; 32];
    let large = vec![0x22u8; 900];
    let mut b0 = vec![0u8; 32];
    let mut b1 = vec![0u8; 900];
    let mut b2 = vec![0u8; 32];
    let reqs = vec![
        send(&net, 0, 2, 1, &small),
        send(&net, 1, 2, 1, &large),
        send(&net, 2, 0, 4, &small),
        recv(&net, 2, 0, 1, &mut b0),
        recv(&net, 2, 1, 1, &mut b1),
        recv(&net, 0, 2, 4, &mut b2),
    ];
    net.complete(&reqs, 3_000_000, "engine_off_is_bit_for_bit_legacy");
    let mut counters = Vec::new();
    for d in net.devices() {
        let snap = d.metrics().snapshot();
        for m in [
            Metric::ProgressPolls,
            Metric::MatchAttempts,
            Metric::SendsEager,
            Metric::SendsRndv,
            Metric::RndvCtsIn,
            Metric::RndvDone,
            Metric::ProgressOpsCompleted,
            Metric::ProgressSteals,
        ] {
            counters.push(snap.get(m));
        }
    }
    (net.steps(), net.clock().now_ticks(), counters)
}

/// Mode `off` takes the exact legacy code path: a default config and an
/// explicit `off` config replay the same seed to the same step count,
/// virtual-clock time and counter values — and repeat runs are identical,
/// so the fingerprint really is a function of the seed alone. The engine
/// counters must stay at zero: off means off.
#[test]
fn engine_off_is_bit_for_bit_legacy() {
    for seed in seed_matrix() {
        let default_run = off_mode_fingerprint(seed, ProgressConfig::default());
        let explicit_off = off_mode_fingerprint(seed, ProgressConfig::off());
        let replay = off_mode_fingerprint(seed, ProgressConfig::default());
        assert_eq!(
            default_run, explicit_off,
            "default vs explicit off diverged (seed {seed})"
        );
        assert_eq!(default_run, replay, "replay diverged (seed {seed})");
        // No engine fingerprints in off mode.
        let per_dev = 8;
        for (i, chunk) in default_run.2.chunks(per_dev).enumerate() {
            assert_eq!(chunk[6], 0, "rank {i}: ProgressOpsCompleted in off mode");
            assert_eq!(chunk[7], 0, "rank {i}: ProgressSteals in off mode");
        }
    }
}

// ----------------------------------------------------------------------
// Backoff-ladder fix: completion notification beats the sleep timer.
// ----------------------------------------------------------------------

/// A rank blocked in `wait` whose backoff reached the sleep tier must be
/// woken by the progress engine's completion notification. The sleep
/// quantum is set to an hour: if the wait ever falls back to waiting out
/// the timer — the PR 5 latency bug this pins — the run blows the
/// 60-second bound instead of shipping a silently slow CTS.
#[test]
fn parked_sleep_tier_is_woken_by_completion_not_timer() {
    let cfg = UniverseConfig {
        device: DeviceConfig {
            eager_threshold: EAGER_T,
            wait_backoff: motor::pal::BackoffConfig {
                spin_limit: 2,
                yield_limit: 2,
                sleep: Some(Duration::from_secs(3600)),
            },
            ..DeviceConfig::default()
        },
        progress: ProgressConfig::thread(),
        ..UniverseConfig::default()
    };
    let start = Instant::now();
    Universe::run_with(2, cfg, |proc| {
        let world = proc.world();
        let n = 50_000usize; // rendezvous: RTS → CTS → data → done
        if world.rank() == 0 {
            // Sender posts immediately and blocks; its ladder hits the
            // sleep tier while the receiver is still "computing".
            world.send_bytes(&vec![0xEEu8; n], 1, 9).unwrap();
        } else {
            std::thread::sleep(Duration::from_millis(100));
            let mut buf = vec![0u8; n];
            world.recv_bytes(&mut buf, 0, 9).unwrap();
            assert_eq!(buf, vec![0xEEu8; n]);
        }
    })
    .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "a parked waiter burned its sleep quantum instead of being woken \
         (elapsed {:?})",
        start.elapsed()
    );
}
