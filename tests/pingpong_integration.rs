//! Cross-crate integration: Motor ping-pong over both channels, the
//! pinning policy under live GC, and the failure injection that shows what
//! the policy prevents.

use std::sync::Arc;

use motor::core::cluster::{run_cluster, run_cluster_default, ClusterConfig};
use motor::core::PinPolicy;
use motor::mpc::universe::{ChannelKind, UniverseConfig};
use motor::runtime::heap::HeapConfig;
use motor::runtime::{ElemKind, VmConfig};
use parking_lot::Mutex;

#[test]
fn motor_pingpong_over_shm() {
    run_cluster_default(
        2,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::I64, 256);
            for round in 0..20i64 {
                if mp.rank() == 0 {
                    let data: Vec<i64> = (0..256).map(|i| i * round).collect();
                    t.prim_write(buf, 0, &data);
                    mp.send(buf, 1, round as i32).unwrap();
                    mp.recv(buf, 1, round as i32).unwrap();
                    let mut back = vec![0i64; 256];
                    t.prim_read(buf, 0, &mut back);
                    assert!(back
                        .iter()
                        .enumerate()
                        .all(|(i, &v)| v == i as i64 * round + 1));
                } else {
                    mp.recv(buf, 0, round as i32).unwrap();
                    let mut data = vec![0i64; 256];
                    t.prim_read(buf, 0, &mut data);
                    for v in data.iter_mut() {
                        *v += 1;
                    }
                    t.prim_write(buf, 0, &data);
                    mp.send(buf, 0, round as i32).unwrap();
                }
            }
        },
    )
    .unwrap();
}

#[test]
fn motor_pingpong_over_tcp() {
    let config = ClusterConfig {
        ranks: 2,
        universe: UniverseConfig {
            channel: ChannelKind::Tcp,
            ..Default::default()
        },
        ..Default::default()
    };
    run_cluster(
        config,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            // Bigger than the eager threshold: exercises rendezvous over a
            // real kernel socket with a managed (pinnable) buffer.
            let n = 100_000;
            let buf = t.alloc_prim_array(ElemKind::U8, n);
            if mp.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                t.prim_write(buf, 0, &data);
                mp.send(buf, 1, 0).unwrap();
            } else {
                let st = mp.recv(buf, 0, 0).unwrap();
                assert_eq!(st.bytes, n);
                let mut got = vec![0u8; n];
                t.prim_read(buf, 0, &mut got);
                assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
            }
        },
    )
    .unwrap();
}

#[test]
fn nonblocking_transfer_survives_gc_via_conditional_pin() {
    // Rank 1 posts an irecv, then forces collections while the message is
    // still in flight. The conditional pin must keep the buffer alive and
    // unmoved until the data lands.
    let config = ClusterConfig {
        ranks: 2,
        vm: VmConfig {
            heap: HeapConfig {
                young_bytes: 16 * 1024,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    run_cluster(
        config,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            if mp.rank() == 0 {
                // Wait until rank 1 says it has posted and collected.
                let sync = t.alloc_prim_array(ElemKind::U8, 1);
                mp.recv(sync, 1, 9).unwrap();
                let data = t.alloc_prim_array(ElemKind::U8, 512);
                t.prim_write(data, 0, &[0xABu8; 512]);
                mp.send(data, 1, 0).unwrap();
            } else {
                let buf = t.alloc_prim_array(ElemKind::U8, 512);
                assert!(t.is_young(buf));
                let mut req = mp.irecv(buf, 0, 0).unwrap();
                // Collect while the receive is outstanding: the object is
                // young, so only the conditional pin protects it.
                let addr_before = proc.vm().handle_addr(buf);
                t.collect_minor();
                assert_eq!(
                    proc.vm().handle_addr(buf),
                    addr_before,
                    "conditional pin held the buffer in place"
                );
                // Tell rank 0 to fire.
                let sync = t.alloc_prim_array(ElemKind::U8, 1);
                mp.send(sync, 0, 9).unwrap();
                let st = mp.wait(&mut req).unwrap();
                assert_eq!(st.bytes, 512);
                let mut got = vec![0u8; 512];
                t.prim_read(buf, 0, &mut got);
                assert_eq!(got, vec![0xABu8; 512]);
                // After completion, the next collection releases the pin
                // and the (now unpinned) young object may move.
                t.collect_minor();
                let snap = proc.vm().stats_snapshot();
                assert!(snap.conditional_pins_held >= 1);
                assert!(snap.conditional_pins_released >= 1);
            }
        },
    )
    .unwrap();
}

#[test]
fn failure_injection_disabled_pinning_corrupts_unpinned_transfer() {
    // The §2.3 hazard demonstrated: with the pinning policy disabled, a
    // collection moves the posted buffer mid-operation and the transport
    // writes into the stale location. With the Motor policy the same
    // sequence delivers correctly. (The stale write lands in the recycled
    // young segment, which this rank leaves untouched — the corruption is
    // logical, not memory-unsafe, by construction of the test.)
    for policy in [PinPolicy::Motor, PinPolicy::Disabled] {
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        let config = ClusterConfig {
            ranks: 2,
            vm: VmConfig {
                heap: HeapConfig {
                    young_bytes: 16 * 1024,
                    ..Default::default()
                },
                ..Default::default()
            },
            policy,
            ..Default::default()
        };
        run_cluster(
            config,
            |_| {},
            move |proc| {
                let mp = proc.mp();
                let t = proc.thread();
                if mp.rank() == 0 {
                    let sync = t.alloc_prim_array(ElemKind::U8, 1);
                    mp.recv(sync, 1, 9).unwrap();
                    let data = t.alloc_prim_array(ElemKind::U8, 256);
                    t.prim_write(data, 0, &[0x77u8; 256]);
                    mp.send(data, 1, 0).unwrap();
                } else {
                    let buf = t.alloc_prim_array(ElemKind::U8, 256);
                    assert!(t.is_young(buf));
                    let mut req = mp.irecv(buf, 0, 0).unwrap();
                    // GC while in flight.
                    t.collect_minor();
                    let sync = t.alloc_prim_array(ElemKind::U8, 1);
                    mp.send(sync, 0, 9).unwrap();
                    mp.wait(&mut req).unwrap();
                    let mut out = vec![0u8; 256];
                    t.prim_read(buf, 0, &mut out);
                    g.lock().push(out);
                }
            },
        )
        .unwrap();
        let results = got.lock();
        let out = &results[0];
        match policy {
            PinPolicy::Motor => {
                assert_eq!(out, &vec![0x77u8; 256], "policy protects the transfer");
            }
            PinPolicy::Disabled => {
                assert_ne!(
                    out,
                    &vec![0x77u8; 256],
                    "without pinning the moved buffer must miss the data"
                );
            }
            PinPolicy::Always => unreachable!("not exercised here"),
        }
    }
}

#[test]
fn isend_buffer_protected_while_in_flight() {
    // Sender-side: a rendezvous isend keeps its (young) buffer pinned via
    // the request-status condition even across collections.
    let config = ClusterConfig {
        ranks: 2,
        vm: VmConfig {
            heap: HeapConfig {
                // Big young generation so a 100 KiB buffer stays young
                // (below the large-object threshold).
                young_bytes: 512 * 1024,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    run_cluster(
        config,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let n = 100_000; // > eager threshold: rendezvous
            if mp.rank() == 0 {
                let buf = t.alloc_prim_array(ElemKind::U8, n);
                assert!(t.is_young(buf), "buffer must be young for the test to bite");
                let data: Vec<u8> = (0..n).map(|i| (i % 127) as u8).collect();
                t.prim_write(buf, 0, &data);
                let mut req = mp.isend(buf, 1, 0).unwrap();
                // Collect while the rendezvous is pending (no CTS yet —
                // the receiver hasn't posted).
                t.collect_minor();
                // Now let the receiver post.
                let sync = t.alloc_prim_array(ElemKind::U8, 1);
                mp.send(sync, 1, 9).unwrap();
                mp.wait(&mut req).unwrap();
            } else {
                let sync = t.alloc_prim_array(ElemKind::U8, 1);
                mp.recv(sync, 0, 9).unwrap();
                let buf = t.alloc_prim_array(ElemKind::U8, n);
                mp.recv(buf, 0, 0).unwrap();
                let mut got = vec![0u8; n];
                t.prim_read(buf, 0, &mut got);
                assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 127) as u8));
            }
        },
    )
    .unwrap();
}

#[test]
fn pinning_policy_skips_elder_buffers_entirely() {
    run_cluster_default(
        2,
        |_| {},
        |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, 64);
            t.collect_minor(); // promote
            assert!(!t.is_young(buf));
            for _ in 0..10 {
                if mp.rank() == 0 {
                    mp.send(buf, 1, 0).unwrap();
                    mp.recv(buf, 1, 0).unwrap();
                } else {
                    mp.recv(buf, 0, 0).unwrap();
                    mp.send(buf, 0, 0).unwrap();
                }
            }
            let snap = proc.vm().stats_snapshot();
            assert_eq!(snap.pins, 0, "elder residents never pin (paper §7.4)");
        },
    )
    .unwrap();
}
