//! Integration: MPI-2 dynamic process management at the Motor level —
//! parents spawn child VMs at runtime and exchange object trees over the
//! intercommunicator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use motor::core::cluster::{run_cluster_default, spawn_motor_children, ClusterConfig};
use motor::runtime::ElemKind;

fn define_types(reg: &mut motor::runtime::TypeRegistry) {
    let arr = reg.prim_array(ElemKind::I32);
    reg.define_class("Packet")
        .prim("from_child", ElemKind::I32)
        .transportable("payload", arr)
        .build();
}

#[test]
fn spawned_children_have_worlds_and_parents() {
    let children_ran = Arc::new(AtomicUsize::new(0));
    let cr = Arc::clone(&children_ran);
    run_cluster_default(2, define_types, move |proc| {
        let cr = Arc::clone(&cr);
        let inter = spawn_motor_children(
            proc,
            2,
            ClusterConfig::default(),
            define_types,
            move |child| {
                // A complete Motor world of its own.
                assert_eq!(child.size(), 2);
                let parent = child.parent_comm().expect("parent intercomm");
                assert_eq!(parent.remote_size(), 2);
                // Barrier within the child world works.
                child.mp().barrier().unwrap();
                cr.fetch_add(1, Ordering::SeqCst);
                // Report to parent of the same index.
                let t = child.thread();
                let cls = child.vm().registry().by_name("Packet").unwrap();
                let (ff, fp) = (
                    t.field_index(cls, "from_child"),
                    t.field_index(cls, "payload"),
                );
                let pkt = t.alloc_instance(cls);
                t.set_prim::<i32>(pkt, ff, child.rank() as i32);
                let data = t.alloc_prim_array(ElemKind::I32, 4);
                t.prim_write(data, 0, &[child.rank() as i32; 4]);
                t.set_ref(pkt, fp, data);
                child.osend_inter(parent, pkt, child.rank(), 3).unwrap();
            },
        )
        .unwrap();
        // Each parent hears from the child with its own index.
        let t = proc.thread();
        let cls = proc.vm().registry().by_name("Packet").unwrap();
        let (ff, fp) = (
            t.field_index(cls, "from_child"),
            t.field_index(cls, "payload"),
        );
        let (pkt, from) = proc.orecv_inter(&inter, proc.rank(), 3).unwrap();
        assert_eq!(from, proc.rank());
        assert_eq!(t.get_prim::<i32>(pkt, ff) as usize, proc.rank());
        let data = t.get_ref(pkt, fp);
        let mut v = [0i32; 4];
        t.prim_read(data, 0, &mut v);
        assert_eq!(v, [proc.rank() as i32; 4]);
    })
    .unwrap();
    assert_eq!(children_ran.load(Ordering::SeqCst), 2);
}

#[test]
fn children_vms_are_isolated_heaps() {
    // Each spawned VM has its own collector and statistics; churn in a
    // child must not show up in the parent's counters.
    run_cluster_default(1, define_types, |proc| {
        let parent_minor_before = proc.vm().stats_snapshot().minor_collections;
        let inter =
            spawn_motor_children(proc, 1, ClusterConfig::default(), define_types, |child| {
                let t = child.thread();
                for _ in 0..2000 {
                    let h = t.alloc_prim_array(ElemKind::U8, 512);
                    t.release(h);
                }
                assert!(
                    child.vm().stats_snapshot().minor_collections > 0,
                    "child churn must collect in the child VM"
                );
                let parent = child.parent_comm().unwrap();
                parent.send_bytes(&[1u8], 0, 0).unwrap();
            })
            .unwrap();
        let mut done = [0u8; 1];
        inter.recv_bytes(&mut done, 0, 0).unwrap();
        assert_eq!(
            proc.vm().stats_snapshot().minor_collections,
            parent_minor_before,
            "parent VM unaffected by child allocations"
        );
    })
    .unwrap();
}
