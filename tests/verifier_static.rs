//! Static verification pipeline: negative-case table for the typed
//! verifier, transport-safety rejections from `motor-analyze`, a property
//! test showing accepted modules never hit type-confusion traps, and an
//! end-to-end cluster run where a proved module messages with the dynamic
//! transport checks elided.

use motor::analyze::AnalyzeError;
use motor::interp::il::FCallId;
use motor::interp::{FnBuilder, Interp, Module, Op, TrapKind, TyDesc, Value, VerifyError};
use motor::prelude::*;
use motor::runtime::heap::HeapConfig;
use motor::runtime::{ElemKind, TypeRegistry, Vm, VmConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn module_of(f: motor::interp::il::Function) -> Module {
    let mut m = Module::new();
    m.add(f);
    m
}

fn analyze(m: Module, reg: &TypeRegistry) -> Result<(), AnalyzeError> {
    motor::analyze::load(m, reg).map(|_| ())
}

/// Registry shared by the negative-case table: one mixed-field class, a
/// ref-bearing class, and the array types the bodies allocate.
fn table_registry() -> (TypeRegistry, ClassId, ClassId) {
    let mut reg = TypeRegistry::new();
    let mixed = reg
        .define_class("Mixed")
        .prim("i", ElemKind::I64)
        .prim("f", ElemKind::F64)
        .build();
    let arr = reg.prim_array(ElemKind::I64);
    reg.prim_array(ElemKind::F64);
    let holder = reg
        .define_class("Holder")
        .transportable("data", arr)
        .build();
    reg.obj_array(mixed);
    (reg, mixed, holder)
}

/// One type-confusion case per operand family. Every body would
/// reinterpret bits (or worse) if it ran; the verifier must reject each
/// one with a `TypeError` before it can.
#[test]
fn type_confusion_rejected_per_op_family() {
    let (reg, mixed, _) = table_registry();
    type Body = Box<dyn Fn(&mut FnBuilder)>;
    let cases: Vec<(&str, Body)> = vec![
        (
            "int arith on float",
            Box::new(|f| {
                f.op(Op::PushF(1.5))
                    .op(Op::PushI(2))
                    .op(Op::Add)
                    .op(Op::Pop);
            }),
        ),
        (
            "float arith on int",
            Box::new(|f| {
                f.op(Op::PushI(1)).op(Op::PushI(2)).op(Op::FMul).op(Op::Pop);
            }),
        ),
        (
            "branch on float",
            Box::new(|f| {
                f.op(Op::PushF(0.0)).op(Op::BrTrue(0));
            }),
        ),
        (
            "float store into int field",
            Box::new(move |f| {
                f.op(Op::New(mixed)).op(Op::PushF(3.0)).op(Op::StFldI(0));
            }),
        ),
        (
            "float load from int field",
            Box::new(move |f| {
                f.op(Op::New(mixed)).op(Op::LdFldF(0)).op(Op::Pop);
            }),
        ),
        (
            "ref load from prim field",
            Box::new(move |f| {
                f.op(Op::New(mixed)).op(Op::LdFldR(0)).op(Op::Pop);
            }),
        ),
        (
            "float load from int array",
            Box::new(|f| {
                f.op(Op::PushI(4))
                    .op(Op::NewArr(ElemKind::I64))
                    .op(Op::PushI(0))
                    .op(Op::LdElemF)
                    .op(Op::Pop);
            }),
        ),
        (
            "int store into float array",
            Box::new(|f| {
                f.op(Op::PushI(4))
                    .op(Op::NewArr(ElemKind::F64))
                    .op(Op::PushI(0))
                    .op(Op::PushI(7))
                    .op(Op::StElemI);
            }),
        ),
        (
            "object used as array",
            Box::new(move |f| {
                f.op(Op::New(mixed)).op(Op::ArrLen).op(Op::Pop);
            }),
        ),
        (
            "int used as object",
            Box::new(|f| {
                f.op(Op::PushI(42)).op(Op::LdFldI(0)).op(Op::Pop);
            }),
        ),
    ];
    for (name, body) in cases {
        let mut f = FnBuilder::new("case", 0, 1, false);
        body(&mut f);
        f.op(Op::Ret);
        let err = analyze(module_of(f.build()), &reg)
            .expect_err(&format!("case `{name}` must be rejected"));
        assert!(
            matches!(err, AnalyzeError::Verify(VerifyError::TypeError { .. })),
            "case `{name}` expected a TypeError, got: {err}"
        );
    }
}

#[test]
fn call_with_wrong_argument_type_rejected() {
    let (reg, _, _) = table_registry();
    let mut callee = FnBuilder::new("takes_float", 1, 1, true);
    callee.params(&[TyDesc::F64]).ret_ty(TyDesc::F64);
    callee.op(Op::Load(0)).op(Op::Ret);
    let mut caller = FnBuilder::new("caller", 0, 0, false);
    caller
        .op(Op::PushI(1))
        .op(Op::Call(0))
        .op(Op::Pop)
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(callee.build());
    m.add(caller.build());
    assert!(matches!(
        analyze(m, &reg),
        Err(AnalyzeError::Verify(VerifyError::TypeError { .. }))
    ));
}

#[test]
fn return_type_mismatch_rejected() {
    let (reg, _, _) = table_registry();
    let mut f = FnBuilder::new("lies", 0, 0, true);
    f.op(Op::PushF(1.0)).op(Op::Ret); // declared ret defaults to I64
    assert!(matches!(
        analyze(module_of(f.build()), &reg),
        Err(AnalyzeError::Verify(VerifyError::TypeError { .. }))
    ));
}

#[test]
fn incompatible_merge_rejected() {
    let (reg, mixed, _) = table_registry();
    // One path leaves a reference on the stack, the other an array.
    let mut f = FnBuilder::new("merge", 1, 1, false);
    let other = f.label();
    let join = f.label();
    f.op(Op::Load(0)).br_true(other);
    f.op(Op::New(mixed)).br(join);
    f.bind(other);
    f.op(Op::PushI(4)).op(Op::NewArr(ElemKind::I64));
    f.bind(join);
    f.op(Op::Pop).op(Op::Ret);
    assert!(matches!(
        analyze(module_of(f.build()), &reg),
        Err(AnalyzeError::Verify(VerifyError::MergeConflict { .. }))
    ));
}

#[test]
fn request_leaked_on_one_branch_rejected() {
    let (reg, _, _) = table_registry();
    // irecv, then only one of two paths waits: the request type-state
    // analysis must reject the branchy leak.
    let mut f = FnBuilder::new("leaky", 2, 2, false);
    f.params(&[TyDesc::Arr(ElemKind::I64), TyDesc::I64]);
    let skip = f.label();
    f.op(Op::Load(0))
        .op(Op::PushI(0))
        .op(Op::PushI(9))
        .op(Op::FCall(FCallId::MpIrecv));
    f.op(Op::Load(1)).br_true(skip);
    f.op(Op::FCall(FCallId::MpWait)).op(Op::Ret);
    f.bind(skip);
    f.op(Op::Pop).op(Op::Ret); // tries to discard the live request
    assert!(matches!(
        analyze(module_of(f.build()), &reg),
        Err(AnalyzeError::Verify(VerifyError::RequestLeak { .. }))
    ));
}

#[test]
fn request_cannot_be_waited_twice() {
    let (reg, _, _) = table_registry();
    let mut f = FnBuilder::new("double", 1, 2, false);
    f.params(&[TyDesc::Arr(ElemKind::I64)]);
    f.op(Op::Load(0))
        .op(Op::PushI(0))
        .op(Op::PushI(9))
        .op(Op::FCall(FCallId::MpIrecv))
        .op(Op::Store(1));
    f.op(Op::Load(1)).op(Op::FCall(FCallId::MpWait));
    f.op(Op::Load(1)).op(Op::FCall(FCallId::MpWait)); // moved-out local
    f.op(Op::Ret);
    assert!(matches!(
        analyze(module_of(f.build()), &reg),
        Err(AnalyzeError::Verify(VerifyError::TypeError { .. }))
    ));
}

#[test]
fn ref_bearing_class_refused_raw_transport() {
    let (reg, _, holder) = table_registry();
    let mut f = FnBuilder::new("ships_refs", 0, 0, false);
    f.op(Op::New(holder))
        .op(Op::PushI(1))
        .op(Op::PushI(0))
        .op(Op::FCall(FCallId::MpSend))
        .op(Op::Ret);
    let err = analyze(module_of(f.build()), &reg).unwrap_err();
    assert!(matches!(err, AnalyzeError::Transport { .. }));
    let msg = err.to_string();
    assert!(msg.contains("ships_refs@3"), "wants func@pc, got: {msg}");
    assert!(msg.contains("Holder"), "wants the class name, got: {msg}");
}

#[test]
fn unverified_escape_hatch_still_runs_but_traps_dynamically() {
    // The same confusion the verifier rejects statically is caught by the
    // interpreter's dynamic checks when loaded through the explicit
    // `unverified` hatch — slower, but never silent reinterpretation.
    let vm = Vm::new(VmConfig {
        heap: HeapConfig {
            young_bytes: 64 * 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    let mixed = vm
        .registry_mut()
        .define_class("Mixed")
        .prim("i", ElemKind::I64)
        .prim("f", ElemKind::F64)
        .build();
    let mut f = FnBuilder::new("confused", 0, 0, true);
    f.op(Op::New(mixed)).op(Op::LdFldI(1)).op(Op::Ret); // int load of f64 field
    let m = module_of(f.build());
    assert!(motor::interp::verify_module(&m, &vm.registry()).is_err());
    let t = motor::runtime::MotorThread::attach(Arc::clone(&vm));
    let r = Interp::unverified(&t, &m).call(0, &[]);
    assert!(
        matches!(r, Err(TrapKind::TypeMismatch(_))),
        "unverified path must trap dynamically, got {r:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness, probed: assemble random op soup; whatever the verifier
    /// accepts must execute without any type-confusion trap
    /// (`TypeMismatch`/`StackUnderflow`/`UnknownFunction`). Runtime traps
    /// that depend on values (bounds, div-by-zero, null) are fair game.
    #[test]
    fn accepted_random_modules_never_confuse_types(
        raw in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let mut f = FnBuilder::new("soup", 1, 4, false);
        f.params(&[TyDesc::Arr(ElemKind::I64)]);
        for (i, r) in raw.iter().enumerate() {
            let op = match r % 17 {
                0 => Op::PushI((r / 17) as i64 % 9),
                1 => Op::PushF((r / 17) as f64),
                2 => Op::Dup,
                3 => Op::Pop,
                4 => Op::Load((r / 17 % 4) as u16),
                5 => Op::Store((r / 17 % 4) as u16),
                6 => Op::Add,
                7 => Op::Mul,
                8 => Op::FAdd,
                9 => Op::I2F,
                10 => Op::F2I,
                11 => Op::CmpLt,
                12 => Op::LdElemI,
                13 => Op::ArrLen,
                14 => Op::NewArr(ElemKind::I64),
                15 => Op::PushNull,
                // Forward-only short branch, clamped inside the body
                // (the trailing Ret is appended below).
                _ => {
                    let remaining = raw.len() - i - 1;
                    Op::BrTrue((r / 17 % (remaining as u64 + 1)) as i32)
                }
            };
            f.op(op);
        }
        f.op(Op::Ret);
        let m = module_of(f.build());
        let vm = Vm::new(VmConfig::default());
        let loaded = motor::analyze::load(m, &vm.registry());
        if let Ok(vmod) = loaded {
            let t = motor::runtime::MotorThread::attach(Arc::clone(&vm));
            let arr = t.alloc_prim_array(ElemKind::I64, 8);
            let r = Interp::new(&t, &vmod).call(0, &[Value::R(arr)]);
            if let Err(trap) = r {
                prop_assert!(
                    !matches!(
                        trap,
                        TrapKind::TypeMismatch(_)
                            | TrapKind::StackUnderflow
                            | TrapKind::UnknownFunction(_)
                    ),
                    "verified module hit a type-confusion trap: {trap}"
                );
            }
        }
    }
}

/// End-to-end: a proved module drives Isend/Wait and Recv through the
/// FCall intrinsics on a two-rank cluster, and the host really elides the
/// per-send transportability walk.
#[test]
fn verified_module_messages_with_checks_elided() {
    let module = {
        let mut send_k = FnBuilder::new("send_k", 2, 2, false);
        send_k.params(&[TyDesc::Arr(ElemKind::I64), TyDesc::I64]);
        send_k
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::PushI(5))
            .op(Op::FCall(FCallId::MpIsend))
            .op(Op::FCall(FCallId::MpWait))
            .op(Op::Ret);
        let mut recv_k = FnBuilder::new("recv_k", 2, 2, false);
        recv_k.params(&[TyDesc::Arr(ElemKind::I64), TyDesc::I64]);
        recv_k
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::PushI(5))
            .op(Op::FCall(FCallId::MpRecv))
            .op(Op::Ret);
        let mut m = Module::new();
        m.add(send_k.build());
        m.add(recv_k.build());
        m
    };
    run_cluster_default(
        2,
        |_| {},
        move |proc| {
            let t = proc.thread();
            let vmod = motor::analyze::load(module.clone(), &proc.vm().registry())
                .expect("kernel must verify");
            assert!(vmod.has_transport_proof());
            let host = proc.intrinsics();
            let interp = Interp::new(t, &vmod).with_host(&host);
            let buf = t.alloc_prim_array(ElemKind::I64, 16);
            if proc.mp().rank() == 0 {
                let data: Vec<i64> = (100..116).collect();
                t.prim_write(buf, 0, &data);
                interp.call(0, &[Value::R(buf), Value::I(1)]).unwrap();
            } else {
                interp.call(1, &[Value::R(buf), Value::I(0)]).unwrap();
                let mut got = [0i64; 16];
                t.prim_read(buf, 0, &mut got);
                let expect: Vec<i64> = (100..116).collect();
                assert_eq!(&got[..], &expect[..]);
            }
            assert!(
                host.elided() > 0,
                "proved module must take the trusted transport path"
            );
            assert_eq!(host.outstanding(), 0, "all requests completed");
        },
    )
    .unwrap();
}
