//! Integration tests for the extended MPI surface: Scan, Gatherv/Scatterv
//! and Waitany, plus a multi-rank random-traffic stress.

use motor::mpc::universe::Universe;
use motor::mpc::ReduceOp;

#[test]
fn inclusive_scan_matches_prefix_sums() {
    Universe::run(5, |proc| {
        let world = proc.world();
        let mine = [world.rank() as i64 + 1, 10 * (world.rank() as i64 + 1)];
        let mut out = [0i64; 2];
        world.scan_slice(&mine, &mut out, ReduceOp::Sum).unwrap();
        let expect: i64 = (0..=world.rank() as i64).map(|r| r + 1).sum();
        assert_eq!(out, [expect, 10 * expect]);
    })
    .unwrap();
}

#[test]
fn gatherv_concatenates_ragged_contributions() {
    Universe::run(4, |proc| {
        let world = proc.world();
        let r = world.rank();
        // Rank r contributes r+1 bytes of value r.
        let mine = vec![r as u8; r + 1];
        let counts: Vec<usize> = (0..world.size()).map(|x| x + 1).collect();
        let total: usize = counts.iter().sum();
        if r == 2 {
            let mut all = vec![0u8; total];
            world
                .gatherv_bytes(&mine, Some((&mut all, &counts)), 2)
                .unwrap();
            let mut off = 0;
            for (src, &c) in counts.iter().enumerate() {
                assert_eq!(&all[off..off + c], vec![src as u8; c].as_slice());
                off += c;
            }
        } else {
            world.gatherv_bytes(&mine, None, 2).unwrap();
        }
    })
    .unwrap();
}

#[test]
fn scatterv_distributes_ragged_chunks_including_empty() {
    Universe::run(4, |proc| {
        let world = proc.world();
        let r = world.rank();
        // Counts 3, 0, 5, 1 — rank 1 receives nothing.
        let counts = [3usize, 0, 5, 1];
        let mut mine = vec![0u8; counts[r]];
        if r == 0 {
            let total: usize = counts.iter().sum();
            let mut flat = Vec::with_capacity(total);
            for (dst, &c) in counts.iter().enumerate() {
                flat.extend(std::iter::repeat_n(dst as u8 + 40, c));
            }
            world
                .scatterv_bytes(Some((&flat, &counts)), &mut mine, 0)
                .unwrap();
        } else {
            world.scatterv_bytes(None, &mut mine, 0).unwrap();
        }
        assert_eq!(mine, vec![r as u8 + 40; counts[r]]);
        world.barrier().unwrap();
    })
    .unwrap();
}

#[test]
fn waitany_returns_first_completion() {
    Universe::run(3, |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            // Post receives from both peers; rank 2 sends immediately,
            // rank 1 only after rank 0 acknowledges the first completion.
            let mut b1 = vec![0u8; 8];
            let mut b2 = vec![0u8; 8];
            // SAFETY: buffers outlive the waits below.
            let r1 = unsafe { world.irecv_ptr(b1.as_mut_ptr(), 8, 1, 5).unwrap() };
            let r2 = unsafe { world.irecv_ptr(b2.as_mut_ptr(), 8, 2, 5).unwrap() };
            let (idx, st) = world.waitany(&[r1.clone(), r2]).unwrap();
            assert_eq!(idx, 1, "rank 2's message must land first");
            assert_eq!(st.source, 2);
            assert_eq!(b2, vec![2u8; 8]);
            world.send_bytes(&[1u8], 1, 6).unwrap(); // release rank 1
            let st1 = world.wait(&r1).unwrap();
            assert_eq!(st1.source, 1);
            assert_eq!(b1, vec![1u8; 8]);
        } else if world.rank() == 2 {
            world.send_bytes(&[2u8; 8], 0, 5).unwrap();
        } else {
            let mut go = [0u8; 1];
            world.recv_bytes(&mut go, 0, 6).unwrap();
            world.send_bytes(&[1u8; 8], 0, 5).unwrap();
        }
    })
    .unwrap();
}

#[test]
fn random_traffic_stress_across_ranks() {
    // Deterministic pseudo-random all-pairs traffic; every byte accounted.
    const RANKS: usize = 4;
    const MSGS_PER_PAIR: usize = 25;
    Universe::run(RANKS, |proc| {
        let world = proc.world();
        let me = world.rank();
        // Interleave sends and receives; sizes vary eager↔rendezvous.
        let size_of =
            |from: usize, to: usize, k: usize| 1 + ((from * 7919 + to * 104729 + k * 31) % 90_000);
        crossbeam::thread::scope(|s| {
            let w2 = world.clone();
            let sender = s.spawn(move |_| {
                for to in 0..RANKS {
                    if to == me {
                        continue;
                    }
                    for k in 0..MSGS_PER_PAIR {
                        let sz = size_of(me, to, k);
                        let data = vec![(k % 251) as u8; sz];
                        w2.send_bytes(&data, to, k as i32).unwrap();
                    }
                }
            });
            for from in 0..RANKS {
                if from == me {
                    continue;
                }
                for k in 0..MSGS_PER_PAIR {
                    let sz = size_of(from, me, k);
                    let mut buf = vec![0u8; sz];
                    let st = world.recv_bytes(&mut buf, from, k as i32).unwrap();
                    assert_eq!(st.count, sz);
                    assert!(buf.iter().all(|&b| b == (k % 251) as u8));
                }
            }
            sender.join().unwrap();
        })
        .unwrap();
        world.barrier().unwrap();
    })
    .unwrap();
}
