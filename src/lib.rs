//! # Motor — a virtual machine for high performance computing
//!
//! This is the facade crate of the Motor workspace, a from-scratch Rust
//! reproduction of *Motor: A Virtual Machine for High Performance
//! Computing* (Goscinski & Abramson, HPDC 2006). It re-exports the public
//! API of every layer:
//!
//! * [`pal`] — platform adaptation layer (transports, polling-wait, clocks).
//! * [`runtime`] — the managed runtime: object/class model, two-generation
//!   garbage collector, pinning, safepoints.
//! * [`interp`] — a small intermediate-language interpreter that runs
//!   "managed" code against the runtime, polling the GC like jitted code.
//! * [`mpc`] — the Message Passing Core, a layered MPI library (MPI /
//!   CH3-style device / shm+sock channels) usable natively.
//! * [`core`] — Motor proper: the runtime-integrated `System.MP` bindings,
//!   the GC-aware pinning policy, and the extended object-oriented
//!   operations with the split-capable serializer.
//! * [`api`] — the typed Rust front-end: `Communicator`, typed pending
//!   operations, `#[derive(Transportable)]` compile-time serializers.
//! * [`analyze`] — load-time static analysis: the typed IL verifier plus
//!   the transport-safety pass that lets the interpreter elide dynamic
//!   object-model checks on proved modules.
//! * [`baselines`] — the managed-wrapper comparison systems (Indiana-style
//!   P/Invoke bindings, mpiJava-style JNI bindings and serializers).
//! * [`profile`] — continuous profiling: the sampling profiler, folded
//!   flamegraph stacks, time-bucket and comm/compute-overlap reports.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use motor_analyze as analyze;
pub use motor_api as api;
pub use motor_baselines as baselines;
pub use motor_core as core;
pub use motor_interp as interp;
pub use motor_mpc as mpc;
pub use motor_obs as obs;
pub use motor_pal as pal;
pub use motor_profile as profile;
pub use motor_runtime as runtime;

/// Everything a typical Motor program needs, in one import.
///
/// ```
/// use motor::prelude::*;
///
/// let metrics = run_cluster_default(2, |_types| {}, |proc| {
///     let mp = proc.mp();
///     let buf = proc.thread().alloc_prim_array(ElemKind::U8, 8);
///     if mp.rank() == 0 {
///         mp.send(buf, 1, 0).unwrap();
///     } else {
///         mp.recv(buf, Source::Rank(0), 0).unwrap();
///     }
/// })
/// .unwrap();
/// assert!(metrics.aggregate().get(Metric::ChanFramesOut) > 0);
/// ```
pub mod prelude {
    pub use motor_api::{
        ArrayBuf, Communicator, PendingArray, PendingRecv, PendingSend, Transportable,
    };
    pub use motor_core::cluster::{
        run_cluster, run_cluster_default, spawn_motor_children, ClusterConfig,
        ClusterConfigBuilder, ClusterMetrics, MotorProc,
    };
    pub use motor_core::{DoctorServer, Mp, MpRequest, MpStatus, Oomp, PinPolicy, ANY_TAG};
    pub use motor_mpc::universe::ChannelKind;
    pub use motor_mpc::{ReduceOp, Source, Tag};
    pub use motor_obs::{
        check_prometheus_text, from_chrome_json, to_chrome_json, to_prometheus, Anomaly,
        AnomalyKind, ClusterTrace, DoctorConfig, EventKind, FlightRecord, Hist, InflightOp, Metric,
        MetricsSnapshot, SpanKind,
    };
    pub use motor_runtime::{ClassId, ElemKind, Handle};
}
