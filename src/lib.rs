//! # Motor — a virtual machine for high performance computing
//!
//! This is the facade crate of the Motor workspace, a from-scratch Rust
//! reproduction of *Motor: A Virtual Machine for High Performance
//! Computing* (Goscinski & Abramson, HPDC 2006). It re-exports the public
//! API of every layer:
//!
//! * [`pal`] — platform adaptation layer (transports, polling-wait, clocks).
//! * [`runtime`] — the managed runtime: object/class model, two-generation
//!   garbage collector, pinning, safepoints.
//! * [`interp`] — a small intermediate-language interpreter that runs
//!   "managed" code against the runtime, polling the GC like jitted code.
//! * [`mpc`] — the Message Passing Core, a layered MPI library (MPI /
//!   CH3-style device / shm+sock channels) usable natively.
//! * [`core`] — Motor proper: the runtime-integrated `System.MP` bindings,
//!   the GC-aware pinning policy, and the extended object-oriented
//!   operations with the split-capable serializer.
//! * [`baselines`] — the managed-wrapper comparison systems (Indiana-style
//!   P/Invoke bindings, mpiJava-style JNI bindings and serializers).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use motor_baselines as baselines;
pub use motor_core as core;
pub use motor_interp as interp;
pub use motor_mpc as mpc;
pub use motor_pal as pal;
pub use motor_runtime as runtime;
